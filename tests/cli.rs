//! End-to-end tests of the `hbdc-sim` command-line interface.

use std::process::Command;

fn hbdc_sim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbdc-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (_, err, ok) = hbdc_sim(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn bench_list_names_all_ten() {
    let (out, _, ok) = hbdc_sim(&["bench-list"]);
    assert!(ok);
    for name in [
        "compress", "gcc", "go", "li", "perl", "hydro2d", "mgrid", "su2cor", "swim", "wave5",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_ipc_for_a_bundled_benchmark() {
    let (out, _, ok) = hbdc_sim(&["run", "bench:li", "--port", "lbic:4x2"]);
    assert!(ok);
    assert!(out.contains("IPC"));
    assert!(out.contains("LBIC-4x2"));
}

#[test]
fn run_with_predictor_reports_branch_stats() {
    let (out, _, ok) = hbdc_sim(&["run", "bench:go", "--frontend", "bimodal"]);
    assert!(ok, "run failed:\n{out}");
    assert!(out.contains("mispredicted"));
}

#[test]
fn bad_port_spec_fails_cleanly() {
    let (_, err, ok) = hbdc_sim(&["run", "bench:li", "--port", "omega:4"]);
    assert!(!ok);
    assert!(err.contains("bad port spec"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let (_, err, ok) = hbdc_sim(&["run", "bench:doom"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"));
}

#[test]
fn asm_disasm_roundtrip_through_object_file() {
    let dir = std::env::temp_dir();
    let src = dir.join("hbdc_cli_test.s");
    let obj = dir.join("hbdc_cli_test.hbo");
    std::fs::write(&src, "main: li r1, 41\n addi r1, r1, 1\n halt\n").unwrap();

    let (out, _, ok) = hbdc_sim(&["asm", src.to_str().unwrap(), "-o", obj.to_str().unwrap()]);
    assert!(ok, "asm failed:\n{out}");
    assert!(out.contains("3 instructions"));

    let (text, _, ok) = hbdc_sim(&["disasm", obj.to_str().unwrap()]);
    assert!(ok);
    assert!(text.contains("ori r1, r0, 41"));
    assert!(text.contains("halt"));

    // The object is also directly runnable.
    let (run_out, _, ok) = hbdc_sim(&["run", obj.to_str().unwrap(), "--port", "ideal:1"]);
    assert!(ok);
    assert!(run_out.contains("committed      3"));

    std::fs::remove_file(&src).ok();
    std::fs::remove_file(&obj).ok();
}

fn hbdc_sim_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbdc-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn fuzz_short_session_is_clean() {
    let corpus = std::env::temp_dir().join(format!("hbdc-cli-fuzz-{}", std::process::id()));
    let (out, err, code) = hbdc_sim_code(&[
        "fuzz",
        "--seed",
        "3",
        "--budget",
        "5",
        "--small",
        "--matrix-every",
        "0",
        "--corpus",
        corpus.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("5 programs checked"), "{out}");
    assert!(out.contains("0 violations"), "{out}");
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn fuzz_selftest_catches_the_injected_fault() {
    let corpus = std::env::temp_dir().join(format!("hbdc-cli-self-{}", std::process::id()));
    let (out, err, code) =
        hbdc_sim_code(&["fuzz", "--selftest", "--corpus", corpus.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("self-test passed"), "{out}");
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn fuzz_rejects_malformed_budget() {
    let (_, err, code) = hbdc_sim_code(&["fuzz", "--budget", "lots"]);
    assert_eq!(code, 2);
    assert!(err.contains("--budget expects a number"), "{err}");
}

#[test]
fn shard_composes_with_threads() {
    // Pinned semantics: `--shard --threads N` is valid — N caps this
    // supervisor's concurrent worker subprocesses (scripts/chaos_test.sh
    // relies on the combination). The single li x table4 campaign must
    // complete cleanly under a 2-subprocess cap.
    let dir = std::env::temp_dir().join(format!("hbdc-cli-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("t4.journal");
    let (out, err, code) = hbdc_sim_code(&[
        "campaign",
        "table4",
        "--scale",
        "test",
        "--bench",
        "li",
        "--journal",
        journal.to_str().unwrap(),
        "--shard",
        "--threads",
        "2",
    ]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("Campaign table4"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_rejects_zero_with_or_without_shard() {
    for extra in [&["--shard"][..], &[][..]] {
        let mut args = vec![
            "campaign",
            "table4",
            "--scale",
            "test",
            "--bench",
            "li",
            "--journal",
            "/tmp/hbdc-cli-z.journal",
            "--threads",
            "0",
        ];
        args.extend_from_slice(extra);
        let (_, err, code) = hbdc_sim_code(&args);
        assert_eq!(code, 2, "{err}");
        assert!(err.contains("--threads needs a positive integer"), "{err}");
    }
}

#[test]
fn analyze_prints_locality_breakdown() {
    let (out, _, ok) = hbdc_sim(&["analyze", "bench:swim", "--banks", "4"]);
    assert!(ok);
    assert!(out.contains("B-same-line"));
    assert!(out.contains("B-diff-line"));
    assert!(out.contains("miss rate"));
}
