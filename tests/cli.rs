//! End-to-end tests of the `hbdc-sim` command-line interface.

use std::process::Command;

fn hbdc_sim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbdc-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (_, err, ok) = hbdc_sim(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn bench_list_names_all_ten() {
    let (out, _, ok) = hbdc_sim(&["bench-list"]);
    assert!(ok);
    for name in [
        "compress", "gcc", "go", "li", "perl", "hydro2d", "mgrid", "su2cor", "swim", "wave5",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_ipc_for_a_bundled_benchmark() {
    let (out, _, ok) = hbdc_sim(&["run", "bench:li", "--port", "lbic:4x2"]);
    assert!(ok);
    assert!(out.contains("IPC"));
    assert!(out.contains("LBIC-4x2"));
}

#[test]
fn run_with_predictor_reports_branch_stats() {
    let (out, _, ok) = hbdc_sim(&["run", "bench:go", "--frontend", "bimodal"]);
    assert!(ok, "run failed:\n{out}");
    assert!(out.contains("mispredicted"));
}

#[test]
fn bad_port_spec_fails_cleanly() {
    let (_, err, ok) = hbdc_sim(&["run", "bench:li", "--port", "omega:4"]);
    assert!(!ok);
    assert!(err.contains("bad port spec"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let (_, err, ok) = hbdc_sim(&["run", "bench:doom"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"));
}

#[test]
fn asm_disasm_roundtrip_through_object_file() {
    let dir = std::env::temp_dir();
    let src = dir.join("hbdc_cli_test.s");
    let obj = dir.join("hbdc_cli_test.hbo");
    std::fs::write(&src, "main: li r1, 41\n addi r1, r1, 1\n halt\n").unwrap();

    let (out, _, ok) = hbdc_sim(&["asm", src.to_str().unwrap(), "-o", obj.to_str().unwrap()]);
    assert!(ok, "asm failed:\n{out}");
    assert!(out.contains("3 instructions"));

    let (text, _, ok) = hbdc_sim(&["disasm", obj.to_str().unwrap()]);
    assert!(ok);
    assert!(text.contains("ori r1, r0, 41"));
    assert!(text.contains("halt"));

    // The object is also directly runnable.
    let (run_out, _, ok) = hbdc_sim(&["run", obj.to_str().unwrap(), "--port", "ideal:1"]);
    assert!(ok);
    assert!(run_out.contains("committed      3"));

    std::fs::remove_file(&src).ok();
    std::fs::remove_file(&obj).ok();
}

#[test]
fn analyze_prints_locality_breakdown() {
    let (out, _, ok) = hbdc_sim(&["analyze", "bench:swim", "--banks", "4"]);
    assert!(ok);
    assert!(out.contains("B-same-line"));
    assert!(out.contains("B-diff-line"));
    assert!(out.contains("miss rate"));
}
