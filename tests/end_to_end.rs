//! End-to-end runs of every benchmark analog through the full stack:
//! functional emulation → RUU/LSQ timing → port model → hierarchy.

use hbdc::prelude::*;

fn run(bench: &Benchmark, port: PortConfig) -> SimReport {
    let program = bench.build(Scale::Test);
    Simulator::new(
        &program,
        CpuConfig::default(),
        HierarchyConfig::default(),
        port,
    )
    .run()
    .expect("benchmark simulates cleanly")
}

#[test]
fn every_benchmark_completes_under_the_lbic() {
    for bench in all() {
        let report = run(&bench, PortConfig::lbic(4, 2));
        assert!(
            report.committed > 10_000,
            "{}: only {} instructions",
            bench.name(),
            report.committed
        );
        assert!(
            report.ipc() > 0.5,
            "{}: implausible IPC {}",
            bench.name(),
            report.ipc()
        );
        assert!(
            report.l1_accesses > 0,
            "{}: cache never touched",
            bench.name()
        );
    }
}

#[test]
fn timing_is_deterministic() {
    let bench = by_name("compress").expect("registered");
    let a = run(&bench, PortConfig::lbic(4, 4));
    let b = run(&bench, PortConfig::lbic(4, 4));
    assert_eq!(a, b);
}

#[test]
fn committed_mix_matches_functional_mix() {
    // The timing simulator must commit exactly the functional stream.
    let bench = by_name("li").expect("registered");
    let program = bench.build(Scale::Test);
    let mut emu = Emulator::new(&program);
    let (mut total, mut loads, mut stores) = (0u64, 0u64, 0u64);
    while let Some(di) = emu.step() {
        total += 1;
        if di.inst.is_store() {
            stores += 1;
        } else if di.inst.is_load() {
            loads += 1;
        }
    }
    let report = run(&bench, PortConfig::Ideal { ports: 4 });
    assert_eq!(report.committed, total);
    assert_eq!(report.loads, loads);
    assert_eq!(report.stores, stores);
}

#[test]
fn forwarded_loads_never_reach_the_cache() {
    for bench in all() {
        let report = run(&bench, PortConfig::Ideal { ports: 16 });
        // loads that hit the cache + forwarded loads == all loads; the
        // cache sees loads + stores only.
        assert!(
            report.l1_accesses <= report.loads + report.stores,
            "{}: {} cache accesses > {} memory instructions",
            bench.name(),
            report.l1_accesses,
            report.loads + report.stores
        );
        assert_eq!(
            report.l1_accesses + report.forwards,
            report.loads + report.stores,
            "{}: accesses + forwards must cover every memory instruction",
            bench.name()
        );
    }
}

#[test]
fn mgrid_barely_notices_replication() {
    // Paper §3.1: with a store-to-load ratio of 0.04, mgrid's replicated
    // cache performance is "virtually indistinguishable from ideal".
    let bench = by_name("mgrid").expect("registered");
    let ideal = run(&bench, PortConfig::Ideal { ports: 8 }).ipc();
    let repl = run(&bench, PortConfig::Replicated { ports: 8 }).ipc();
    assert!(
        repl > 0.75 * ideal,
        "mgrid repl {repl} should be close to ideal {ideal}"
    );
}

#[test]
fn store_heavy_compress_punishes_replication() {
    let bench = by_name("compress").expect("registered");
    let ideal = run(&bench, PortConfig::Ideal { ports: 8 });
    let repl = run(&bench, PortConfig::Replicated { ports: 8 });
    assert!(repl.ipc() < ideal.ipc());
    assert!(repl.store_serializations > 0);
}

#[test]
fn lbic_combines_on_spatially_local_codes() {
    for name in ["gcc", "perl", "li"] {
        let bench = by_name(name).expect("registered");
        let report = run(&bench, PortConfig::lbic(4, 4));
        assert!(
            report.combined > 0,
            "{name}: no combining on a same-line-rich code"
        );
    }
}
