//! Full-shape assertions against the paper's headline claims at
//! `Scale::Small` (hundreds of thousands of instructions per simulation).
//!
//! These are `#[ignore]`d by default because they simulate the whole
//! benchmark suite — run them explicitly in release mode:
//!
//! ```console
//! cargo test --release --test paper_shapes -- --ignored
//! ```
//!
//! Each test encodes one claim from the paper's evaluation; the
//! quantitative record lives in `EXPERIMENTS.md`.

use hbdc::prelude::*;
use hbdc::stats::summary::arithmetic_mean;

fn suite_mean(port: PortConfig, suite: Suite) -> f64 {
    let ipcs: Vec<f64> = all()
        .iter()
        .filter(|b| b.suite() == suite)
        .map(|b| {
            let program = b.build(Scale::Small);
            Simulator::new(
                &program,
                CpuConfig::default(),
                HierarchyConfig::default(),
                port,
            )
            .run()
            .expect("benchmark simulates cleanly")
            .ipc()
        })
        .collect();
    arithmetic_mean(&ipcs)
}

#[test]
#[ignore = "simulates the full suite; run with --release -- --ignored"]
fn true_multiporting_doubles_single_port_throughput() {
    // Paper §3.1: one → two ideal ports buys +89% (int) / +92% (fp).
    for suite in [Suite::Int, Suite::Fp] {
        let one = suite_mean(PortConfig::Ideal { ports: 1 }, suite);
        let two = suite_mean(PortConfig::Ideal { ports: 2 }, suite);
        assert!(
            two / one > 1.4,
            "{suite:?}: 2 ports only {:.2}x of 1 port",
            two / one
        );
    }
}

#[test]
#[ignore = "simulates the full suite; run with --release -- --ignored"]
fn replication_never_beats_ideal_and_suffers_with_stores() {
    for suite in [Suite::Int, Suite::Fp] {
        for ports in [2usize, 4, 8] {
            let ideal = suite_mean(PortConfig::Ideal { ports }, suite);
            let repl = suite_mean(PortConfig::Replicated { ports }, suite);
            assert!(repl <= ideal + 1e-9, "{suite:?} {ports} ports");
        }
    }
    // The gap grows with port count (stores serialize harder).
    let gap = |p| {
        suite_mean(PortConfig::Ideal { ports: p }, Suite::Int)
            - suite_mean(PortConfig::Replicated { ports: p }, Suite::Int)
    };
    assert!(gap(8) > gap(2), "replication gap must widen with ports");
}

#[test]
#[ignore = "simulates the full suite; run with --release -- --ignored"]
fn lbic_2x2_outperforms_its_cost_peers() {
    // Paper §6: the 2x2 LBIC beats the 2-port replicated cache and is at
    // least competitive with the 2-port ideal cache.
    for suite in [Suite::Int, Suite::Fp] {
        let lbic = suite_mean(PortConfig::lbic(2, 2), suite);
        let repl = suite_mean(PortConfig::Replicated { ports: 2 }, suite);
        let ideal = suite_mean(PortConfig::Ideal { ports: 2 }, suite);
        assert!(lbic > repl, "{suite:?}: LBIC {lbic} vs repl {repl}");
        assert!(
            lbic > 0.95 * ideal,
            "{suite:?}: LBIC {lbic} vs ideal-2 {ideal}"
        );
    }
}

#[test]
#[ignore = "simulates the full suite; run with --release -- --ignored"]
fn lbic_4x4_crushes_plain_8_banks_on_specint() {
    // Paper §6: "the 4x4 LBIC also performs slightly better than the
    // 8-bank cache for SPECint … and far better for SPECfp."
    for suite in [Suite::Int, Suite::Fp] {
        let lbic = suite_mean(PortConfig::lbic(4, 4), suite);
        let bank = suite_mean(PortConfig::banked(8), suite);
        assert!(lbic > bank, "{suite:?}: 4x4 {lbic} vs Bank-8 {bank}");
    }
}

#[test]
#[ignore = "simulates the full suite; run with --release -- --ignored"]
fn combining_buys_fp_bandwidth() {
    // Paper §6: for SPECfp, raising N at fixed M yields a solid gain.
    let n2 = suite_mean(PortConfig::lbic(4, 2), Suite::Fp);
    let n4 = suite_mean(PortConfig::lbic(4, 4), Suite::Fp);
    assert!(
        n4 / n2 > 1.05,
        "doubling line ports bought only {:.1}%",
        (n4 / n2 - 1.0) * 100.0
    );
}
