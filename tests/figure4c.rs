//! Integration test for the paper's Figure 4c worked example.
//!
//! "Consider the references in Figure 4c to be ready entries in a LSQ.
//! Whereas a 2-way multi-bank cache will require two cycles to execute
//! these load/stores …, a multi-ported cache by replication will use
//! three cycles (one cycle per store, plus one for the two loads). A 2x2
//! LBIC, however, will be able to handle all four requests in a single
//! cycle."

use hbdc::core::MemRequest;
use hbdc::prelude::*;

/// st(B0,L12), ld(B1,L11), ld(B1,L11), st(B0,L12) under 2 banks with
/// 32-byte lines (line 12 = bank 0, line 11 = bank 1).
fn figure4c_pattern() -> Vec<MemRequest> {
    vec![
        MemRequest::store(0, 0x180),
        MemRequest::load(1, 0x164),
        MemRequest::load(2, 0x168),
        MemRequest::store(3, 0x18c),
    ]
}

fn cycles_to_drain(config: PortConfig) -> u32 {
    let mut model = config.build(32);
    let mut pending = figure4c_pattern();
    let mut cycles = 0;
    while !pending.is_empty() {
        let granted = model.arbitrate(&pending);
        model.tick();
        cycles += 1;
        for &i in granted.iter().rev() {
            pending.remove(i);
        }
        assert!(cycles < 10, "pattern never drains under {}", model.label());
    }
    cycles
}

#[test]
fn two_bank_cache_takes_two_cycles() {
    assert_eq!(cycles_to_drain(PortConfig::banked(2)), 2);
}

#[test]
fn replicated_two_port_takes_three_cycles() {
    assert_eq!(cycles_to_drain(PortConfig::Replicated { ports: 2 }), 3);
}

#[test]
fn lbic_2x2_takes_one_cycle() {
    assert_eq!(cycles_to_drain(PortConfig::lbic(2, 2)), 1);
}

#[test]
fn ideal_four_port_takes_one_cycle() {
    assert_eq!(cycles_to_drain(PortConfig::Ideal { ports: 4 }), 1);
}

/// The same pattern end-to-end: an assembly program whose LSQ presents
/// exactly this shape of traffic (two same-line stores in one bank, two
/// same-line loads in the other) must finish faster on the 2x2 LBIC than
/// on the 2-port replicated cache.
#[test]
fn end_to_end_figure4c_traffic_favors_lbic() {
    let src = r#"
        .data
        banks: .space 8192
        .text
        main:
            la   r8, banks       # lines alternate banks from here
            li   r15, 500
        loop:
            sw   r0, 0(r8)       # bank 0, line k
            lw   r1, 36(r8)      # bank 1, line k+1
            lw   r2, 40(r8)      # bank 1, line k+1 (same line)
            sw   r0, 12(r8)      # bank 0, line k (same line)
            addi r8, r8, 64
            la   r16, banks+8000
            blt  r8, r16, nw
            la   r8, banks
        nw:
            addi r15, r15, -1
            bnez r15, loop
            halt
    "#;
    let program = assemble(src).expect("kernel assembles");
    let run = |port: PortConfig| {
        Simulator::new(
            &program,
            CpuConfig::default(),
            HierarchyConfig::default(),
            port,
        )
        .run()
        .expect("kernel simulates cleanly")
    };
    let lbic = run(PortConfig::lbic(2, 2));
    let repl = run(PortConfig::Replicated { ports: 2 });
    let bank = run(PortConfig::banked(2));
    assert!(
        lbic.ipc() > repl.ipc(),
        "LBIC {} vs replicated {}",
        lbic.ipc(),
        repl.ipc()
    );
    assert!(
        lbic.ipc() > bank.ipc(),
        "LBIC {} vs banked {}",
        lbic.ipc(),
        bank.ipc()
    );
    assert!(lbic.combined > 0, "LBIC must actually combine");
}
