//! Cross-model equivalences and monotonicity properties that must hold by
//! construction (DESIGN.md §7).

use hbdc::prelude::*;

/// A mixed load/store kernel with both same-line and cross-bank traffic.
fn mixed_kernel() -> Program {
    assemble(
        r#"
        .data
        a: .space 8192
        b: .space 8192
        .text
        main:
            la   r8, a
            la   r9, b
            li   r15, 400
        loop:
            lw   r1, 0(r8)
            lw   r2, 4(r8)
            lw   r3, 32(r8)
            add  r4, r1, r2
            sw   r4, 0(r9)
            sw   r3, 36(r9)
            addi r8, r8, 8
            addi r9, r9, 8
            andi r10, r15, 63
            bnez r10, nw
            la   r8, a
            la   r9, b
        nw:
            addi r15, r15, -1
            bnez r15, loop
            halt
        "#,
    )
    .expect("kernel assembles")
}

fn run(program: &Program, port: PortConfig) -> SimReport {
    Simulator::new(
        program,
        CpuConfig::default(),
        HierarchyConfig::default(),
        port,
    )
    .run()
    .expect("kernel simulates cleanly")
}

#[test]
fn all_single_port_models_are_equivalent() {
    let p = mixed_kernel();
    let ideal = run(&p, PortConfig::Ideal { ports: 1 });
    let repl = run(&p, PortConfig::Replicated { ports: 1 });
    let bank = run(&p, PortConfig::banked(1));
    assert_eq!(ideal.cycles, repl.cycles, "ideal-1 vs repl-1");
    assert_eq!(ideal.cycles, bank.cycles, "ideal-1 vs bank-1");
    assert_eq!(ideal.committed, bank.committed);
}

#[test]
fn lbic_mx1_with_deep_store_queue_matches_banked() {
    // With one line port and a store queue deep enough to never fill,
    // the LBIC grants exactly like a traditional banked cache — except
    // that granted stores are absorbed by the store queue, which can only
    // make it faster. IPC must therefore be >= banked and very close.
    let p = mixed_kernel();
    for banks in [2u32, 4] {
        let bank = run(&p, PortConfig::banked(banks));
        let lbic = run(
            &p,
            PortConfig::Lbic {
                banks,
                line_ports: 1,
                store_queue: 4096,
                policy: hbdc::core::CombinePolicy::LeadingRequest,
            },
        );
        assert!(
            lbic.cycles <= bank.cycles,
            "{banks} banks: LBIC Mx1 {} cycles vs banked {}",
            lbic.cycles,
            bank.cycles
        );
        let ratio = bank.cycles as f64 / lbic.cycles as f64;
        assert!(ratio < 1.10, "Mx1 LBIC should track banked: ratio {ratio}");
    }
}

#[test]
fn ideal_ipc_is_monotone_in_ports() {
    let p = mixed_kernel();
    let mut last = 0.0;
    for ports in [1usize, 2, 4, 8] {
        let ipc = run(&p, PortConfig::Ideal { ports }).ipc();
        assert!(
            ipc + 1e-9 >= last,
            "ideal IPC decreased at {ports} ports: {ipc} < {last}"
        );
        last = ipc;
    }
}

#[test]
fn lbic_ipc_is_monotone_in_line_ports() {
    let p = mixed_kernel();
    let mut last = 0.0;
    for n in [1usize, 2, 4] {
        let ipc = run(&p, PortConfig::lbic(4, n)).ipc();
        assert!(
            ipc + 1e-9 >= last,
            "LBIC IPC decreased at N={n}: {ipc} < {last}"
        );
        last = ipc;
    }
}

#[test]
fn every_model_commits_the_same_instruction_count() {
    let p = mixed_kernel();
    let reference = run(&p, PortConfig::Ideal { ports: 16 }).committed;
    for port in [
        PortConfig::Ideal { ports: 1 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(8),
        PortConfig::lbic(2, 4),
    ] {
        assert_eq!(run(&p, port).committed, reference, "{port:?}");
    }
}

#[test]
fn bank_conflicts_decrease_with_more_banks() {
    let p = mixed_kernel();
    let few = run(&p, PortConfig::banked(2));
    let many = run(&p, PortConfig::banked(16));
    assert!(
        many.bank_conflicts < few.bank_conflicts,
        "16 banks {} conflicts vs 2 banks {}",
        many.bank_conflicts,
        few.bank_conflicts
    );
}

#[test]
fn true_multiporting_dominates_practical_models() {
    // Paper §3: ideal multi-porting is the upper bound at equal port count.
    let p = mixed_kernel();
    for ports in [2usize, 4, 8] {
        let ideal = run(&p, PortConfig::Ideal { ports }).ipc();
        let repl = run(&p, PortConfig::Replicated { ports }).ipc();
        let bank = run(&p, PortConfig::banked(ports as u32)).ipc();
        assert!(ideal + 1e-9 >= repl, "{ports} ports: repl beat ideal");
        assert!(ideal + 1e-9 >= bank, "{ports} ports: bank beat ideal");
    }
}
