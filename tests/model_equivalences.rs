//! Cross-model equivalences and monotonicity properties that must hold by
//! construction (DESIGN.md §7). The deterministic anchors at the bottom
//! pin the same relations the differential fuzzer (`hbdc-fuzz`, DESIGN.md
//! §13) checks on random programs, so a relation regression fails here
//! with a fixed, debuggable kernel before the fuzzer ever runs.

use hbdc::prelude::*;

/// A mixed load/store kernel with both same-line and cross-bank traffic.
fn mixed_kernel() -> Program {
    assemble(
        r#"
        .data
        a: .space 8192
        b: .space 8192
        .text
        main:
            la   r8, a
            la   r9, b
            li   r15, 400
        loop:
            lw   r1, 0(r8)
            lw   r2, 4(r8)
            lw   r3, 32(r8)
            add  r4, r1, r2
            sw   r4, 0(r9)
            sw   r3, 36(r9)
            addi r8, r8, 8
            addi r9, r9, 8
            andi r10, r15, 63
            bnez r10, nw
            la   r8, a
            la   r9, b
        nw:
            addi r15, r15, -1
            bnez r15, loop
            halt
        "#,
    )
    .expect("kernel assembles")
}

fn run(program: &Program, port: PortConfig) -> SimReport {
    Simulator::new(
        program,
        CpuConfig::default(),
        HierarchyConfig::default(),
        port,
    )
    .run()
    .expect("kernel simulates cleanly")
}

#[test]
fn all_single_port_models_are_equivalent() {
    let p = mixed_kernel();
    let ideal = run(&p, PortConfig::Ideal { ports: 1 });
    let repl = run(&p, PortConfig::Replicated { ports: 1 });
    let bank = run(&p, PortConfig::banked(1));
    assert_eq!(ideal.cycles, repl.cycles, "ideal-1 vs repl-1");
    assert_eq!(ideal.cycles, bank.cycles, "ideal-1 vs bank-1");
    assert_eq!(ideal.committed, bank.committed);
}

#[test]
fn lbic_mx1_with_deep_store_queue_matches_banked() {
    // With one line port and a store queue deep enough to never fill,
    // the LBIC grants exactly like a traditional banked cache — except
    // that granted stores are absorbed by the store queue, which can only
    // make it faster. IPC must therefore be >= banked and very close.
    let p = mixed_kernel();
    for banks in [2u32, 4] {
        let bank = run(&p, PortConfig::banked(banks));
        let lbic = run(
            &p,
            PortConfig::Lbic {
                banks,
                line_ports: 1,
                store_queue: 4096,
                policy: hbdc::core::CombinePolicy::LeadingRequest,
            },
        );
        assert!(
            lbic.cycles <= bank.cycles,
            "{banks} banks: LBIC Mx1 {} cycles vs banked {}",
            lbic.cycles,
            bank.cycles
        );
        let ratio = bank.cycles as f64 / lbic.cycles as f64;
        assert!(ratio < 1.10, "Mx1 LBIC should track banked: ratio {ratio}");
    }
}

#[test]
fn ideal_ipc_is_monotone_in_ports() {
    let p = mixed_kernel();
    let mut last = 0.0;
    for ports in [1usize, 2, 4, 8] {
        let ipc = run(&p, PortConfig::Ideal { ports }).ipc();
        assert!(
            ipc + 1e-9 >= last,
            "ideal IPC decreased at {ports} ports: {ipc} < {last}"
        );
        last = ipc;
    }
}

#[test]
fn lbic_ipc_is_monotone_in_line_ports() {
    let p = mixed_kernel();
    let mut last = 0.0;
    for n in [1usize, 2, 4] {
        let ipc = run(&p, PortConfig::lbic(4, n)).ipc();
        assert!(
            ipc + 1e-9 >= last,
            "LBIC IPC decreased at N={n}: {ipc} < {last}"
        );
        last = ipc;
    }
}

#[test]
fn every_model_commits_the_same_instruction_count() {
    let p = mixed_kernel();
    let reference = run(&p, PortConfig::Ideal { ports: 16 }).committed;
    for port in [
        PortConfig::Ideal { ports: 1 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(8),
        PortConfig::lbic(2, 4),
    ] {
        assert_eq!(run(&p, port).committed, reference, "{port:?}");
    }
}

#[test]
fn bank_conflicts_decrease_with_more_banks() {
    let p = mixed_kernel();
    let few = run(&p, PortConfig::banked(2));
    let many = run(&p, PortConfig::banked(16));
    assert!(
        many.bank_conflicts < few.bank_conflicts,
        "16 banks {} conflicts vs 2 banks {}",
        many.bank_conflicts,
        few.bank_conflicts
    );
}

#[test]
fn true_multiporting_dominates_practical_models() {
    // Paper §3: ideal multi-porting is the upper bound at equal port count.
    let p = mixed_kernel();
    for ports in [2usize, 4, 8] {
        let ideal = run(&p, PortConfig::Ideal { ports }).ipc();
        let repl = run(&p, PortConfig::Replicated { ports }).ipc();
        let bank = run(&p, PortConfig::banked(ports as u32)).ipc();
        assert!(ideal + 1e-9 >= repl, "{ports} ports: repl beat ideal");
        assert!(ideal + 1e-9 >= bank, "{ports} ports: bank beat ideal");
    }
}

/// A report record with the trailing port label stripped: the comparison
/// key for "bit-identical up to the model's name".
fn record_sans_label(r: &SimReport) -> String {
    let rec = r.to_record();
    rec.rsplit_once('\t')
        .map_or(rec.clone(), |(head, _)| head.to_string())
}

#[test]
fn replicated_is_bit_identical_to_ideal_on_load_only_traffic() {
    // Fuzzer anchor (relation `replicated-load-only`): with no stores,
    // replication's broadcast machinery never engages, so a replicated
    // cache is *definitionally* ideal — the whole report must match, not
    // just the cycle count.
    let p = assemble(
        r#"
        .data
        a: .space 8192
        .text
        main:
            la   r8, a
            li   r15, 300
        loop:
            lw   r1, 0(r8)
            lw   r2, 8(r8)
            lw   r3, 128(r8)
            fld  f1, 256(r8)
            add  r4, r1, r2
            addi r8, r8, 16
            andi r10, r15, 255
            bnez r10, nw
            la   r8, a
        nw:
            addi r15, r15, -1
            bnez r15, loop
            halt
        "#,
    )
    .expect("load-only kernel assembles");
    for ports in [1usize, 2, 4] {
        let ideal = run(&p, PortConfig::Ideal { ports });
        let repl = run(&p, PortConfig::Replicated { ports });
        assert_eq!(ideal.stores, 0, "kernel must be store-free");
        assert_eq!(
            record_sans_label(&ideal),
            record_sans_label(&repl),
            "{ports} ports: replicated diverged from ideal on load-only traffic"
        );
    }
}

/// A kernel whose loads all collide in one bank at 4-bank line
/// interleaving (stride = line x banks = 128), so every added port or
/// bank visibly moves the bottleneck.
fn conflict_kernel() -> Program {
    assemble(
        r#"
        .data
        a: .space 16384
        .text
        main:
            la   r8, a
            li   r15, 300
        loop:
            lw   r1, 0(r8)
            lw   r2, 128(r8)
            lw   r3, 256(r8)
            lw   r4, 384(r8)
            add  r5, r1, r2
            add  r6, r3, r4
            sw   r5, 512(r8)
            addi r8, r8, 8
            andi r10, r15, 127
            bnez r10, nw
            la   r8, a
        nw:
            addi r15, r15, -1
            bnez r15, loop
            halt
        "#,
    )
    .expect("conflict kernel assembles")
}

#[test]
fn port_monotonicity_on_conflict_heavy_micro() {
    // Fuzzer anchor (relation `port-monotonicity`): on this fixed kernel
    // the orderings hold *exactly* — more ideal ports never cost cycles,
    // and more banks never cost cycles when the traffic is one hot bank.
    let p = conflict_kernel();
    let mut last = u64::MAX;
    for ports in [1usize, 2, 4, 8] {
        let cycles = run(&p, PortConfig::Ideal { ports }).cycles;
        assert!(
            cycles <= last,
            "ideal:{ports} regressed: {cycles} > {last} cycles"
        );
        last = cycles;
    }
    let mut last = u64::MAX;
    for banks in [1u32, 2, 4] {
        let cycles = run(&p, PortConfig::banked(banks)).cycles;
        assert!(
            cycles <= last,
            "bank:{banks} regressed: {cycles} > {last} cycles"
        );
        last = cycles;
    }
}

#[test]
fn dominance_predicates_match_measured_cycles() {
    // Fuzzer anchor (relations `ideal-upper-bound` / `must_dominate`):
    // every ordering the core predicates claim must hold on this
    // conflict-heavy kernel within the anomaly allowance, tying the
    // predicate catalog in `hbdc::core::relations` to measured behavior.
    use hbdc::core::relations::{anomaly_allowance, must_dominate};
    let p = conflict_kernel();
    let roster = [
        PortConfig::Ideal { ports: 1 },
        PortConfig::Ideal { ports: 4 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(4),
        PortConfig::lbic(4, 1),
        PortConfig::lbic(4, 2),
    ];
    let cycles: Vec<u64> = roster.iter().map(|c| run(&p, *c).cycles).collect();
    let mut claimed = 0;
    for (i, a) in roster.iter().enumerate() {
        for (j, b) in roster.iter().enumerate() {
            if i == j || !must_dominate(a, b) {
                continue;
            }
            claimed += 1;
            assert!(
                cycles[i] <= cycles[j] + anomaly_allowance(cycles[j]),
                "{a:?} claimed to dominate {b:?} but took {} vs {} cycles",
                cycles[i],
                cycles[j]
            );
        }
    }
    assert!(claimed >= 3, "dominance catalog unexpectedly sparse");
}
