//! Figure-3-style reference-stream analysis, on both a real benchmark
//! analog and a synthetic stream with dialed locality.
//!
//! Demonstrates the paper's Section 4 methodology: classify consecutive
//! memory references by where they land in an infinite 4-bank cache, and
//! show how same-line locality (combinable) differs from same-bank
//! conflicts (not combinable).
//!
//! Run with: `cargo run --release --example stream_analysis`

use hbdc::prelude::*;

fn print_segments(label: &str, f3: &ConsecutiveMapping) {
    let s = f3.segments();
    println!(
        "{label:24} same-line {:5.1}%  diff-line {:5.1}%  (B+1) {:5.1}%  (B+2) {:5.1}%  (B+3) {:5.1}%",
        s[0] * 100.0,
        s[1] * 100.0,
        s[2] * 100.0,
        s[3] * 100.0,
        s[4] * 100.0
    );
}

fn main() {
    // ---- a real workload's stream ----
    for name in ["gcc", "swim"] {
        let bench = by_name(name).expect("registered benchmark");
        let program = bench.build(Scale::Small);
        let mut emu = Emulator::new(&program);
        let mut f3 = ConsecutiveMapping::new(4, 32);
        while let Some(di) = emu.step() {
            if let Some(addr) = di.addr {
                f3.record(if di.inst.is_store() {
                    MemRef::store(addr)
                } else {
                    MemRef::load(addr)
                });
            }
        }
        print_segments(name, &f3);
    }

    // ---- synthetic streams: the dials map directly onto the segments ----
    println!();
    for (label, same_line, same_bank) in [
        ("synthetic int-like", 0.35, 0.13),
        ("synthetic fp-like", 0.22, 0.21),
        ("synthetic uniform", 0.0, 0.0),
    ] {
        let params = StreamParams {
            same_line,
            same_bank_diff_line: same_bank,
            ..StreamParams::default()
        };
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend(StreamGenerator::new(params, 7).take(200_000));
        print_segments(label, &f3);
    }
    println!(
        "\nA uniform stream approaches 25% per bank; the locality dials pull\n\
         probability into the same-bank segments, exactly as Figure 3 shows\n\
         for real programs."
    );
}
