//! Quickstart: assemble a small kernel and compare its IPC across the
//! four cache port models the paper studies.
//!
//! Run with: `cargo run --example quickstart`

use hbdc::prelude::*;

fn main() -> Result<(), hbdc::isa::AsmError> {
    // A toy "vector add with an index permutation" kernel: enough memory
    // traffic to make the port models visibly different.
    let program = assemble(
        r#"
        .data
        a:   .space 16384
        b:   .space 16384
        out: .space 16384
        .text
        main:
            la   r8, a
            la   r9, b
            la   r10, out
            li   r15, 2000
        loop:
            lw   r1, 0(r8)
            lw   r2, 4(r8)
            lw   r3, 0(r9)
            lw   r4, 4(r9)
            add  r5, r1, r3
            add  r6, r2, r4
            sw   r5, 0(r10)
            sw   r6, 4(r10)
            addi r8, r8, 8
            addi r9, r9, 8
            addi r10, r10, 8
            addi r15, r15, -1
            bnez r15, loop
            halt
        "#,
    )?;

    println!("model      ipc   cycles  conflicts  combined");
    for port in [
        PortConfig::Ideal { ports: 4 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(4),
        PortConfig::lbic(4, 2),
    ] {
        let report = Simulator::new(
            &program,
            CpuConfig::default(),
            HierarchyConfig::default(),
            port,
        )
        .run()
        .expect("example kernel simulates cleanly");
        println!(
            "{:9} {:5.2}  {:7}  {:9}  {:8}",
            report.port_label,
            report.ipc(),
            report.cycles,
            report.bank_conflicts,
            report.combined,
        );
    }
    Ok(())
}
