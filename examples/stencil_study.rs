//! Combining-width study on a floating-point stencil: how much does the
//! LBIC's `N` (line-buffer ports) buy as spatial locality grows?
//!
//! The paper's §6 finds SPECfp gains more from combining (`N`) than from
//! interleaving (`M`). This example makes the mechanism visible: a
//! row-major stencil whose unrolling factor controls how many
//! same-line references appear per cycle, swept against LBIC line-port
//! counts.
//!
//! Run with: `cargo run --release --example stencil_study`

use hbdc::prelude::*;

/// Builds a 1-D stencil kernel that reads `unroll` consecutive doubles
/// per iteration (all in one or two cache lines) and writes one result.
fn stencil_source(unroll: usize) -> String {
    let mut body = String::new();
    for k in 0..unroll {
        body.push_str(&format!("    fld  f{}, {}(r8)\n", k + 1, k * 8));
    }
    for k in 1..unroll {
        body.push_str(&format!("    fadd.d f1, f1, f{}\n", k + 1));
    }
    format!(
        ".data\nsrc: .space 262144\ndst: .space 262144\n.text\nmain:\n    \
         la r8, src\n    la r9, dst\n    li r15, 4000\nloop:\n{body}    \
         fsd  f1, 0(r9)\n    addi r8, r8, {stride}\n    addi r9, r9, 8\n    \
         la r16, src+262000\n    blt r8, r16, nw\n    la r8, src\nnw:\n    \
         addi r15, r15, -1\n    bnez r15, loop\n    halt\n",
        stride = unroll * 8,
    )
}

fn main() -> Result<(), hbdc::isa::AsmError> {
    println!("unroll  Bank-4   4x1     4x2     4x4     True-4");
    for unroll in [2usize, 4, 8] {
        let program = assemble(&stencil_source(unroll))?;
        let mut row = format!("{unroll:6}");
        for port in [
            PortConfig::banked(4),
            PortConfig::lbic(4, 1),
            PortConfig::lbic(4, 2),
            PortConfig::lbic(4, 4),
            PortConfig::Ideal { ports: 4 },
        ] {
            let report = Simulator::new(
                &program,
                CpuConfig::default(),
                HierarchyConfig::default(),
                port,
            )
            .run()
            .expect("example kernel simulates cleanly");
            row.push_str(&format!("  {:6.2}", report.ipc()));
        }
        println!("{row}");
    }
    println!(
        "\nWith more same-line references per iteration (larger unroll), the\n\
         LBIC's line-buffer ports recover bandwidth a plain banked cache\n\
         serializes — the mechanism behind the paper's Table 4 FP results."
    );
    Ok(())
}
