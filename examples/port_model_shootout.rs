//! Port-model shootout on a real benchmark analog, including the paper's
//! Figure 4c worked example.
//!
//! First replays the Figure 4c access pattern — st/ld/ld/st over two
//! banks — showing the cycle counts the paper derives (2-bank: 2 cycles,
//! 2-port replicated: 3 cycles, 2x2 LBIC: 1 cycle). Then runs the `swim`
//! analog (the most bank-conflicted benchmark) under comparable models.
//!
//! Run with: `cargo run --release --example port_model_shootout`

use hbdc::core::{MemRequest, PortModel};
use hbdc::prelude::*;

/// Replays `pattern` through `model`, counting the cycles needed to grant
/// every reference.
fn cycles_to_drain(model: &mut dyn PortModel, pattern: &[MemRequest]) -> u32 {
    let mut pending: Vec<MemRequest> = pattern.to_vec();
    let mut cycles = 0;
    while !pending.is_empty() {
        let granted = model.arbitrate(&pending);
        model.tick();
        cycles += 1;
        // Remove granted (indices are increasing).
        for &i in granted.iter().rev() {
            pending.remove(i);
        }
        assert!(cycles < 100, "pattern never drains");
    }
    cycles
}

fn main() {
    // ---- Figure 4c ----
    // Two banks, 32-byte lines: line 12 (0x180..) is bank 0, line 11
    // (0x160..) is bank 1.
    let pattern = [
        MemRequest::store(0, 0x180), // bank 0, line 12, offset 0
        MemRequest::load(1, 0x164),  // bank 1, line 11, offset 4
        MemRequest::load(2, 0x168),  // bank 1, line 11, offset 8
        MemRequest::store(3, 0x18c), // bank 0, line 12, offset 12
    ];
    println!("Figure 4c: st/ld/ld/st across two banks, one line each");
    for config in [
        PortConfig::banked(2),
        PortConfig::Replicated { ports: 2 },
        PortConfig::lbic(2, 2),
    ] {
        let mut model = config.build(32);
        let cycles = cycles_to_drain(model.as_mut(), &pattern);
        println!("  {:8} takes {cycles} cycle(s)", model.label());
    }
    println!("  (paper: 2-bank = 2, replicated = 3, 2x2 LBIC = 1)\n");

    // ---- swim shootout ----
    let bench = by_name("swim").expect("registered benchmark");
    let program = bench.build(Scale::Small);
    println!("swim analog, Table-1 machine:");
    println!("  model      ipc    conflicts  combined");
    for port in [
        PortConfig::Ideal { ports: 4 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(4),
        PortConfig::lbic(4, 2),
        PortConfig::lbic(4, 4),
    ] {
        let report = Simulator::new(
            &program,
            CpuConfig::default(),
            HierarchyConfig::default(),
            port,
        )
        .run()
        .expect("example kernel simulates cleanly");
        println!(
            "  {:9} {:6.2}  {:9}  {:8}",
            report.port_label,
            report.ipc(),
            report.bank_conflicts,
            report.combined,
        );
    }
}
