//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so
//! this shim provides the benchmarking surface the `hbdc-bench` benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a plain wall-clock measurement loop instead of
//! criterion's statistical machinery. Each benchmark reports the median
//! of `sample_size` timed samples.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value sink (re-exported for convenience; benches may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// The measurement driver passed to bench closures.
pub struct Bencher {
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, printing the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and pick an iteration count that runs ≥ ~2ms per
        // sample, so cheap closures aren't dominated by timer noise.
        let mut iters = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 2 || iters >= 1 << 20 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        samples.push(per_iter);
        for _ in 1..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "    time: {} per iter ({iters} iters/sample)",
            human(median)
        );
    }
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level benchmark context (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}", name.as_ref());
        let mut b = Bencher {
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}", name.as_ref());
        let mut b = Bencher {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function from bench functions (mirrors
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions (mirrors
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_honor_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("smoke", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn human_units() {
        assert!(human(2.0).ends_with(" s"));
        assert!(human(2e-3).ends_with(" ms"));
        assert!(human(2e-6).ends_with(" µs"));
        assert!(human(2e-9).ends_with(" ns"));
    }
}
