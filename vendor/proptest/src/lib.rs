//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so
//! this shim provides the slice of proptest the test suites use:
//! the [`Strategy`] trait with `prop_map`, tuple/range/`Just`/`any`
//! composition, `prop::collection::vec`, `prop::sample::select`, string
//! strategies (length-honoring, regex-class-approximating), and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_oneof!`]
//! macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//! * **No shrinking.** A failing case reports its case number and
//!   message; reproduction is exact because the per-test RNG is seeded
//!   from the test's name.
//! * **Sampling only.** String "regex" strategies honor the trailing
//!   `{m,n}` length bound and draw printable characters rather than
//!   implementing full regex classes.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The deterministic case runner: RNG, config, and failure type.

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A property failure (mirrors `TestCaseError::Fail`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic xoshiro256\*\* test RNG. Seeded from the test
    /// name so every `cargo test` run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a into SplitMix64).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Seeds from a 64-bit value via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)` by widening multiply.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values (mirrors `proptest::strategy::Strategy`,
    /// minus shrinking).
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (bounded retries).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// A type-erased strategy (mirrors `BoxedStrategy`).
    pub struct BoxedStrategy<V> {
        inner: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.inner)(rng)
        }
    }

    /// Always produces a clone of the given value (mirrors `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// One alternative of a [`Union`]: a sampler producing the arm's value.
    type Arm<V> = Rc<dyn Fn(&mut TestRng) -> V>;

    /// The uniform choice behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<Arm<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// An empty union; populate with [`arm`](Self::arm).
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self { arms: Vec::new() }
        }

        /// Adds one equally weighted alternative.
        pub fn arm<S>(mut self, s: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms.push(Rc::new(move |rng| s.sample(rng)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Types with a canonical "anything" strategy (mirrors `Arbitrary`).
    pub trait ArbitraryValue {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// "Any value of `T`" (mirrors `proptest::prelude::any`).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Strings double as strategies, as in upstream proptest's regex
    /// strategies. Only the trailing `{m,n}` repetition bound is honored;
    /// characters are drawn from printable ASCII with occasional
    /// whitespace and non-ASCII code points.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_rep_bounds(self).unwrap_or((0, 32));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                let roll = rng.below(100);
                let c = if roll < 80 {
                    // Printable ASCII.
                    (0x20 + rng.below(0x5f) as u32) as u8 as char
                } else if roll < 90 {
                    ['\n', '\t', ' '][rng.below(3) as usize]
                } else {
                    // Arbitrary non-control scalar value.
                    loop {
                        let v = rng.below(0x11_0000) as u32;
                        if let Some(c) = char::from_u32(v) {
                            if !c.is_control() {
                                break c;
                            }
                        }
                    }
                };
                s.push(c);
            }
            s
        }
    }

    /// Extracts `{m,n}` from the end of a pattern like `"\\PC{0,200}"`.
    fn parse_rep_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        if close != pattern.len() - 1 || open > close {
            return None;
        }
        let inner = &pattern[open + 1..close];
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy for `Vec<S::Value>` with length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize, // inclusive
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Range forms accepted as vector lengths.
        pub trait IntoSizeRange {
            /// The inclusive `(min, max)` bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        /// `vec(strategy, len_range)` (mirrors `prop::collection::vec`).
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { elem, min, max }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list (mirrors `prop::sample::select`).
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.0.is_empty(), "select from empty list");
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Picks uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select(options)
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, as `use proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a property body, failing the case (mirrors
/// `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body (mirrors `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body (mirrors `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among strategies producing the same type (mirrors
/// `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.arm($arm))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_name("self-test");
        let s = (1u8..16, -64i64..64, 0usize..=8);
        for _ in 0..1000 {
            let (a, b, c) = Strategy::sample(&s, &mut rng);
            assert!((1..16).contains(&a));
            assert!((-64..64).contains(&b));
            assert!(c <= 8);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_name("vec-test");
        let s = prop::collection::vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof-test");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_strategy_honors_length_bound() {
        let mut rng = TestRng::from_name("str-test");
        for _ in 0..100 {
            let s = Strategy::sample(&"\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
        }
    }
}
