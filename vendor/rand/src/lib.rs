//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` APIs the simulator uses are provided here by
//! a small, deterministic xoshiro256\*\* engine seeded through SplitMix64
//! (the reference seeding scheme from Blackman & Vigna). The surface is
//! intentionally minimal: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen`, `gen_range`, and `gen_bool`.
//!
//! Streams are deterministic for a given seed, which is all the synthetic
//! trace generator and the tests rely on; no statistical-quality or
//! cryptographic claims are made beyond xoshiro256\*\*'s own.

#![forbid(unsafe_code)]

/// A source of randomness: the minimal core the [`Rng`] extension trait
/// builds on (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Creates a generator seeded from a fixed internal constant —
    /// deterministic here, unlike upstream's entropy-based version.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_5eed_5eed_5eed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-64, irrelevant for tests).
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        // Spans wider than 64 bits never occur in this workspace, but
        // keep the fallback total.
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// The user-facing extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The xoshiro256\*\* engine behind both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256StarStar};

    /// The "standard" generator. Upstream this is ChaCha12; here it is
    /// xoshiro256\*\* — deterministic per seed, which is the only property
    /// this workspace depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256StarStar);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256StarStar::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "small fast" generator; identical engine to [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256StarStar);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256StarStar::from_seed_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A convenience constructor (mirrors `rand::thread_rng`), deterministic
/// here.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u64..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_distribution_covers_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
