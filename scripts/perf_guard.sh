#!/usr/bin/env bash
# Throughput regression guard: re-measures simulator throughput with the
# `throughput` bin and fails if the aggregate cycles/sec — or any single
# benchmark's cycles/sec — drifts more than ±15% from the checked-in
# baseline in BENCH_throughput.json. Gating per `benchmarks[]` entry
# means a regression confined to one workload class (say, the slow FP
# stencils) fails CI even when the aggregate hides it.
#
# Set HBDC_SKIP_PERF=1 to skip (e.g. on a loaded or throttled host).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${HBDC_SKIP_PERF:-0}" = "1" ]; then
    echo "perf guard skipped (HBDC_SKIP_PERF=1)"
    exit 0
fi

read_rate() {
    # The aggregate rate is the top-level two-space-indented key; the
    # per-benchmark entries are nested deeper and must not match.
    grep -m1 '^  "cycles_per_sec":' "$1" | grep -o '[0-9]\+'
}

# Emits "name rate" pairs: the aggregate first, then one line per
# benchmarks[] entry. Each entry is a single JSON line, so one sed
# pattern recovers (bench, cycles_per_sec) without a JSON parser.
rates() {
    echo "aggregate $(read_rate "$1")"
    sed -n 's/.*"bench": "\([^"]*\)".*"cycles_per_sec": \([0-9]\+\).*/\1 \2/p' "$1"
}

# check_rates <baseline.json> <measured.json>: prints one line per
# entry (aggregate or benchmark) outside the ±15% band — including a
# benchmark missing from the measurement, which means its cells failed
# — and prints nothing when every entry is within the band.
check_rates() {
    awk -v tol=0.15 '
        NR == FNR { meas[$1] = $2; next }
        {
            if (!($1 in meas)) { printf "%s missing\n", $1; next }
            d = (meas[$1] - $2) / $2
            if (d > tol || d < -tol)
                printf "%s %d vs baseline %d (%+.1f%%)\n", $1, meas[$1], $2, d * 100
        }
    ' <(rates "$2") <(rates "$1")
}

baseline=$(read_rate BENCH_throughput.json)
[ -n "$baseline" ] || { echo "FAIL: no cycles_per_sec in BENCH_throughput.json" >&2; exit 1; }

cargo build --release -q -p hbdc-bench --bin throughput
tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-perf.XXXXXX")"
trap 'rm -rf "$tmp"' EXIT
bin="$PWD/target/release/throughput"

# Traces are captured once into a cache directory and replayed on every
# attempt. CI persists the corpus across runs via HBDC_TRACE_CACHE so
# the guard measures replay-mode throughput with a warm cache — the
# same regime the checked-in baseline was recorded under.
trace_cache="${HBDC_TRACE_CACHE:-$tmp/traces}"

# The measurement is host-timing-sensitive: a single run can push one
# small benchmark past the band by noise alone. A clean attempt passes
# outright; otherwise the gate fails only on drift that reproduces in
# the SAME entry across two attempts — a band miss that moves between
# benchmarks is host noise, a real regression sits still.
prev=""
for attempt in 1 2; do
    (cd "$tmp" && "$bin" --scale small --trace-cache "$trace_cache" >/dev/null)
    rate=$(read_rate "$tmp/BENCH_throughput.json")
    echo "measured $rate cycles/sec aggregate (baseline $baseline, attempt $attempt)"
    viol="$(check_rates BENCH_throughput.json "$tmp/BENCH_throughput.json")"
    if [ -z "$viol" ]; then
        echo "perf guard passed: aggregate and every benchmark within ±15% of baseline"
        exit 0
    fi
    echo "$viol" | sed 's/^/  /'
    if [ -n "$prev" ]; then
        persistent=$(comm -12 <(echo "$prev" | awk '{print $1}' | sort) \
                              <(echo "$viol" | awk '{print $1}' | sort) | tr '\n' ' ')
        if [ -z "${persistent// /}" ]; then
            echo "perf guard passed: no drift reproduced in the same entry across attempts"
            exit 0
        fi
        echo "FAIL: ±15% drift reproduced in both attempts: $persistent" >&2
        exit 1
    fi
    prev="$viol"
done
