#!/usr/bin/env bash
# Throughput regression guard: re-measures simulator throughput with the
# `throughput` bin and fails if cycles/sec drifts more than ±15% from
# the checked-in baseline in BENCH_throughput.json.
#
# Set HBDC_SKIP_PERF=1 to skip (e.g. on a loaded or throttled host).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${HBDC_SKIP_PERF:-0}" = "1" ]; then
    echo "perf guard skipped (HBDC_SKIP_PERF=1)"
    exit 0
fi

read_rate() {
    # The aggregate rate is the top-level two-space-indented key; the
    # per-benchmark entries are nested deeper and must not match.
    grep -m1 '^  "cycles_per_sec":' "$1" | grep -o '[0-9]\+'
}

baseline=$(read_rate BENCH_throughput.json)
[ -n "$baseline" ] || { echo "FAIL: no cycles_per_sec in BENCH_throughput.json" >&2; exit 1; }

cargo build --release -q -p hbdc-bench --bin throughput
tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-perf.XXXXXX")"
trap 'rm -rf "$tmp"' EXIT
bin="$PWD/target/release/throughput"

# The measurement is host-timing-sensitive; allow one retry before
# declaring a regression so a single noisy run can't fail the gate.
for attempt in 1 2; do
    (cd "$tmp" && "$bin" --scale small >/dev/null)
    rate=$(read_rate "$tmp/BENCH_throughput.json")
    echo "measured $rate cycles/sec (baseline $baseline, attempt $attempt)"
    if awk -v b="$baseline" -v n="$rate" \
        'BEGIN { d = (n - b) / b; exit (d > 0.15 || d < -0.15) ? 1 : 0 }'; then
        echo "perf guard passed: within ±15% of baseline"
        exit 0
    fi
done

echo "FAIL: throughput $rate cycles/sec is outside ±15% of baseline $baseline" >&2
exit 1
