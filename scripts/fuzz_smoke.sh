#!/usr/bin/env bash
# Differential-fuzzing smoke (~30 s): proves the catch -> shrink ->
# artifact pipeline fires on an injected fault, then runs a short seeded
# session across the full relation catalog. Zero violations expected —
# any repro the session writes is printed and fails the gate.
#
# HBDC_FUZZ_SEED / HBDC_FUZZ_BUDGET override the session for ad-hoc or
# nightly use (the nightly CI job runs a much larger budget).
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${HBDC_FUZZ_SEED:-1}"
BUDGET="${HBDC_FUZZ_BUDGET:-200}"

tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-fuzz-smoke.XXXXXX")"
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

cargo build --release -q --bin hbdc-sim
bin="target/release/hbdc-sim"

echo "-- fault-injection self-test (auditor catches, shrinker reduces)"
"$bin" fuzz --selftest --corpus "$tmp/selftest-corpus"

echo "-- seeded session: seed $SEED, budget $BUDGET"
status=0
"$bin" fuzz --seed "$SEED" --budget "$BUDGET" --small --matrix-every 50 \
    --corpus "$tmp/corpus" || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: fuzz session exited $status; repro artifacts:" >&2
    find "$tmp/corpus" -type f | sed 's/^/   /' >&2 || true
    for r in "$tmp/corpus"/*/report.txt; do
        [ -e "$r" ] && { echo "--- $r" >&2; cat "$r" >&2; }
    done
    exit "$status"
fi

echo "fuzz smoke passed: self-test + $BUDGET-program session clean"
