#!/usr/bin/env bash
# Kill-and-resume integration test for the journaled matrix runner.
#
# Starts a journaled `table3` campaign, SIGINTs it mid-flight (after at
# least one cell has been journaled), asserts the interrupted exit code
# (130), resumes from the journal, and checks the resumed campaign's
# stdout is byte-identical to an uninterrupted run of the same matrix.
#
# The campaign runs `compress`, whose runs contain idle spans that the
# event calendar fast-forwards over; the runner's cycle-chunked
# checkpoints land at arbitrary cycle counts, so interrupting it also
# exercises snapshots cut *inside* a skipped span (the resumed half must
# re-derive the remainder of the span bit-identically — the unit goldens
# in `crates/cpu/src/snapshot.rs` pin this per port model).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-resume.XXXXXX")"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -q -p hbdc-bench --bin table3
bin="target/release/table3"
journal="$tmp/t3.journal"
common=(--scale small --bench compress --threads 1)

echo "-- journaled run (will be interrupted)"
"$bin" "${common[@]}" --journal "$journal" \
    >"$tmp/interrupted.out" 2>"$tmp/interrupted.err" &
pid=$!

# Wait until the run is provably mid-flight: the journal flushes after
# every completed cell, so one `ok` line means more cells are pending.
for _ in $(seq 1 400); do
    if grep -qs '^ok ' "$journal"; then break; fi
    sleep 0.05
done
grep -qs '^ok ' "$journal" || {
    echo "FAIL: journal never recorded a completed cell" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
}

kill -INT "$pid" 2>/dev/null || true
status=0
wait "$pid" || status=$?
if [ "$status" -ne 130 ]; then
    echo "FAIL: interrupted run exited $status, expected 130" >&2
    cat "$tmp/interrupted.err" >&2
    exit 1
fi
done_cells=$(grep -c '^ok ' "$journal")
echo "   interrupted after $done_cells journaled cell(s), exit 130"

echo "-- resume from the journal"
"$bin" "${common[@]}" --resume "$journal" >"$tmp/resumed.out" 2>"$tmp/resumed.err"

echo "-- uninterrupted reference run"
"$bin" "${common[@]}" >"$tmp/fresh.out" 2>"$tmp/fresh.err"

if ! diff -u "$tmp/fresh.out" "$tmp/resumed.out"; then
    echo "FAIL: resumed campaign output differs from the uninterrupted run" >&2
    exit 1
fi

leftover=$(find "$tmp" -name '*.cell*.snap' | wc -l)
if [ "$leftover" -ne 0 ]; then
    echo "FAIL: $leftover cell checkpoint(s) not cleaned up after resume" >&2
    exit 1
fi

echo "resume test passed: resumed output identical to uninterrupted run"
