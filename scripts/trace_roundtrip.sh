#!/usr/bin/env bash
# Trace round-trip gate: captures an HBTR trace with `hbdc-sim trace
# capture`, verifies `trace info` reads the sealed file back, and checks
# that a timing-only replay of the trace reports bit-identically to an
# execute-mode run of the same program under each of the four port
# models. This is the shell-level counterpart of the replay_golden test
# suite: it exercises the actual CLI surface and the on-disk format.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --bin hbdc-sim
bin="$PWD/target/release/hbdc-sim"
tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-trace.XXXXXX")"
trap 'rm -rf "$tmp"' EXIT

"$bin" trace capture bench:li --scale test -o "$tmp/li.hbtr" >/dev/null
"$bin" trace info "$tmp/li.hbtr" | grep -q 'complete *yes' || {
    echo "FAIL: trace info does not report a complete capture" >&2
    exit 1
}

# A flipped byte in the sealed stream must be a typed error, not a panic
# or a silent misparse.
cp "$tmp/li.hbtr" "$tmp/corrupt.hbtr"
printf '\xff' | dd of="$tmp/corrupt.hbtr" bs=1 seek=64 conv=notrunc status=none
if "$bin" trace info "$tmp/corrupt.hbtr" >/dev/null 2>"$tmp/err.txt"; then
    echo "FAIL: corrupted trace was accepted" >&2
    exit 1
fi
grep -qi 'hbdc-sim:' "$tmp/err.txt" || {
    echo "FAIL: corrupted trace did not produce a typed CLI error" >&2
    exit 1
}

# The first report line names the input (program path vs trace path), so
# the bit-identity comparison starts at line 2.
for port in ideal:4 bank:4 lbic:4x2 repl:2; do
    "$bin" run bench:li --scale test --port "$port" | tail -n +2 >"$tmp/exec.txt"
    "$bin" trace replay "$tmp/li.hbtr" --port "$port" | tail -n +2 >"$tmp/replay.txt"
    diff -u "$tmp/exec.txt" "$tmp/replay.txt" || {
        echo "FAIL: replay diverges from execute under $port" >&2
        exit 1
    }
done
echo "trace round-trip passed: replay bit-identical to execute for 4 port models"
