#!/usr/bin/env bash
# Chaos test for the multi-process campaign supervisor.
#
# Asserts the supervision protocol's end-to-end contract: N cooperating
# `--shard` processes drain one journal with every cell completed exactly
# once; SIGKILLed workers and supervisors, SIGSTOP/SIGCONT wedges, and
# corrupted on-disk artifacts (bit-flipped / truncated trace-cache files,
# cell checkpoints, and torn worker result files) cost attempts and
# re-runs — never wrong results;
# and the final campaign output is byte-identical to a clean
# single-process run. Also pins the quarantine contract: cells that fail
# every attempt quarantine (exit 3) instead of failing the campaign, and
# a rerun with a larger --max-attempts revives them.
#
# Adversity is seeded (HBDC_CHAOS_SEED, default 1997) so the kill/stop
# schedule is reproducible modulo OS scheduling. HBDC_CHAOS_QUICK=1 runs
# a single-benchmark matrix with fewer chaos rounds (the CI/check.sh
# configuration).
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${HBDC_CHAOS_SEED:-1997}"
RANDOM=$SEED

tmp="$(mktemp -d "${TMPDIR:-/tmp}/hbdc-chaos.XXXXXX")"
cleanup() {
    pkill -CONT -f "hbdc-sim campaign .*$tmp" 2>/dev/null || true
    pkill -9 -f "hbdc-sim campaign .*$tmp" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

cargo build --release -q --bin hbdc-sim
bin="target/release/hbdc-sim"

if [ -n "${HBDC_CHAOS_QUICK:-}" ]; then
    common=(campaign table4 --scale test --bench li)
    shards=2 rounds=2
else
    common=(campaign table4 --scale test)
    shards=3 rounds=5
fi
# Fast retries and lease expiry so the test exercises steals and backoff
# in seconds, not minutes.
export HBDC_RETRY_BACKOFF_MS=25

echo "-- phase 1: clean single-process reference run"
"$bin" "${common[@]}" >"$tmp/ref.out" 2>"$tmp/ref.err"
echo "   reference table captured"

echo "-- phase 2: $shards cooperating shard processes drain one journal"
journal="$tmp/drain.journal"
pids=()
for i in $(seq 1 "$shards"); do
    "$bin" "${common[@]}" --journal "$journal" --shard --threads 2 \
        >"$tmp/drain$i.out" 2>"$tmp/drain$i.err" &
    pids+=($!)
done
for i in $(seq 1 "$shards"); do
    status=0
    wait "${pids[$((i - 1))]}" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "FAIL: shard $i exited $status" >&2
        cat "$tmp/drain$i.err" >&2
        exit 1
    fi
    if ! cmp -s "$tmp/ref.out" "$tmp/drain$i.out"; then
        echo "FAIL: shard $i stdout differs from the clean run" >&2
        diff -u "$tmp/ref.out" "$tmp/drain$i.out" >&2 || true
        exit 1
    fi
done
cells=$(awk '$1 == "cells" { print $2 }' "$journal")
oks=$(grep -c '^ok ' "$journal")
dups=$(awk '$1 == "ok" { print $2 }' "$journal" | sort -n | uniq -d | wc -l)
if [ "$oks" -ne "$cells" ] || [ "$dups" -ne 0 ]; then
    echo "FAIL: lease accounting: $oks ok records for $cells cells, $dups duplicated" >&2
    exit 1
fi
echo "   $shards shards, $cells cells completed exactly once, outputs identical"

echo "-- phase 3: quarantine contract (exit 3) and revival"
qj="$tmp/quar.journal"
status=0
HBDC_CHAOS_FAIL_CELLS="1,4" "$bin" "${common[@]}" --journal "$qj" --shard --threads 2 \
    >"$tmp/quar.out" 2>"$tmp/quar.err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: quarantined campaign exited $status, expected 3" >&2
    cat "$tmp/quar.err" >&2
    exit 1
fi
quars=$(grep -c '^quar ' "$qj")
if [ "$quars" -ne 2 ]; then
    echo "FAIL: expected 2 quarantined cells, journal has $quars" >&2
    exit 1
fi
# Same budget, no injected failures: the cells stay quarantined (exit 3).
status=0
"$bin" "${common[@]}" --journal "$qj" --shard --threads 2 >/dev/null 2>&1 || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: rerun at the same budget exited $status, expected 3" >&2
    exit 1
fi
# A raised budget revives them, and the healed campaign matches the
# reference bit for bit.
"$bin" "${common[@]}" --journal "$qj" --shard --threads 2 --max-attempts 5 \
    >"$tmp/revived.out" 2>"$tmp/revived.err"
if ! cmp -s "$tmp/ref.out" "$tmp/revived.out"; then
    echo "FAIL: revived campaign differs from the clean run" >&2
    diff -u "$tmp/ref.out" "$tmp/revived.out" >&2 || true
    exit 1
fi
echo "   quarantine (exit 3) and --max-attempts revival verified"

echo "-- phase 3b: garbled worker result files are typed, charged, quarantined"
gj="$tmp/garble.journal"
status=0
HBDC_CHAOS_GARBLE_CELLS="2" "$bin" "${common[@]}" --journal "$gj" --shard --threads 2 \
    >"$tmp/garble.out" 2>"$tmp/garble.err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: garbled-result campaign exited $status, expected 3" >&2
    cat "$tmp/garble.err" >&2
    exit 1
fi
if ! grep -q 'garbled result file' "$gj"; then
    echo "FAIL: journal does not carry the typed garbled-result error" >&2
    cat "$gj" >&2
    exit 1
fi
# Seam off, budget raised: the cell heals and the campaign matches the
# reference bit for bit.
"$bin" "${common[@]}" --journal "$gj" --shard --threads 2 --max-attempts 5 \
    >"$tmp/garble-healed.out" 2>"$tmp/garble-healed.err"
if ! cmp -s "$tmp/ref.out" "$tmp/garble-healed.out"; then
    echo "FAIL: healed garbled campaign differs from the clean run" >&2
    diff -u "$tmp/ref.out" "$tmp/garble-healed.out" >&2 || true
    exit 1
fi
echo "   torn result files cost attempts, never wrong results; healed on rerun"

echo "-- phase 4: seeded adversity (seed $SEED, $rounds rounds)"
cj="$tmp/chaos.journal"
traces="$tmp/traces"
chaos_args=(--journal "$cj" --shard --threads 1 --max-attempts 99 \
    --lease-ttl-secs 1 --trace-cache "$traces")

# Flips one byte of a file in place (offset from the seeded RNG).
flip_byte() {
    local f=$1 size off
    size=$(wc -c <"$f")
    [ "$size" -gt 0 ] || return 0
    off=$((RANDOM % size))
    printf '\252' | dd of="$f" bs=1 seek="$off" conv=notrunc status=none
}

# Truncates a file to half its size.
truncate_half() {
    local f=$1 size
    size=$(wc -c <"$f")
    [ "$size" -gt 1 ] || return 0
    head -c $((size / 2)) "$f" >"$f.torn" && mv "$f.torn" "$f"
}

for round in $(seq 1 "$rounds"); do
    done_cells=$(grep -cs '^ok ' "$cj" || true)
    if [ "${done_cells:-0}" -ge "$cells" ]; then
        echo "   campaign converged after $((round - 1)) chaos round(s)"
        break
    fi
    sup=()
    for i in 1 2; do
        "$bin" "${common[@]}" "${chaos_args[@]}" \
            >"$tmp/chaos-r$round-$i.out" 2>"$tmp/chaos-r$round-$i.err" &
        sup+=($!)
    done
    sleep "0.$((RANDOM % 5 + 2))"
    case $((RANDOM % 4)) in
    0)
        victim=${sup[$((RANDOM % 2))]}
        echo "   round $round: SIGKILL supervisor $victim"
        kill -9 "$victim" 2>/dev/null || true
        ;;
    1)
        wpid=$(pgrep -f "hbdc-sim campaign .*--worker-cell" | head -1 || true)
        echo "   round $round: SIGKILL worker ${wpid:-<none in flight>}"
        [ -n "$wpid" ] && kill -9 "$wpid" 2>/dev/null || true
        ;;
    2)
        victim=${sup[$((RANDOM % 2))]}
        echo "   round $round: SIGSTOP/SIGCONT supervisor $victim (lease steal window)"
        kill -STOP "$victim" 2>/dev/null || true
        sleep "1.$((RANDOM % 5))"
        kill -CONT "$victim" 2>/dev/null || true
        ;;
    3)
        victim=${sup[$((RANDOM % 2))]}
        echo "   round $round: SIGINT supervisor $victim (graceful checkpoint)"
        kill -INT "$victim" 2>/dev/null || true
        ;;
    esac
    sleep "0.$((RANDOM % 3 + 1))"
    # Let the survivors run a little longer, then clear the field for the
    # next round (leases released by SIGINT, or stolen after the TTL).
    for p in "${sup[@]}"; do
        kill -INT "$p" 2>/dev/null || true
    done
    for p in "${sup[@]}"; do
        wait "$p" || true
    done
    # Corrupt artifacts between resumes: one bit-flip and one truncation
    # across the cell checkpoints and the shared trace cache.
    snaps=("$cj".cell*.snap)
    if [ -e "${snaps[0]:-}" ]; then
        flip_byte "${snaps[$((RANDOM % ${#snaps[@]}))]}"
    fi
    hbtrs=("$traces"/*.hbtr)
    if [ -e "${hbtrs[0]:-}" ]; then
        truncate_half "${hbtrs[$((RANDOM % ${#hbtrs[@]}))]}"
    fi
done

# Final clean convergence: one undisturbed supervisor finishes whatever
# the chaos left behind and reprints the whole campaign.
status=0
"$bin" "${common[@]}" "${chaos_args[@]}" \
    >"$tmp/final.out" 2>"$tmp/final.err" || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: final convergence run exited $status" >&2
    cat "$tmp/final.err" >&2
    exit 1
fi
if ! cmp -s "$tmp/ref.out" "$tmp/final.out"; then
    echo "FAIL: post-chaos campaign differs from the clean single-process run" >&2
    diff -u "$tmp/ref.out" "$tmp/final.out" >&2 || true
    exit 1
fi
oks=$(grep -c '^ok ' "$cj")
dups=$(awk '$1 == "ok" { print $2 }' "$cj" | sort -n | uniq -d | wc -l)
bad=$(grep -Ec '^(fail|quar|lease) ' "$cj" || true)
if [ "$oks" -ne "$cells" ] || [ "$dups" -ne 0 ] || [ "$bad" -ne 0 ]; then
    echo "FAIL: post-chaos journal: $oks/$cells ok, $dups duplicated, $bad non-terminal" >&2
    cat "$cj" >&2
    exit 1
fi
leftover=$(find "$tmp" -name '*.cell*.snap' | wc -l)
if [ "$leftover" -ne 0 ]; then
    echo "FAIL: $leftover cell checkpoint(s) not cleaned up after convergence" >&2
    exit 1
fi
evictions=$(cat "$tmp"/chaos-r*-*.err "$tmp/final.err" 2>/dev/null | grep -c 'evicted' || true)
corpses=$(find "$tmp" -name '*.corrupt' | wc -l)
echo "   self-healing: $evictions eviction warning(s), $corpses quarantined artifact(s) on disk"

echo "chaos test passed: $cells cells exactly once, bit-identical to the clean run"
