#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap on the simulate path)"
cargo clippy -p hbdc-core -p hbdc-cpu --lib -- -D warnings -D clippy::unwrap_used

echo "== cargo test"
cargo test --workspace -q

echo "== cargo test --features audit (invariant auditor on)"
cargo test -p hbdc-cpu -p hbdc-bench --features audit -q

echo "== kill-and-resume integration test"
scripts/resume_test.sh

echo "== trace round-trip (capture / info / replay == execute)"
scripts/trace_roundtrip.sh

echo "== multi-process supervisor chaos test (quick, seeded)"
HBDC_CHAOS_QUICK=1 scripts/chaos_test.sh

echo "== differential fuzz smoke (self-test + seeded session)"
scripts/fuzz_smoke.sh

echo "== throughput regression guard (HBDC_SKIP_PERF=1 to skip)"
scripts/perf_guard.sh

echo "All checks passed."
