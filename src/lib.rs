//! # hbdc — High-Bandwidth Data Cache design for multi-issue processors
//!
//! A from-scratch reproduction of *Rivers, Tyson, Davidson, Austin — "On
//! High-Bandwidth Data Cache Design for Multi-Issue Processors"*,
//! MICRO-30, 1997: the **Locality-Based Interleaved Cache (LBIC)** and
//! everything needed to evaluate it — a MIPS-like micro-ISA with an
//! assembler, a dynamic superscalar out-of-order timing simulator
//! (RUU + LSQ), a two-level non-blocking memory hierarchy, four cache
//! port-arbitration models (ideal, replicated, banked, LBIC), reference
//! stream analysis, and ten SPEC95 workload analogs.
//!
//! This crate is the facade: it re-exports each subsystem under a short
//! module name and offers a [`prelude`] for experiment scripts.
//!
//! ## Quickstart
//!
//! ```
//! use hbdc::prelude::*;
//!
//! // Assemble a kernel, then measure IPC under a 4x2 LBIC.
//! let program = assemble(
//!     ".data\nv: .space 4096\n.text\nmain:\n  la r8, v\n  li r9, 256\n\
//!      loop:\n  lw r1, 0(r8)\n  lw r2, 8(r8)\n  addi r8, r8, 16\n\
//!      addi r9, r9, -1\n  bnez r9, loop\n  halt\n",
//! )?;
//! let report = Simulator::new(
//!     &program,
//!     CpuConfig::default(),
//!     HierarchyConfig::default(),
//!     PortConfig::lbic(4, 2),
//! )
//! .run()?;
//! assert!(report.ipc() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `hbdc-isa` | micro-ISA, assembler, disassembler |
//! | [`mem`] | `hbdc-mem` | flat memory, tag arrays, MSHRs, hierarchy, bank mapping |
//! | [`core`] | `hbdc-core` | port models: ideal / replicated / banked / **LBIC** |
//! | [`cpu`] | `hbdc-cpu` | out-of-order timing simulator (RUU + LSQ) |
//! | [`trace`] | `hbdc-trace` | Figure-3 analysis, conflict stats, stream generators |
//! | [`workloads`] | `hbdc-workloads` | the ten SPEC95 benchmark analogs |
//! | [`stats`] | `hbdc-stats` | counters, histograms, tables |
//! | [`snap`] | `hbdc-snap` | checkpoint codec, sealed containers, SIGINT latch |
//! | [`fuzz`] | `hbdc-fuzz` | differential fuzzing: generator, metamorphic oracle, shrinker |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hbdc_core as core;
pub use hbdc_cpu as cpu;
pub use hbdc_fuzz as fuzz;
pub use hbdc_isa as isa;
pub use hbdc_mem as mem;
pub use hbdc_snap as snap;
pub use hbdc_stats as stats;
pub use hbdc_trace as trace;
pub use hbdc_workloads as workloads;

/// The types most experiment scripts need, in one import.
///
/// # Examples
///
/// ```
/// use hbdc::prelude::*;
///
/// let bench = by_name("mgrid").expect("registered benchmark");
/// let program = bench.build(Scale::Test);
/// assert!(!program.text().is_empty());
/// ```
pub mod prelude {
    pub use hbdc_core::{
        CombinePolicy, FaultClass, FaultInjector, MemRequest, PortConfig, PortModel, Violation,
    };
    pub use hbdc_cpu::{CpuConfig, Emulator, SimError, SimReport, SimSnapshot, Simulator};
    pub use hbdc_isa::asm::assemble;
    pub use hbdc_isa::Program;
    pub use hbdc_mem::{BankMapper, BankSelect, CacheGeometry, Hierarchy, HierarchyConfig};
    pub use hbdc_trace::{
        ConsecutiveMapping, MemRef, StreamGenerator, StreamParams, TraceCacheSim,
    };
    pub use hbdc_workloads::{all, by_name, Benchmark, Scale, Suite};
}
