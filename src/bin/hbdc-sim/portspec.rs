//! Port-model specification parsing for the CLI.
//!
//! Grammar:
//!
//! ```text
//! ideal:P            true multi-porting with P ports
//! repl:P             replicated cache with P copies
//! bank:M             M line-interleaved banks, bit selection
//! bank:M:xor         … with XOR-fold bank selection
//! bank:M:rand        … with pseudo-random bank selection
//! lbic:MxN           MxN LBIC, 8-entry store queues, leading-request
//! lbic:MxN:sq=K      … with K-entry store queues
//! lbic:MxN:largest   … with the largest-group combining policy
//! ```

use hbdc::prelude::*;

/// Parses a port-model specification.
pub fn parse_port(spec: &str) -> Result<PortConfig, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || format!("bad port spec `{spec}`");
    match parts.as_slice() {
        ["ideal", p] => Ok(PortConfig::Ideal {
            ports: p.parse().map_err(|_| bad())?,
        }),
        ["repl", p] => Ok(PortConfig::Replicated {
            ports: p.parse().map_err(|_| bad())?,
        }),
        ["bank", m] => Ok(PortConfig::Banked {
            banks: m.parse().map_err(|_| bad())?,
            select: BankSelect::BitSelect,
        }),
        ["bank", m, sel] => {
            let select = match *sel {
                "bit" => BankSelect::BitSelect,
                "xor" => BankSelect::XorFold,
                "rand" => BankSelect::PseudoRandom,
                _ => return Err(bad()),
            };
            Ok(PortConfig::Banked {
                banks: m.parse().map_err(|_| bad())?,
                select,
            })
        }
        ["lbic", mxn, rest @ ..] => {
            let (m, n) = mxn.split_once('x').ok_or_else(bad)?;
            let banks: u32 = m.parse().map_err(|_| bad())?;
            let line_ports: usize = n.parse().map_err(|_| bad())?;
            let mut store_queue = 8usize;
            let mut policy = CombinePolicy::LeadingRequest;
            for opt in rest {
                if let Some(k) = opt.strip_prefix("sq=") {
                    store_queue = k.parse().map_err(|_| bad())?;
                } else if *opt == "largest" {
                    policy = CombinePolicy::LargestGroup;
                } else if *opt == "leading" {
                    policy = CombinePolicy::LeadingRequest;
                } else {
                    return Err(bad());
                }
            }
            Ok(PortConfig::Lbic {
                banks,
                line_ports,
                store_queue,
                policy,
            })
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_and_repl() {
        assert_eq!(
            parse_port("ideal:4").unwrap(),
            PortConfig::Ideal { ports: 4 }
        );
        assert_eq!(
            parse_port("repl:2").unwrap(),
            PortConfig::Replicated { ports: 2 }
        );
    }

    #[test]
    fn banked_with_selects() {
        assert_eq!(parse_port("bank:8").unwrap(), PortConfig::banked(8));
        assert_eq!(
            parse_port("bank:8:xor").unwrap(),
            PortConfig::Banked {
                banks: 8,
                select: BankSelect::XorFold
            }
        );
        assert_eq!(
            parse_port("bank:4:rand").unwrap(),
            PortConfig::Banked {
                banks: 4,
                select: BankSelect::PseudoRandom
            }
        );
    }

    #[test]
    fn lbic_variants() {
        assert_eq!(parse_port("lbic:4x2").unwrap(), PortConfig::lbic(4, 2));
        assert_eq!(
            parse_port("lbic:2x4:sq=16:largest").unwrap(),
            PortConfig::Lbic {
                banks: 2,
                line_ports: 4,
                store_queue: 16,
                policy: CombinePolicy::LargestGroup,
            }
        );
        assert_eq!(
            parse_port("lbic:8x2:leading").unwrap(),
            PortConfig::lbic(8, 2)
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "ideal",
            "ideal:x",
            "bank:three",
            "bank:4:fancy",
            "lbic:4",
            "lbic:4x",
            "lbic:4x2:sq=",
            "omega:4",
        ] {
            assert!(parse_port(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
