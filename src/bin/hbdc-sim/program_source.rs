//! Resolving a CLI program argument to an assembled [`Program`].
//!
//! Accepted forms:
//! * `bench:NAME` — a registered SPEC95 analog (respects `--scale`);
//! * `*.hbo` — a binary object produced by `hbdc-sim asm`;
//! * anything else — assembly source text on disk.

use hbdc::prelude::*;

/// Loads the program named by `target`.
pub fn load_program(target: &str, args: &[String]) -> Result<Program, String> {
    if let Some(name) = target.strip_prefix("bench:") {
        let bench =
            by_name(name).ok_or_else(|| format!("unknown benchmark `{name}` (see bench-list)"))?;
        let scale = match args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
        {
            None | Some("test") => Scale::Test,
            Some("small") => Scale::Small,
            Some("full") => Scale::Full,
            Some(other) => return Err(format!("unknown scale `{other}`")),
        };
        return Ok(bench.build(scale));
    }
    if target.ends_with(".hbo") {
        let bytes = std::fs::read(target).map_err(|e| format!("{target}: {e}"))?;
        return hbdc::isa::object::from_bytes(&bytes).map_err(|e| e.to_string());
    }
    let src = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
    assemble(&src).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_prefix_resolves() {
        let p = load_program("bench:li", &[]).expect("li resolves");
        assert!(!p.text().is_empty());
    }

    #[test]
    fn bench_scale_flag_respected() {
        let small = load_program("bench:li", &["--scale".to_string(), "small".to_string()])
            .expect("resolves");
        let test = load_program("bench:li", &[]).expect("resolves");
        // Same static program; the scale changes loop counts, which shows
        // up as a different immediate somewhere — compare text lengths as
        // a proxy for "same kernel, different parameters".
        assert_eq!(small.text().len(), test.text().len());
    }

    #[test]
    fn unknown_bench_errors() {
        assert!(load_program("bench:doom", &[]).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_program("/nonexistent/x.s", &[]).is_err());
    }

    #[test]
    fn source_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("hbdc_sim_test_kernel.s");
        std::fs::write(&path, "main: li r1, 5\n halt\n").unwrap();
        let p = load_program(path.to_str().unwrap(), &[]).expect("assembles");
        assert_eq!(p.text().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn object_file_roundtrip() {
        let dir = std::env::temp_dir();
        let src_path = dir.join("hbdc_sim_test_kernel2.s");
        let obj_path = dir.join("hbdc_sim_test_kernel2.hbo");
        std::fs::write(&src_path, "main: li r1, 5\n nop\n halt\n").unwrap();
        let p = load_program(src_path.to_str().unwrap(), &[]).expect("assembles");
        std::fs::write(&obj_path, hbdc::isa::object::to_bytes(&p)).unwrap();
        let q = load_program(obj_path.to_str().unwrap(), &[]).expect("decodes");
        assert_eq!(p.text(), q.text());
        std::fs::remove_file(&src_path).ok();
        std::fs::remove_file(&obj_path).ok();
    }
}
