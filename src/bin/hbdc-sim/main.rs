//! `hbdc-sim` — command-line driver for the hbdc simulator stack.
//!
//! ```text
//! hbdc-sim run <prog.s|prog.hbo|bench:NAME> [--port SPEC] [--max-insts N]
//!              [--ruu N] [--lsq N] [--ls-units N] [--scale test|small|full]
//!              [--frontend perfect|gshare|bimodal]
//!              [--audit] [--max-cycles N] [--inject SEED]
//!              [--checkpoint PATH [--every N]]
//! hbdc-sim resume <snapshot> [--checkpoint PATH] [--every N]
//! hbdc-sim trace capture <prog.s|prog.hbo|bench:NAME> -o <trace.hbtr>
//!              [--warmup N] [--cap N] [--scale test|small|full]
//! hbdc-sim trace info <trace.hbtr>           print HBTR header + stream stats
//! hbdc-sim trace replay <trace.hbtr> [--port SPEC] [--ruu N] [--lsq N] ...
//! hbdc-sim asm <prog.s> -o <prog.hbo>        assemble to a binary object
//! hbdc-sim disasm <prog.s|prog.hbo>          print assembler-compatible text
//! hbdc-sim analyze <prog.s|bench:NAME>       stream locality + reuse report
//! hbdc-sim bench-list                        list the SPEC95 analogs
//! hbdc-sim campaign table3|table4 [--scale ...] [--bench NAME] [--csv]
//!              [--journal PATH | --resume PATH] [--shard] [--threads N]
//!              [--max-attempts N] [--lease-ttl-secs N] [--timeout-secs N]
//!              [--trace-mode execute|replay] [--trace-cache DIR]
//! hbdc-sim fuzz [--seed N] [--budget N] [--corpus DIR] [--matrix-every N]
//!              [--small] [--keep-going] [--selftest]
//! ```
//!
//! `trace capture` runs the functional model once and seals the committed
//! stream into an HBTR file; `trace replay` then drives the timing model
//! from that file under any port configuration, producing a report
//! bit-identical to an execute-mode run of the same program — the
//! expensive functional pass is paid once, not once per configuration.
//!
//! With `--checkpoint`, the run writes a crash-safe snapshot of the full
//! simulator state every `--every` cycles (default 1 000 000) and on
//! Ctrl-C, and `hbdc-sim resume <snapshot>` continues it bit-identically
//! — the resumed run's report equals an uninterrupted one's.
//!
//! Port SPEC grammar: `ideal:4`, `repl:2`, `bank:8`, `bank:8:xor`,
//! `bank:8:rand`, `lbic:4x2`, `lbic:4x2:sq=16`, `lbic:4x2:largest`.

mod portspec;
mod program_source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hbdc::prelude::*;

use portspec::parse_port;
use program_source::load_program;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hbdc-sim run <prog.s|prog.hbo|bench:NAME> [--port SPEC] [--max-insts N]\n\
         \x20          [--ruu N] [--lsq N] [--ls-units N] [--scale test|small|full]\n\
         \x20          [--audit] [--max-cycles N] [--inject SEED]\n\
         \x20          [--checkpoint PATH [--every N]]\n  \
         hbdc-sim resume <snapshot> [--checkpoint PATH] [--every N]\n  \
         hbdc-sim trace capture <prog.s|prog.hbo|bench:NAME> -o <trace.hbtr>\n\
         \x20          [--warmup N] [--cap N] [--scale test|small|full]\n  \
         hbdc-sim trace info <trace.hbtr>\n  \
         hbdc-sim trace replay <trace.hbtr> [--port SPEC] [--ruu N] [--lsq N]\n\
         \x20          [--ls-units N] [--audit] [--max-cycles N]\n\
         \x20          [--checkpoint PATH [--every N]]\n  \
         hbdc-sim asm <prog.s> -o <prog.hbo>\n  \
         hbdc-sim disasm <prog.s|prog.hbo>\n  \
         hbdc-sim analyze <prog.s|bench:NAME> [--banks N] [--scale ...]\n  \
         hbdc-sim bench-list\n  \
         hbdc-sim campaign table3|table4 [--scale ...] [--bench NAME] [--csv]\n\
         \x20          [--journal PATH | --resume PATH] [--shard] [--threads N]\n\
         \x20          [--max-attempts N] [--lease-ttl-secs N] [--timeout-secs N]\n  \
         hbdc-sim fuzz [--seed N] [--budget N] [--corpus DIR] [--matrix-every N]\n\
         \x20          [--small] [--keep-going] [--selftest]\n\n\
         port SPEC: ideal:P | repl:P | bank:M[:xor|:rand] | lbic:MxN[:sq=K][:largest]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{v}`")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing program argument")?;
    let program = load_program(target, args)?;
    let port = parse_port(&flag_value(args, "--port").unwrap_or_else(|| "lbic:4x2".into()))?;
    let front_end = match flag_value(args, "--frontend").as_deref() {
        None | Some("perfect") => hbdc::cpu::FrontEnd::Perfect,
        Some("gshare") => hbdc::cpu::FrontEnd::Predicted {
            kind: hbdc::cpu::PredictorKind::Gshare {
                entries: 4096,
                history_bits: 12,
            },
            redirect_penalty: 3,
        },
        Some("bimodal") => hbdc::cpu::FrontEnd::Predicted {
            kind: hbdc::cpu::PredictorKind::Bimodal { entries: 2048 },
            redirect_penalty: 3,
        },
        Some(other) => return Err(format!("unknown front end `{other}`")),
    };
    let inject_seed = match flag_value(args, "--inject") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--inject expects a seed, got `{v}`"))?,
        ),
    };
    let cfg = CpuConfig {
        ruu_size: parse_num(args, "--ruu", 1024)? as usize,
        lsq_size: parse_num(args, "--lsq", 512)? as usize,
        ls_units: parse_num(args, "--ls-units", 64)? as u32,
        max_insts: parse_num(args, "--max-insts", u64::MAX)?,
        max_cycles: parse_num(args, "--max-cycles", u64::MAX)?,
        // --inject without --audit would corrupt arbitration silently, so
        // injection forces the auditor on.
        audit: args.iter().any(|a| a == "--audit")
            || inject_seed.is_some()
            || CpuConfig::default().audit,
        front_end,
        ..CpuConfig::default()
    };
    let checkpoint = checkpoint_from_args(args)?;
    if checkpoint.is_some() && inject_seed.is_some() {
        return Err(
            "--checkpoint cannot be combined with --inject (a fault-injected port model \
             cannot be reconstructed from a snapshot)"
                .into(),
        );
    }
    let hier_cfg = HierarchyConfig::default();
    let mut sim = match inject_seed {
        Some(seed) => {
            let injector = FaultInjector::auto(port, hier_cfg.l1_line, seed)?;
            Simulator::with_port_model(&program, cfg, hier_cfg, Box::new(injector))
        }
        None => Simulator::try_new(&program, cfg, hier_cfg, port).map_err(|e| e.to_string())?,
    };
    let report = drive(&mut sim, checkpoint.as_ref())?;
    let (branches, mispredicts) = sim.branch_stats();
    print_report(target, &report, branches, mispredicts);
    Ok(())
}

/// Continues a checkpointed run from its snapshot file. By default the
/// run keeps checkpointing to the same file; `--checkpoint` redirects it.
fn cmd_resume(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing snapshot path")?;
    let snapshot = SimSnapshot::read_from_path(Path::new(target)).map_err(|e| e.to_string())?;
    let mut sim = Simulator::resume(&snapshot).map_err(|e| e.to_string())?;
    eprintln!(
        "hbdc-sim: resumed {} at cycle {} ({} committed)",
        target,
        sim.current_cycle(),
        sim.committed()
    );
    let path = flag_value(args, "--checkpoint").unwrap_or_else(|| target.clone());
    let every = checkpoint_every(args)?;
    let report = drive(&mut sim, Some(&(PathBuf::from(path), every)))?;
    let (branches, mispredicts) = sim.branch_stats();
    print_report(target, &report, branches, mispredicts);
    Ok(())
}

/// Dispatches `hbdc-sim trace capture|info|replay`.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or("trace expects a subcommand: capture, info, or replay")?;
    let rest = &args[1..];
    match sub.as_str() {
        "capture" => cmd_trace_capture(rest),
        "info" => cmd_trace_info(rest),
        "replay" => cmd_trace_replay(rest),
        other => Err(format!(
            "unknown trace subcommand `{other}` (expected capture, info, or replay)"
        )),
    }
}

/// Runs the functional model once and seals the committed stream into an
/// HBTR trace file. The capture is the execute-once half of trace-driven
/// simulation: every later `trace replay` of the file skips functional
/// execution entirely.
fn cmd_trace_capture(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing program argument")?;
    let output = flag_value(args, "-o").ok_or("missing -o <trace.hbtr>")?;
    let program = load_program(target, args)?;
    let warmup = parse_num(args, "--warmup", 0)?;
    let cap = match flag_value(args, "--cap") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--cap expects an instruction count, got `{v}`"))?,
        ),
    };
    let started = std::time::Instant::now();
    let trace =
        hbdc::cpu::CommittedTrace::capture(&program, warmup, cap).map_err(|e| e.to_string())?;
    trace
        .write_to_path(Path::new(&output))
        .map_err(|e| e.to_string())?;
    println!(
        "{output}: {} records ({} loads, {} stores), warmup {}, {} bytes, captured in {:.2}s{}",
        trace.records(),
        trace.loads(),
        trace.stores(),
        trace.warmup_insts(),
        trace.as_bytes().len(),
        started.elapsed().as_secs_f64(),
        if trace.is_complete() {
            ""
        } else {
            " [truncated by --cap; replay will refuse this trace]"
        }
    );
    Ok(())
}

/// Prints the HBTR header and stream statistics of a sealed trace file
/// without replaying it.
fn cmd_trace_info(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing trace file")?;
    let trace =
        hbdc::cpu::CommittedTrace::read_from_path(Path::new(input)).map_err(|e| e.to_string())?;
    let program = trace.program();
    println!("trace          {input}");
    println!(
        "format         HBTR v{} ({} bytes, checksum verified)",
        hbdc::cpu::TRACE_VERSION,
        trace.as_bytes().len()
    );
    println!(
        "program        {} instructions, {} data bytes, fingerprint {:016x}",
        program.text().len(),
        program.data().len(),
        trace.program_fingerprint()
    );
    println!(
        "warmup         {} instructions skipped",
        trace.warmup_insts()
    );
    println!(
        "records        {} committed ({} loads, {} stores)",
        trace.records(),
        trace.loads(),
        trace.stores()
    );
    println!(
        "complete       {}",
        if trace.is_complete() {
            "yes (ends at halt)"
        } else {
            "no (capture cap hit; not replayable)"
        }
    );
    Ok(())
}

/// Replays a captured trace through the timing model. The report is
/// bit-identical to an execute-mode run of the same program with the
/// same warmup — only the host time differs.
fn cmd_trace_replay(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing trace file")?;
    let trace =
        hbdc::cpu::CommittedTrace::read_from_path(Path::new(target)).map_err(|e| e.to_string())?;
    let port = parse_port(&flag_value(args, "--port").unwrap_or_else(|| "lbic:4x2".into()))?;
    let cfg = CpuConfig {
        ruu_size: parse_num(args, "--ruu", 1024)? as usize,
        lsq_size: parse_num(args, "--lsq", 512)? as usize,
        ls_units: parse_num(args, "--ls-units", 64)? as u32,
        max_insts: parse_num(args, "--max-insts", u64::MAX)?,
        max_cycles: parse_num(args, "--max-cycles", u64::MAX)?,
        audit: args.iter().any(|a| a == "--audit") || CpuConfig::default().audit,
        // Replay must start at the trace's own measurement point.
        warmup_insts: trace.warmup_insts(),
        ..CpuConfig::default()
    };
    let checkpoint = checkpoint_from_args(args)?;
    let hier_cfg = HierarchyConfig::default();
    let mut sim =
        Simulator::try_from_trace(&trace, cfg, hier_cfg, port).map_err(|e| e.to_string())?;
    let report = drive(&mut sim, checkpoint.as_ref())?;
    let (branches, mispredicts) = sim.branch_stats();
    print_report(target, &report, branches, mispredicts);
    Ok(())
}

/// Parses `--checkpoint PATH [--every N]` from a `run` invocation.
fn checkpoint_from_args(args: &[String]) -> Result<Option<(PathBuf, u64)>, String> {
    match flag_value(args, "--checkpoint") {
        Some(path) => Ok(Some((PathBuf::from(path), checkpoint_every(args)?))),
        None => {
            if args.iter().any(|a| a == "--every") {
                return Err("--every needs --checkpoint PATH to write snapshots to".into());
            }
            Ok(None)
        }
    }
}

/// Parses the `--every N` checkpoint cadence (cycles; default 1 000 000).
fn checkpoint_every(args: &[String]) -> Result<u64, String> {
    let every = parse_num(args, "--every", 1_000_000)?;
    if every == 0 {
        return Err("--every must be a positive cycle count".into());
    }
    Ok(every)
}

/// Drives a simulation to completion. Without a checkpoint spec this is
/// a plain run; with one, the run proceeds in `every`-cycle slices,
/// writing a crash-safe snapshot after each slice, checkpointing and
/// exiting with status 130 if Ctrl-C was pressed, and removing the
/// now-stale snapshot once the run finishes.
fn drive(sim: &mut Simulator, checkpoint: Option<&(PathBuf, u64)>) -> Result<SimReport, String> {
    let Some((path, every)) = checkpoint else {
        return sim.run().map_err(|e| e.to_string());
    };
    hbdc::snap::interrupt::install();
    loop {
        let done = sim.run_for(*every).map_err(|e| e.to_string())?;
        if done {
            let _ = std::fs::remove_file(path);
            return Ok(sim.report());
        }
        sim.save_snapshot()
            .write_to_path(path)
            .map_err(|e| e.to_string())?;
        if hbdc::snap::interrupt::requested() {
            eprintln!(
                "hbdc-sim: interrupted at cycle {} ({} committed); snapshot written to {}; \
                 continue with `hbdc-sim resume {}`",
                sim.current_cycle(),
                sim.committed(),
                path.display(),
                path.display()
            );
            std::process::exit(130);
        }
    }
}

/// Prints the end-of-run report block shared by `run` and `resume`.
fn print_report(target: &str, report: &SimReport, branches: u64, mispredicts: u64) {
    println!("program        {target}");
    println!("port model     {}", report.port_label);
    println!("committed      {}", report.committed);
    println!("cycles         {}", report.cycles);
    println!("IPC            {:.3}", report.ipc());
    println!("loads          {}", report.loads);
    println!("stores         {}", report.stores);
    println!("forwards       {}", report.forwards);
    println!(
        "L1             {} accesses, {} misses ({:.2}%), {} writebacks",
        report.l1_accesses,
        report.l1_misses,
        report.l1_miss_rate() * 100.0,
        report.l1_writebacks
    );
    println!(
        "L2             {} accesses, {} misses",
        report.l2_accesses, report.l2_misses
    );
    println!(
        "arbitration    {} offered, {} granted, {} bank conflicts, {} combined",
        report.arb_offered, report.arb_granted, report.bank_conflicts, report.combined
    );
    if report.store_serializations > 0 {
        println!("store bcasts   {}", report.store_serializations);
    }
    if branches > 0 {
        println!(
            "branches       {} ({} mispredicted, {:.2}%)",
            branches,
            mispredicts,
            mispredicts as f64 / branches as f64 * 100.0
        );
    }
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing input file")?;
    let output = flag_value(args, "-o").ok_or("missing -o <output>")?;
    let src = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let program = assemble(&src).map_err(|e| e.to_string())?;
    let bytes = hbdc::isa::object::to_bytes(&program);
    std::fs::write(&output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{output}: {} instructions, {} data bytes, {} bytes total",
        program.text().len(),
        program.data().len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing input file")?;
    let program = load_program(input, args)?;
    print!("{}", hbdc::isa::disasm::program_to_string(&program));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing program argument")?;
    let program = load_program(target, args)?;
    let banks = parse_num(args, "--banks", 4)? as u32;
    if banks < 2 || !banks.is_power_of_two() {
        return Err("--banks must be a power of two >= 2".into());
    }

    let mut emu = Emulator::new(&program);
    let mut f3 = ConsecutiveMapping::new(banks, 32);
    let mut dl1 = TraceCacheSim::paper_l1();
    let mut reuse = hbdc::trace::ReuseAnalyzer::new(32, 4096);
    let (mut total, mut loads, mut stores) = (0u64, 0u64, 0u64);
    while let Some(di) = emu.step() {
        total += 1;
        if let Some(addr) = di.addr {
            let r = if di.inst.is_store() {
                stores += 1;
                MemRef::store(addr)
            } else {
                loads += 1;
                MemRef::load(addr)
            };
            f3.record(r);
            dl1.access(r);
            reuse.record(r);
        }
    }

    println!("program            {target}");
    println!("instructions       {total}");
    println!(
        "memory mix         {:.1}% ({} loads, {} stores, s/l {:.2})",
        (loads + stores) as f64 / total as f64 * 100.0,
        loads,
        stores,
        stores as f64 / loads.max(1) as f64
    );
    println!(
        "32KB DM miss rate  {:.4} ({} misses)",
        dl1.stats().miss_rate(),
        dl1.stats().misses()
    );
    println!("footprint          {} lines", reuse.footprint_lines());
    for capacity in [256usize, 1024, 4096] {
        println!(
            "LRU x{capacity:<5} lines   predicted miss rate {:.4}",
            reuse.predicted_miss_rate(capacity)
        );
    }
    println!("consecutive mapping ({banks} banks):");
    let segs = f3.segments();
    println!("  B-same-line      {:.1}%", segs[0] * 100.0);
    println!("  B-diff-line      {:.1}%", segs[1] * 100.0);
    for (i, s) in segs[2..].iter().enumerate() {
        println!("  (B+{})%{banks}          {:.1}%", i + 1, s * 100.0);
    }
    Ok(())
}

/// Runs a whole table campaign through the journaled matrix engine —
/// including its sharded multi-process mode: start the same `campaign`
/// command with `--journal J --shard` in several terminals and they
/// drain one journal cooperatively (each cell in an isolated worker
/// subprocess, dead workers' leases stolen, flaky cells retried and
/// quarantined after `--max-attempts`). Exit code follows the matrix
/// contract: 0 clean, 1 failed cells, 3 only-quarantined cells, 130
/// interrupted-and-checkpointed.
fn cmd_campaign(args: &[String]) -> Result<ExitCode, String> {
    use hbdc_bench::runner::{
        benches_from_args, csv_from_args, scale_from_args, simulate_matrix, table3_columns,
        table4_columns,
    };

    let which = args
        .first()
        .ok_or("campaign expects a table: table3 or table4")?;
    let columns = match which.as_str() {
        "table3" => table3_columns(),
        "table4" => table4_columns(),
        other => {
            return Err(format!(
                "unknown campaign `{other}` (expected table3 or table4)"
            ))
        }
    };
    let benches = benches_from_args();
    let run = simulate_matrix(&benches, scale_from_args(), &columns);

    let mut headers = vec!["Program".to_string()];
    headers.extend(columns.iter().map(|(name, _)| name.clone()));
    let mut table = hbdc::stats::Table::new(headers);
    table.numeric();
    for (bench, reports) in benches.iter().zip(&run.reports) {
        let mut cells = vec![bench.name().to_string()];
        cells.extend(reports.iter().map(|r| {
            r.as_ref()
                .map_or_else(|| "--".to_string(), |r| hbdc::stats::ipc(r.ipc()))
        }));
        table.row(cells);
    }
    println!(
        "\nCampaign {which}: {} benchmark{} x {} configurations\n",
        benches.len(),
        if benches.len() == 1 { "" } else { "s" },
        columns.len()
    );
    println!("{table}");
    if csv_from_args() {
        println!("CSV:\n{}", table.to_csv());
    }
    Ok(run.exit_code())
}

/// Runs the differential fuzzer: `--budget` generated programs, each
/// checked against the metamorphic and mode-pair relation catalog, with
/// violations shrunk to minimal repros under `--corpus`. With
/// `--selftest`, instead injects a known port-model fault and requires
/// the detect → shrink → artifact pipeline to catch it. Exit code: 0
/// clean, 1 violations found (or self-test failed), 2 usage error, 130
/// interrupted (partial results reported; same seed re-runs the session).
fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let seed = parse_num(args, "--seed", 1)?;
    let corpus =
        PathBuf::from(flag_value(args, "--corpus").unwrap_or_else(|| "fuzz-corpus".into()));

    if args.iter().any(|a| a == "--selftest") {
        let report = hbdc::fuzz::selftest::run_selftest(seed, Some(&corpus)).map_err(|e| {
            eprintln!("fuzz self-test FAILED: {e}");
            e
        });
        return match report {
            Ok(r) => {
                println!(
                    "fuzz self-test passed: injected fault detected on seed {}, \
                     shrunk {} -> {} live instructions, artifact at {}",
                    r.seed,
                    r.original_insts,
                    r.shrunk_insts,
                    r.artifact.as_deref().unwrap_or(Path::new("-")).display()
                );
                Ok(ExitCode::SUCCESS)
            }
            Err(_) => Ok(ExitCode::FAILURE),
        };
    }

    let opts = hbdc::fuzz::FuzzOptions {
        seed,
        budget: parse_num(args, "--budget", 500)?,
        corpus,
        matrix_every: parse_num(args, "--matrix-every", 32)?,
        gen: if args.iter().any(|a| a == "--small") {
            hbdc::fuzz::gen::GenConfig::small()
        } else {
            hbdc::fuzz::gen::GenConfig::default()
        },
        keep_going: args.iter().any(|a| a == "--keep-going"),
    };
    hbdc::snap::interrupt::install();
    let budget = opts.budget;
    let summary = hbdc::fuzz::run_fuzz(&opts, |done, relations| {
        if done % 50 == 0 || done == budget {
            eprintln!("fuzz: {done}/{budget} programs, {relations} relation checks");
        }
    });
    println!(
        "fuzz seed {}: {} programs checked, {} relation evaluations, {} violation{}",
        opts.seed,
        summary.checked_programs,
        summary.relations_checked,
        summary.violations.len(),
        if summary.violations.len() == 1 {
            ""
        } else {
            "s"
        },
    );
    for v in &summary.violations {
        println!(
            "  case {} (program seed {}): {} [shrunk to {} insts] {}",
            v.case,
            v.program_seed,
            v.violation,
            v.shrunk_insts,
            v.artifact
                .as_deref()
                .map(|p| format!("-> {}", p.display()))
                .unwrap_or_default(),
        );
    }
    if summary.interrupted {
        println!("interrupted; re-run with the same seed to repeat the session");
        return Ok(ExitCode::from(130));
    }
    Ok(if summary.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_bench_list() -> Result<(), String> {
    println!(
        "{:10} {:5} {:>8} {:>10} {:>9}",
        "name", "suite", "mem%", "store/load", "miss"
    );
    for b in all() {
        let p = b.paper();
        println!(
            "{:10} {:5} {:>8.1} {:>10.2} {:>9.4}",
            b.name(),
            match b.suite() {
                Suite::Int => "int",
                Suite::Fp => "fp",
            },
            p.mem_pct,
            p.store_to_load,
            p.miss_rate
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "resume" => cmd_resume(rest),
        "trace" => cmd_trace(rest),
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        "analyze" => cmd_analyze(rest),
        "bench-list" => cmd_bench_list(),
        // `campaign` owns its exit code (the matrix contract: 0/1/3/130).
        "campaign" => {
            return match cmd_campaign(rest) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("hbdc-sim: {e}");
                    ExitCode::from(2)
                }
            }
        }
        // `fuzz` owns its exit code too: 0 clean, 1 violations, 130
        // interrupted.
        "fuzz" => {
            return match cmd_fuzz(rest) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("hbdc-sim: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hbdc-sim: {e}");
            ExitCode::FAILURE
        }
    }
}
