//! `hbdc-sim` — command-line driver for the hbdc simulator stack.
//!
//! ```text
//! hbdc-sim run <prog.s|prog.hbo|bench:NAME> [--port SPEC] [--max-insts N]
//!              [--ruu N] [--lsq N] [--ls-units N] [--scale test|small|full]
//!              [--frontend perfect|gshare|bimodal]
//!              [--audit] [--max-cycles N] [--inject SEED]
//! hbdc-sim asm <prog.s> -o <prog.hbo>        assemble to a binary object
//! hbdc-sim disasm <prog.s|prog.hbo>          print assembler-compatible text
//! hbdc-sim analyze <prog.s|bench:NAME>       stream locality + reuse report
//! hbdc-sim bench-list                        list the SPEC95 analogs
//! ```
//!
//! Port SPEC grammar: `ideal:4`, `repl:2`, `bank:8`, `bank:8:xor`,
//! `bank:8:rand`, `lbic:4x2`, `lbic:4x2:sq=16`, `lbic:4x2:largest`.

mod portspec;
mod program_source;

use std::process::ExitCode;

use hbdc::prelude::*;

use portspec::parse_port;
use program_source::load_program;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hbdc-sim run <prog.s|prog.hbo|bench:NAME> [--port SPEC] [--max-insts N]\n\
         \x20          [--ruu N] [--lsq N] [--ls-units N] [--scale test|small|full]\n\
         \x20          [--audit] [--max-cycles N] [--inject SEED]\n  \
         hbdc-sim asm <prog.s> -o <prog.hbo>\n  \
         hbdc-sim disasm <prog.s|prog.hbo>\n  \
         hbdc-sim analyze <prog.s|bench:NAME> [--banks N] [--scale ...]\n  \
         hbdc-sim bench-list\n\n\
         port SPEC: ideal:P | repl:P | bank:M[:xor|:rand] | lbic:MxN[:sq=K][:largest]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{v}`")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing program argument")?;
    let program = load_program(target, args)?;
    let port = parse_port(&flag_value(args, "--port").unwrap_or_else(|| "lbic:4x2".into()))?;
    let front_end = match flag_value(args, "--frontend").as_deref() {
        None | Some("perfect") => hbdc::cpu::FrontEnd::Perfect,
        Some("gshare") => hbdc::cpu::FrontEnd::Predicted {
            kind: hbdc::cpu::PredictorKind::Gshare {
                entries: 4096,
                history_bits: 12,
            },
            redirect_penalty: 3,
        },
        Some("bimodal") => hbdc::cpu::FrontEnd::Predicted {
            kind: hbdc::cpu::PredictorKind::Bimodal { entries: 2048 },
            redirect_penalty: 3,
        },
        Some(other) => return Err(format!("unknown front end `{other}`")),
    };
    let inject_seed = match flag_value(args, "--inject") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--inject expects a seed, got `{v}`"))?,
        ),
    };
    let cfg = CpuConfig {
        ruu_size: parse_num(args, "--ruu", 1024)? as usize,
        lsq_size: parse_num(args, "--lsq", 512)? as usize,
        ls_units: parse_num(args, "--ls-units", 64)? as u32,
        max_insts: parse_num(args, "--max-insts", u64::MAX)?,
        max_cycles: parse_num(args, "--max-cycles", u64::MAX)?,
        // --inject without --audit would corrupt arbitration silently, so
        // injection forces the auditor on.
        audit: args.iter().any(|a| a == "--audit")
            || inject_seed.is_some()
            || CpuConfig::default().audit,
        front_end,
        ..CpuConfig::default()
    };
    let hier_cfg = HierarchyConfig::default();
    let mut sim = match inject_seed {
        Some(seed) => {
            let injector = FaultInjector::auto(port, hier_cfg.l1_line, seed)?;
            Simulator::with_port_model(&program, cfg, hier_cfg, Box::new(injector))
        }
        None => Simulator::try_new(&program, cfg, hier_cfg, port).map_err(|e| e.to_string())?,
    };
    let report = sim.run().map_err(|e| e.to_string())?;
    let (branches, mispredicts) = sim.branch_stats();

    println!("program        {target}");
    println!("port model     {}", report.port_label);
    println!("committed      {}", report.committed);
    println!("cycles         {}", report.cycles);
    println!("IPC            {:.3}", report.ipc());
    println!("loads          {}", report.loads);
    println!("stores         {}", report.stores);
    println!("forwards       {}", report.forwards);
    println!(
        "L1             {} accesses, {} misses ({:.2}%), {} writebacks",
        report.l1_accesses,
        report.l1_misses,
        report.l1_miss_rate() * 100.0,
        report.l1_writebacks
    );
    println!(
        "L2             {} accesses, {} misses",
        report.l2_accesses, report.l2_misses
    );
    println!(
        "arbitration    {} offered, {} granted, {} bank conflicts, {} combined",
        report.arb_offered, report.arb_granted, report.bank_conflicts, report.combined
    );
    if report.store_serializations > 0 {
        println!("store bcasts   {}", report.store_serializations);
    }
    if branches > 0 {
        println!(
            "branches       {} ({} mispredicted, {:.2}%)",
            branches,
            mispredicts,
            mispredicts as f64 / branches as f64 * 100.0
        );
    }
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing input file")?;
    let output = flag_value(args, "-o").ok_or("missing -o <output>")?;
    let src = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let program = assemble(&src).map_err(|e| e.to_string())?;
    let bytes = hbdc::isa::object::to_bytes(&program);
    std::fs::write(&output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{output}: {} instructions, {} data bytes, {} bytes total",
        program.text().len(),
        program.data().len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing input file")?;
    let program = load_program(input, args)?;
    print!("{}", hbdc::isa::disasm::program_to_string(&program));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("missing program argument")?;
    let program = load_program(target, args)?;
    let banks = parse_num(args, "--banks", 4)? as u32;
    if banks < 2 || !banks.is_power_of_two() {
        return Err("--banks must be a power of two >= 2".into());
    }

    let mut emu = Emulator::new(&program);
    let mut f3 = ConsecutiveMapping::new(banks, 32);
    let mut dl1 = TraceCacheSim::paper_l1();
    let mut reuse = hbdc::trace::ReuseAnalyzer::new(32, 4096);
    let (mut total, mut loads, mut stores) = (0u64, 0u64, 0u64);
    while let Some(di) = emu.step() {
        total += 1;
        if let Some(addr) = di.addr {
            let r = if di.inst.is_store() {
                stores += 1;
                MemRef::store(addr)
            } else {
                loads += 1;
                MemRef::load(addr)
            };
            f3.record(r);
            dl1.access(r);
            reuse.record(r);
        }
    }

    println!("program            {target}");
    println!("instructions       {total}");
    println!(
        "memory mix         {:.1}% ({} loads, {} stores, s/l {:.2})",
        (loads + stores) as f64 / total as f64 * 100.0,
        loads,
        stores,
        stores as f64 / loads.max(1) as f64
    );
    println!(
        "32KB DM miss rate  {:.4} ({} misses)",
        dl1.stats().miss_rate(),
        dl1.stats().misses()
    );
    println!("footprint          {} lines", reuse.footprint_lines());
    for capacity in [256usize, 1024, 4096] {
        println!(
            "LRU x{capacity:<5} lines   predicted miss rate {:.4}",
            reuse.predicted_miss_rate(capacity)
        );
    }
    println!("consecutive mapping ({banks} banks):");
    let segs = f3.segments();
    println!("  B-same-line      {:.1}%", segs[0] * 100.0);
    println!("  B-diff-line      {:.1}%", segs[1] * 100.0);
    for (i, s) in segs[2..].iter().enumerate() {
        println!("  (B+{})%{banks}          {:.1}%", i + 1, s * 100.0);
    }
    Ok(())
}

fn cmd_bench_list() -> Result<(), String> {
    println!(
        "{:10} {:5} {:>8} {:>10} {:>9}",
        "name", "suite", "mem%", "store/load", "miss"
    );
    for b in all() {
        let p = b.paper();
        println!(
            "{:10} {:5} {:>8.1} {:>10.2} {:>9.4}",
            b.name(),
            match b.suite() {
                Suite::Int => "int",
                Suite::Fp => "fp",
            },
            p.mem_pct,
            p.store_to_load,
            p.miss_rate
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        "analyze" => cmd_analyze(rest),
        "bench-list" => cmd_bench_list(),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hbdc-sim: {e}");
            ExitCode::FAILURE
        }
    }
}
