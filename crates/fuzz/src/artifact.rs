//! Self-contained repro artifacts for relation violations.
//!
//! A violation is only useful if it survives the fuzzing session, so each
//! one is written to the corpus directory as a directory of plain files
//! that reproduce without the fuzzer:
//!
//! ```text
//! corpus/<relation>-seed<seed>/
//!     repro.s      shrunk program, assembler source (feed to `hbdc-sim run`)
//!     original.s   pre-shrink program, for shrinker forensics
//!     report.txt   relation, expected/actual sides, seed, machine config
//! ```
//!
//! `repro.s` round-trips through the assembler by construction (the
//! oracle's `source-roundtrip` relation pins the disassembler to that
//! guarantee), so `hbdc-sim run corpus/<case>/repro.s --model <...>`
//! replays the disagreement directly.

use std::io;
use std::path::{Path, PathBuf};

use hbdc_isa::Program;

use crate::oracle::RelationViolation;
use crate::shrink::live_insts;

/// Writes one violation's repro directory under `corpus`, returning its
/// path. An existing directory for the same relation and seed is
/// overwritten — later runs of the same seed produce the same case.
pub fn write_repro(
    corpus: &Path,
    seed: u64,
    original: &Program,
    shrunk: &Program,
    violation: &RelationViolation,
) -> io::Result<PathBuf> {
    let dir = corpus.join(format!("{}-seed{}", violation.relation, seed));
    std::fs::create_dir_all(&dir)?;
    std::fs::write(
        dir.join("repro.s"),
        hbdc_isa::disasm::program_to_string(shrunk),
    )?;
    std::fs::write(
        dir.join("original.s"),
        hbdc_isa::disasm::program_to_string(original),
    )?;
    let cfg = crate::oracle::fuzz_cfg();
    let report = format!(
        "relation: {}\nseed: {}\ndetail: {}\nexpected: {}\nactual: {}\n\
         shrunk: {} live instructions (from {})\nmachine: {:?}\n\n\
         reproduce with:\n  hbdc-sim run {}/repro.s\n",
        violation.relation,
        seed,
        violation.detail,
        violation.expected,
        violation.actual,
        live_insts(shrunk),
        live_insts(original),
        cfg,
        dir.display(),
    );
    std::fs::write(dir.join("report.txt"), report)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn repro_directory_is_complete_and_reassemblable() {
        let p = generate(1, &GenConfig::small());
        let v = RelationViolation {
            relation: "skip-vs-noskip",
            detail: "synthetic".into(),
            expected: "a".into(),
            actual: "b".into(),
        };
        let corpus = std::env::temp_dir().join(format!("hbdc-fuzz-art-{}", std::process::id()));
        let dir = write_repro(&corpus, 1, &p, &p, &v).unwrap();
        let src = std::fs::read_to_string(dir.join("repro.s")).unwrap();
        let back = hbdc_isa::asm::assemble(&src).unwrap();
        assert_eq!(back.text(), p.text());
        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert!(report.contains("skip-vs-noskip"));
        assert!(dir.join("original.s").exists());
        let _ = std::fs::remove_dir_all(&corpus);
    }
}
