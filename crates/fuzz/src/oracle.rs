//! The differential oracle: metamorphic and mode-pair relations.
//!
//! Every generated program is checked against two families of relations,
//! none of which needs a golden output:
//!
//! **Metamorphic relations from the paper** (orderings between port
//! models on the *same* program):
//!
//! * `runs-clean` — every configuration simulates without a [`SimError`];
//! * `commit-invariance` — committed/load/store counts are properties of
//!   the program, identical under every port model;
//! * `ideal-upper-bound` / `port-monotonicity` — an ideal cache whose
//!   port count covers a design's peak bandwidth never loses to it
//!   beyond the [`anomaly_allowance`] (age-ordered LSQ arbitration
//!   admits Graham-style timing anomalies of a few cycles; the fuzzer's
//!   own first session produced the nine-instruction counterexample in
//!   DESIGN.md §13), driven by
//!   [`hbdc_core::relations::must_dominate`]; the ideal-vs-ideal
//!   instances are "more ports never lowers IPC";
//! * `single-port-equivalence` — every peak-width-1 configuration
//!   (ideal:1, repl:1, bank:1) takes exactly the same cycle count (all
//!   three grant exactly the oldest ready reference, so this one *is*
//!   cycle-exact);
//! * `lbic-degree1-vs-banked` — an M×1 LBIC with a deep store queue is
//!   a banked cache plus store-queue absorption: cycles ≤ banked(M)
//!   plus the same anomaly allowance;
//! * `replicated-load-only` — on the store-free transform of the program
//!   ([`stores_to_loads`]), replicated ports are bit-identical to ideal
//!   ports (the broadcast machinery never engages).
//!
//! **Bit-identity relations across the five execution-mode pairs** (same
//! program, same configuration, different engine path):
//!
//! * `source-roundtrip` — disassembling and re-assembling reproduces the
//!   identical program (text, data, entry), and so does the object codec;
//! * `execute-vs-replay` — a captured committed-stream trace replays to
//!   the exact report of functional execution;
//! * `skip-vs-noskip` — event-calendar cycle skipping changes nothing;
//! * `audit-vs-plain` — the per-cycle invariant auditor neither fires
//!   nor perturbs the run;
//! * `snapshot-split` — splitting the run at a fuzzer-chosen cycle,
//!   round-tripping the snapshot through bytes, and resuming equals the
//!   straight run;
//! * `journal-matrix` — driving the program through the journaled matrix
//!   engine (the persistence layer shard workers share: capture, replay,
//!   journal records), then resuming from the journal, equals direct
//!   simulation; the multi-process half of the sharded/single-process
//!   pair is covered end-to-end by `scripts/chaos_test.sh`.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use hbdc_core::relations::{anomaly_allowance, must_dominate, single_port_equivalent};
use hbdc_core::{CombinePolicy, PortConfig};
use hbdc_cpu::{CommittedTrace, CpuConfig, SimReport, Simulator};
use hbdc_isa::Program;
use hbdc_mem::HierarchyConfig;

use crate::gen::stores_to_loads;

/// Names of every relation the oracle can evaluate, for reporting.
pub const RELATIONS: &[&str] = &[
    "runs-clean",
    "commit-invariance",
    "ideal-upper-bound",
    "port-monotonicity",
    "single-port-equivalence",
    "lbic-degree1-vs-banked",
    "replicated-load-only",
    "source-roundtrip",
    "execute-vs-replay",
    "skip-vs-noskip",
    "audit-vs-plain",
    "snapshot-split",
    "journal-matrix",
];

/// A relation the program falsified: which one, plus enough rendered
/// state to reproduce and eyeball the disagreement.
#[derive(Debug, Clone)]
pub struct RelationViolation {
    /// Relation name (one of [`RELATIONS`]).
    pub relation: &'static str,
    /// Human-readable account of the disagreement.
    pub detail: String,
    /// Expected-side rendering (report record, cycles, ...).
    pub expected: String,
    /// Actual-side rendering.
    pub actual: String,
}

impl std::fmt::Display for RelationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (expected {}, got {})",
            self.relation, self.detail, self.expected, self.actual
        )
    }
}

/// Per-program oracle knobs.
#[derive(Debug, Clone, Default)]
pub struct OracleKnobs {
    /// Salt for the fuzzer-chosen snapshot split cycle.
    pub split_salt: u64,
    /// Scratch directory enabling the (heavier, sampled) `journal-matrix`
    /// relation; `None` skips it.
    pub matrix_dir: Option<PathBuf>,
}

/// The machine configuration every oracle run uses: defaults plus a hard
/// cycle ceiling, so a shrink candidate that loses its loop exit (the
/// decrement nopped out from under a backward branch) dies with a typed
/// `CycleLimit` instead of hanging the harness.
pub fn fuzz_cfg() -> CpuConfig {
    CpuConfig {
        max_cycles: 250_000,
        ..CpuConfig::default()
    }
}

/// The flagship configuration mode-pair relations run under: the paper's
/// LBIC 4×2, the design the reproduction is about.
fn flagship() -> PortConfig {
    PortConfig::lbic(4, 2)
}

fn violation(
    relation: &'static str,
    detail: impl Into<String>,
    expected: impl Into<String>,
    actual: impl Into<String>,
) -> RelationViolation {
    RelationViolation {
        relation,
        detail: detail.into(),
        expected: expected.into(),
        actual: actual.into(),
    }
}

/// Runs the program to completion under one configuration; any simulator
/// error is a `runs-clean` violation.
fn try_run(
    program: &Program,
    port: PortConfig,
    cfg: CpuConfig,
    what: &str,
) -> Result<SimReport, RelationViolation> {
    Simulator::try_new(program, cfg, HierarchyConfig::default(), port)
        .and_then(|mut sim| sim.run())
        .map_err(|e| {
            violation(
                "runs-clean",
                format!("{what} failed to simulate"),
                "a finished report",
                e.to_string(),
            )
        })
}

/// A report record with the port label stripped: the comparison key for
/// cross-model equivalences, where the label legitimately differs.
fn record_sans_label(r: &SimReport) -> String {
    let rec = r.to_record();
    match rec.rsplit_once('\t') {
        Some((head, _label)) => head.to_string(),
        None => rec,
    }
}

/// Checks every relation on one program. Returns the number of relations
/// evaluated, or the first violation found.
pub fn check_program(
    program: &Program,
    knobs: &OracleKnobs,
) -> Result<usize, Box<RelationViolation>> {
    let cfg = fuzz_cfg();
    let mut checked = 1; // runs-clean is on trial in every try_run below

    // --- Metamorphic family -------------------------------------------
    let lbic_deep_m1 = PortConfig::Lbic {
        banks: 4,
        line_ports: 1,
        store_queue: 4096,
        policy: CombinePolicy::LeadingRequest,
    };
    let roster: Vec<(&str, PortConfig)> = vec![
        ("ideal:1", PortConfig::Ideal { ports: 1 }),
        ("ideal:2", PortConfig::Ideal { ports: 2 }),
        ("ideal:4", PortConfig::Ideal { ports: 4 }),
        ("repl:1", PortConfig::Replicated { ports: 1 }),
        ("repl:4", PortConfig::Replicated { ports: 4 }),
        ("bank:1", PortConfig::banked(1)),
        ("bank:4", PortConfig::banked(4)),
        ("lbic:4x1:sq=4096", lbic_deep_m1),
        ("lbic:4x2", flagship()),
    ];
    let mut reports = Vec::with_capacity(roster.len());
    for (name, port) in &roster {
        reports.push(try_run(program, *port, cfg, name)?);
    }

    // commit-invariance: the committed stream is a program property.
    checked += 1;
    let (c0, l0, s0) = (reports[0].committed, reports[0].loads, reports[0].stores);
    for ((name, _), r) in roster.iter().zip(&reports) {
        if (r.committed, r.loads, r.stores) != (c0, l0, s0) {
            return Err(Box::new(violation(
                "commit-invariance",
                format!(
                    "{name} commits a different instruction stream than {}",
                    roster[0].0
                ),
                format!("committed/loads/stores {c0}/{l0}/{s0}"),
                format!("{}/{}/{}", r.committed, r.loads, r.stores),
            )));
        }
    }

    // ideal-upper-bound and port-monotonicity, driven by the core
    // dominance predicate over every roster pair.
    checked += 2;
    for (i, (name_a, port_a)) in roster.iter().enumerate() {
        for (j, (name_b, port_b)) in roster.iter().enumerate() {
            if i == j || !must_dominate(port_a, port_b) {
                continue;
            }
            let bound = reports[j].cycles + anomaly_allowance(reports[j].cycles);
            if reports[i].cycles > bound {
                let both_ideal = matches!(
                    (port_a, port_b),
                    (PortConfig::Ideal { .. }, PortConfig::Ideal { .. })
                );
                let relation = if both_ideal {
                    "port-monotonicity"
                } else {
                    "ideal-upper-bound"
                };
                return Err(Box::new(violation(
                    relation,
                    format!(
                        "{name_a} must dominate {name_b} but exceeded it past the \
                         anomaly allowance"
                    ),
                    format!("cycles({name_a}) <= {bound}"),
                    reports[i].cycles.to_string(),
                )));
            }
        }
    }

    // single-port-equivalence: exact cycle equality across the class.
    checked += 1;
    let singles: Vec<usize> = roster
        .iter()
        .enumerate()
        .filter(|(_, (_, p))| single_port_equivalent(p))
        .map(|(i, _)| i)
        .collect();
    for &i in &singles[1..] {
        if reports[i].cycles != reports[singles[0]].cycles {
            return Err(Box::new(violation(
                "single-port-equivalence",
                format!(
                    "{} and {} are both effectively single-ported yet disagree",
                    roster[singles[0]].0, roster[i].0
                ),
                format!("cycles == {}", reports[singles[0]].cycles),
                reports[i].cycles.to_string(),
            )));
        }
    }

    // lbic-degree1-vs-banked: combining degree 1 plus a deep store queue
    // can only absorb latency relative to the plain banked cache.
    checked += 1;
    let l41 = &reports[7];
    let b4 = &reports[6];
    let bound = b4.cycles + anomaly_allowance(b4.cycles);
    if l41.cycles > bound {
        return Err(Box::new(violation(
            "lbic-degree1-vs-banked",
            "lbic:4x1 with a deep store queue lost to bank:4",
            format!("cycles <= {bound}"),
            l41.cycles.to_string(),
        )));
    }

    // replicated-load-only: on the store-free transform, replication is
    // definitionally ideal — bit-identical up to the port label.
    checked += 1;
    let load_only = stores_to_loads(program);
    let ideal_lo = try_run(
        &load_only,
        PortConfig::Ideal { ports: 4 },
        cfg,
        "ideal:4/load-only",
    )?;
    let repl_lo = try_run(
        &load_only,
        PortConfig::Replicated { ports: 4 },
        cfg,
        "repl:4/load-only",
    )?;
    if record_sans_label(&ideal_lo) != record_sans_label(&repl_lo) {
        return Err(Box::new(violation(
            "replicated-load-only",
            "repl:4 diverged from ideal:4 on load-only traffic",
            record_sans_label(&ideal_lo),
            record_sans_label(&repl_lo),
        )));
    }

    // --- Mode-pair family ---------------------------------------------
    let base = reports[8].clone(); // flagship lbic:4x2 execute-mode run

    // source-roundtrip: disasm → asm and object encode → decode both
    // reproduce the program exactly.
    checked += 1;
    check_source_roundtrip(program)?;

    // execute-vs-replay.
    checked += 1;
    let trace = CommittedTrace::capture(program, 0, None).map_err(|e| {
        violation(
            "execute-vs-replay",
            "trace capture failed",
            "a sealed trace",
            e.to_string(),
        )
    })?;
    let replayed = Simulator::try_from_trace(&trace, cfg, HierarchyConfig::default(), flagship())
        .and_then(|mut sim| sim.run())
        .map_err(|e| {
            violation(
                "execute-vs-replay",
                "replay failed to simulate",
                "a finished report",
                e.to_string(),
            )
        })?;
    if replayed != base {
        return Err(Box::new(violation(
            "execute-vs-replay",
            "replaying the captured trace diverged from execution",
            base.to_record(),
            replayed.to_record(),
        )));
    }

    // skip-vs-noskip.
    checked += 1;
    let noskip = try_run(
        program,
        flagship(),
        CpuConfig {
            cycle_skip: false,
            ..cfg
        },
        "lbic:4x2/noskip",
    )?;
    if noskip != base {
        return Err(Box::new(violation(
            "skip-vs-noskip",
            "disabling event-calendar cycle skipping changed the report",
            base.to_record(),
            noskip.to_record(),
        )));
    }

    // audit-vs-plain: the auditor must neither fire nor perturb.
    checked += 1;
    let audited = Simulator::try_new(
        program,
        CpuConfig { audit: true, ..cfg },
        HierarchyConfig::default(),
        flagship(),
    )
    .and_then(|mut sim| sim.run())
    .map_err(|e| {
        violation(
            "audit-vs-plain",
            "the invariant auditor rejected the run",
            "a clean audited run",
            e.to_string(),
        )
    })?;
    if audited != base {
        return Err(Box::new(violation(
            "audit-vs-plain",
            "running under the auditor changed the report",
            base.to_record(),
            audited.to_record(),
        )));
    }

    // snapshot-split at a fuzzer-chosen cycle, through the byte codec.
    checked += 1;
    check_snapshot_split(program, &base, knobs.split_salt, cfg)?;

    // journal-matrix (sampled by the driver via `matrix_dir`).
    if let Some(dir) = &knobs.matrix_dir {
        checked += 1;
        check_journal_matrix(program, &base, dir)?;
    }

    Ok(checked)
}

/// `source-roundtrip`: the disassembler and the object codec must both
/// reproduce the program exactly — the property every repro artifact and
/// the matrix relation lean on.
fn check_source_roundtrip(program: &Program) -> Result<(), Box<RelationViolation>> {
    let src = hbdc_isa::disasm::program_to_string(program);
    let reassembled = hbdc_isa::asm::assemble(&src).map_err(|e| {
        violation(
            "source-roundtrip",
            "disassembled source failed to re-assemble",
            "a valid program",
            e.to_string(),
        )
    })?;
    if reassembled.text() != program.text()
        || reassembled.data() != program.data()
        || reassembled.entry() != program.entry()
    {
        return Err(Box::new(violation(
            "source-roundtrip",
            "disasm → asm did not reproduce the program",
            format!(
                "{} insts, {} data bytes, entry {}",
                program.text().len(),
                program.data().len(),
                program.entry()
            ),
            format!(
                "{} insts, {} data bytes, entry {}",
                reassembled.text().len(),
                reassembled.data().len(),
                reassembled.entry()
            ),
        )));
    }
    let decoded =
        hbdc_isa::object::from_bytes(&hbdc_isa::object::to_bytes(program)).map_err(|e| {
            violation(
                "source-roundtrip",
                "object bytes failed to decode",
                "a valid program",
                e.to_string(),
            )
        })?;
    if decoded.text() != program.text() || decoded.data() != program.data() {
        return Err(Box::new(violation(
            "source-roundtrip",
            "object encode → decode did not reproduce the program",
            "identical text and data",
            "a diverging image",
        )));
    }
    Ok(())
}

/// `snapshot-split`: pause at a salt-chosen cycle, round-trip the
/// snapshot through its byte encoding, resume, and require the stitched
/// run to equal the straight one bit-for-bit.
fn check_snapshot_split(
    program: &Program,
    base: &SimReport,
    salt: u64,
    cfg: CpuConfig,
) -> Result<(), Box<RelationViolation>> {
    let fail = |detail: &str, actual: String| {
        Box::new(violation(
            "snapshot-split",
            detail.to_string(),
            base.to_record(),
            actual,
        ))
    };
    let split = 1 + salt % base.cycles.max(2);
    let mut sim = Simulator::try_new(program, cfg, HierarchyConfig::default(), flagship())
        .map_err(|e| fail("construction failed", e.to_string()))?;
    let done = sim
        .run_for(split)
        .map_err(|e| fail("first half failed", e.to_string()))?;
    let stitched = if done {
        sim.report()
    } else {
        let bytes = sim.save_snapshot().as_bytes().to_vec();
        let snap = hbdc_cpu::SimSnapshot::from_bytes(bytes)
            .map_err(|e| fail("snapshot byte round-trip failed", e.to_string()))?;
        let mut resumed =
            Simulator::resume(&snap).map_err(|e| fail("resume failed", e.to_string()))?;
        resumed
            .run()
            .map_err(|e| fail("second half failed", e.to_string()))?
    };
    if stitched != *base {
        return Err(fail(
            &format!("split at cycle {split} diverged from the straight run"),
            stitched.to_record(),
        ));
    }
    Ok(())
}

/// Source hook for the `journal-matrix` relation's custom benchmark:
/// [`Benchmark::custom`] takes a `fn(Scale) -> String`, so the current
/// program's source travels through this process-global slot. The fuzz
/// driver is sequential, and the matrix engine only reads the source
/// during its (single-threaded-per-bench) build, so a plain mutex
/// suffices.
static MATRIX_SRC: Mutex<String> = Mutex::new(String::new());

fn matrix_src(_: hbdc_workloads::Scale) -> String {
    MATRIX_SRC.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// `journal-matrix`: one program × two configurations through the
/// journaled capture-then-replay matrix engine, then a second pass served
/// entirely from the journal's records — both must equal direct
/// simulation. This exercises the exact persistence stack sharded
/// campaigns share: trace capture, replay cells, journal render/parse,
/// and the report record codec.
fn check_journal_matrix(
    program: &Program,
    base: &SimReport,
    dir: &Path,
) -> Result<(), Box<RelationViolation>> {
    use hbdc_bench::runner::{simulate_matrix_opts, MatrixOpts, TraceMode};
    use hbdc_workloads::{Benchmark, Suite};

    let fail = |detail: String, expected: String, actual: String| {
        Box::new(violation("journal-matrix", detail, expected, actual))
    };

    *MATRIX_SRC.lock().unwrap_or_else(|e| e.into_inner()) =
        hbdc_isa::disasm::program_to_string(program);
    let benches = vec![Benchmark::custom("fuzz-matrix", Suite::Int, matrix_src)];
    let configs = vec![
        ("lbic:4x2".to_string(), flagship()),
        ("bank:4".to_string(), PortConfig::banked(4)),
    ];
    // The matrix fingerprint hashes the bench *name*, not the generated
    // program, so a journal left behind by a previous case would be
    // accepted as resumable state for this one: scrub the directory.
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Err(fail(
            format!("cannot create matrix scratch dir {}", dir.display()),
            "a writable directory".into(),
            e.to_string(),
        ));
    }
    let journal = dir.join("fuzz-matrix.journal");
    let _ = std::fs::remove_file(&journal);
    for i in 0..benches.len() * configs.len() {
        let mut snap = journal.as_os_str().to_owned();
        snap.push(format!(".cell{i}.snap"));
        let _ = std::fs::remove_file(PathBuf::from(snap));
    }

    let opts = MatrixOpts {
        cpu_cfg: fuzz_cfg(),
        journal: Some(journal.clone()),
        trace_mode: TraceMode::Replay,
        ..MatrixOpts::default()
    };
    let run_matrix =
        |opts: &MatrixOpts, what: &str| -> Result<Option<Vec<SimReport>>, Box<RelationViolation>> {
            let run = simulate_matrix_opts(&benches, hbdc_workloads::Scale::Test, &configs, opts)
                .map_err(|e| {
                fail(
                    format!("{what} journal error"),
                    "a journaled matrix run".into(),
                    e,
                )
            })?;
            if run.interrupted {
                // An operator interrupt mid-fuzz is not a model disagreement.
                return Ok(None);
            }
            if !run.failures.is_empty() {
                return Err(fail(
                    format!("{what} had failing cells"),
                    "a complete matrix".into(),
                    format!("{:?}", run.failures),
                ));
            }
            Ok(Some(run.reports.into_iter().flatten().flatten().collect()))
        };

    let Some(first) = run_matrix(&opts, "matrix pass")? else {
        return Ok(());
    };
    let resume_opts = MatrixOpts {
        resume: true,
        ..opts.clone()
    };
    let Some(second) = run_matrix(&resume_opts, "journal-resume pass")? else {
        return Ok(());
    };

    // Direct runs: cell 0 is the flagship report we already have.
    let direct_b4 =
        try_run(program, PortConfig::banked(4), fuzz_cfg(), "bank:4/direct").map_err(Box::new)?;
    let direct = vec![base.clone(), direct_b4];
    for (i, (m, d)) in first.iter().zip(&direct).enumerate() {
        if m != d {
            return Err(fail(
                format!("matrix cell {i} diverged from direct simulation"),
                d.to_record(),
                m.to_record(),
            ));
        }
    }
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        if a != b {
            return Err(fail(
                format!("journal-served cell {i} diverged from the original run"),
                a.to_record(),
                b.to_record(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn oracle_passes_on_generated_programs() {
        let cfg = GenConfig::default();
        for seed in 0..6 {
            let p = generate(seed, &cfg);
            let knobs = OracleKnobs {
                split_salt: seed.wrapping_mul(977),
                matrix_dir: None,
            };
            let checked = check_program(&p, &knobs).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(checked >= 6, "fewer than 6 relations checked: {checked}");
        }
    }

    #[test]
    fn oracle_flags_a_real_divergence() {
        // Sanity: the mode-pair machinery is live, not vacuously true. A
        // cycle-limited config fails runs-clean with a typed violation.
        let p = generate(3, &GenConfig::default());
        let r = try_run(
            &p,
            PortConfig::Ideal { ports: 1 },
            CpuConfig {
                max_cycles: 3,
                ..CpuConfig::default()
            },
            "tiny",
        );
        let v = r.unwrap_err();
        assert_eq!(v.relation, "runs-clean");
        assert!(v.actual.contains("cycle limit"), "{}", v.actual);
    }

    #[test]
    fn journal_matrix_relation_holds_on_a_generated_program() {
        // The matrix engine polls the global interrupt latch; serialize
        // with the latch-triggering tests in the crate root.
        let _latch = crate::testlock::hold();
        hbdc_snap::interrupt::reset();
        let p = generate(9, &GenConfig::small());
        let dir = std::env::temp_dir().join(format!("hbdc-fuzz-matrix-{}", std::process::id()));
        let knobs = OracleKnobs {
            split_salt: 1,
            matrix_dir: Some(dir.clone()),
        };
        let checked = check_program(&p, &knobs).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(checked, RELATIONS.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
