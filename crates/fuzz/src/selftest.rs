//! End-to-end harness self-test: prove the pipeline *detects* bugs.
//!
//! A differential oracle that never fires is indistinguishable from one
//! that can't. This module seeds a known bug — a [`FaultInjector`]
//! deliberately corrupting port-model grants — and requires the full
//! detect → shrink → artifact pipeline to catch it: the audited run must
//! fail with an invariant violation, the shrinker must cut the program
//! down while the injected fault still fires, and the repro artifact must
//! land in the corpus. `hbdc-sim fuzz --selftest` runs it, and CI runs it
//! before trusting a zero-violation fuzz session.

use std::path::Path;

use hbdc_core::{FaultInjector, PortConfig};
use hbdc_cpu::{CpuConfig, SimError, Simulator};
use hbdc_isa::Program;
use hbdc_mem::HierarchyConfig;

use crate::artifact::write_repro;
use crate::gen::{generate, GenConfig};
use crate::oracle::{fuzz_cfg, RelationViolation};
use crate::shrink::{live_insts, shrink};

/// Outcome of a successful self-test.
#[derive(Debug)]
pub struct SelfTestReport {
    /// Generator seed whose program exposed the injected fault.
    pub seed: u64,
    /// Live instructions in the shrunk repro.
    pub shrunk_insts: usize,
    /// Live instructions before shrinking.
    pub original_insts: usize,
    /// Corpus directory the artifact was written to (when a corpus was
    /// given).
    pub artifact: Option<std::path::PathBuf>,
}

/// The audited, fault-injected run: returns true iff the invariant
/// auditor catches the injector corrupting grants on this program.
fn injected_run_trips_auditor(program: &Program, fault_seed: u64) -> bool {
    let hier = HierarchyConfig::default();
    let cfg = CpuConfig {
        audit: true,
        ..fuzz_cfg()
    };
    let Ok(injector) = FaultInjector::auto(PortConfig::banked(4), hier.l1_line, fault_seed) else {
        return false;
    };
    let mut sim = Simulator::with_port_model(program, cfg, hier, Box::new(injector));
    matches!(sim.run(), Err(SimError::Invariant { .. }))
}

/// Runs the self-test: injects a grant-corruption fault, requires the
/// auditor to detect it on some small generated program, shrinks the
/// program under the "still detected" predicate, and (when `corpus` is
/// given) writes the repro artifact.
///
/// # Errors
///
/// Returns a description of the first broken pipeline stage: the auditor
/// never firing across the seed sweep, the shrinker losing the fault, or
/// the artifact failing to write.
pub fn run_selftest(fault_seed: u64, corpus: Option<&Path>) -> Result<SelfTestReport, String> {
    let gen_cfg = GenConfig::small();
    // The injector needs memory traffic to corrupt; every generated
    // program has some, so the first few seeds should suffice. Sweeping a
    // handful keeps the test robust to an unlucky (traffic-light) draw.
    let found = (0..16)
        .map(|seed| (seed, generate(seed, &gen_cfg)))
        .find(|(_, p)| injected_run_trips_auditor(p, fault_seed));
    let Some((seed, program)) = found else {
        return Err(format!(
            "fault injector (seed {fault_seed}) was never caught by the auditor \
             across 16 generated programs — the detection pipeline is broken"
        ));
    };

    let pred = |p: &Program| injected_run_trips_auditor(p, fault_seed);
    let shrunk = shrink(&program, &pred);
    if !pred(&shrunk) {
        return Err("shrinker returned a program that no longer trips the auditor".into());
    }

    let violation = RelationViolation {
        relation: "fault-injection-selftest",
        detail: format!(
            "FaultInjector::auto(banked:4, seed {fault_seed}) must be caught by the audit"
        ),
        expected: "SimError::Invariant".into(),
        actual: "SimError::Invariant (detected, as required)".into(),
    };
    let artifact = match corpus {
        Some(dir) => Some(
            write_repro(dir, seed, &program, &shrunk, &violation)
                .map_err(|e| format!("failed to write self-test artifact: {e}"))?,
        ),
        None => None,
    };

    Ok(SelfTestReport {
        seed,
        shrunk_insts: live_insts(&shrunk),
        original_insts: live_insts(&program),
        artifact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_detects_and_shrinks_the_injected_fault() {
        let corpus = std::env::temp_dir().join(format!("hbdc-fuzz-self-{}", std::process::id()));
        let report = run_selftest(7, Some(&corpus)).expect("self-test pipeline");
        assert!(
            report.shrunk_insts <= 32,
            "repro not minimal: {} live instructions",
            report.shrunk_insts
        );
        assert!(report.shrunk_insts <= report.original_insts);
        let dir = report.artifact.expect("artifact written");
        assert!(dir.join("repro.s").exists());
        let _ = std::fs::remove_dir_all(&corpus);
    }
}
