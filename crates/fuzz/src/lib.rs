//! `hbdc-fuzz`: differential fuzzing harness for the whole simulator.
//!
//! The crate closes the loop the hand-written test suite cannot: instead
//! of checking fixed programs against fixed expectations, it generates
//! unbounded random-but-valid programs ([`gen`]) and checks *relations
//! between runs* that must hold for every program ([`oracle`]) — the
//! paper's model orderings (ideal bounds realistic, single-port designs
//! coincide, LBIC degree 1 vs. banked, replication on load-only traffic)
//! and bit-identity across every execution-mode pair the simulator
//! offers (execute/replay, skip/no-skip, audit on/off, snapshot
//! split/straight, journaled matrix/direct).
//!
//! When a relation breaks, the harness shrinks the program to a minimal
//! repro ([`shrink`]) and writes a self-contained artifact ([`artifact`])
//! so the bug outlives the session. [`selftest`] keeps the harness
//! honest by injecting a known fault and requiring the whole
//! detect → shrink → artifact pipeline to catch it.
//!
//! Entry point: [`run_fuzz`], surfaced as `hbdc-sim fuzz --seed S
//! --budget N`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

pub mod artifact;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod selftest;
pub mod shrink;

use gen::{generate, GenConfig};
use oracle::{check_program, OracleKnobs, RelationViolation};
use rng::Rng;

/// Options for one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: the same seed replays the same session exactly.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub budget: u64,
    /// Corpus directory violations are written to.
    pub corpus: PathBuf,
    /// Run the (heavier) journaled-matrix relation on every `n`-th
    /// program; 0 disables it.
    pub matrix_every: u64,
    /// Program-shape knobs.
    pub gen: GenConfig,
    /// Keep fuzzing after a violation instead of stopping at the first.
    pub keep_going: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            budget: 100,
            corpus: PathBuf::from("fuzz-corpus"),
            matrix_every: 32,
            gen: GenConfig::default(),
            keep_going: false,
        }
    }
}

/// One caught violation: the case that produced it and where its repro
/// artifact landed.
#[derive(Debug)]
pub struct CaughtViolation {
    /// Case index within the session (0-based).
    pub case: u64,
    /// The generator seed of the offending program.
    pub program_seed: u64,
    /// The relation that broke.
    pub violation: RelationViolation,
    /// Repro directory under the corpus (`None` if writing it failed;
    /// the failure is folded into `violation.detail` then).
    pub artifact: Option<PathBuf>,
    /// Live instructions in the shrunk repro.
    pub shrunk_insts: usize,
}

/// Outcome of a fuzzing session.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Programs generated and checked.
    pub checked_programs: u64,
    /// Total relation evaluations across all programs.
    pub relations_checked: u64,
    /// Every violation caught (empty on a clean session).
    pub violations: Vec<CaughtViolation>,
    /// True when the session stopped early on an interrupt request; the
    /// counts above cover the work finished before the stop.
    pub interrupted: bool,
}

/// Runs a fuzzing session: `budget` programs derived from `seed`, each
/// checked against the full relation catalog. `progress` is called after
/// every case with (cases done, relations checked so far).
///
/// Violations are shrunk and written to the corpus as they are found.
/// The session polls the process interrupt latch
/// ([`hbdc_snap::interrupt`]) between cases, so Ctrl-C on the CLI stops
/// cleanly with partial results.
pub fn run_fuzz(opts: &FuzzOptions, mut progress: impl FnMut(u64, u64)) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    let master = Rng::new(opts.seed);
    let matrix_dir = std::env::temp_dir().join(format!("hbdc-fuzz-mx-{}", std::process::id()));

    for case in 0..opts.budget {
        if hbdc_snap::interrupt::requested() {
            summary.interrupted = true;
            break;
        }
        let mut stream = master.derive(case);
        let program_seed = stream.next_u64();
        let split_salt = stream.next_u64();
        let program = generate(program_seed, &opts.gen);
        let with_matrix = opts.matrix_every > 0 && case % opts.matrix_every == 0;
        let knobs = OracleKnobs {
            split_salt,
            matrix_dir: with_matrix.then(|| matrix_dir.clone()),
        };
        match check_program(&program, &knobs) {
            Ok(n) => summary.relations_checked += n as u64,
            Err(v) => {
                summary.violations.push(handle_violation(
                    opts,
                    case,
                    program_seed,
                    &program,
                    &knobs,
                    *v,
                ));
                if !opts.keep_going {
                    summary.checked_programs += 1;
                    break;
                }
            }
        }
        summary.checked_programs += 1;
        progress(case + 1, summary.relations_checked);
    }
    let _ = std::fs::remove_dir_all(&matrix_dir);
    summary
}

/// Shrinks a violating program under "still breaks the same relation" and
/// writes the repro artifact.
fn handle_violation(
    opts: &FuzzOptions,
    case: u64,
    program_seed: u64,
    program: &hbdc_isa::Program,
    knobs: &OracleKnobs,
    violation: RelationViolation,
) -> CaughtViolation {
    let target = violation.relation;
    // Re-check candidates with the journaled-matrix relation only when it
    // is the one that broke: it is orders of magnitude slower than the
    // in-memory relations and irrelevant to any other target.
    let shrink_knobs = OracleKnobs {
        split_salt: knobs.split_salt,
        matrix_dir: if target == "journal-matrix" {
            knobs.matrix_dir.clone()
        } else {
            None
        },
    };
    let pred = |p: &hbdc_isa::Program| matches!(check_program(p, &shrink_knobs), Err(v) if v.relation == target);
    let shrunk = shrink::shrink(program, &pred);
    let mut violation = violation;
    let artifact =
        match artifact::write_repro(&opts.corpus, program_seed, program, &shrunk, &violation) {
            Ok(dir) => Some(dir),
            Err(e) => {
                violation.detail = format!("{} [artifact write failed: {e}]", violation.detail);
                None
            }
        };
    CaughtViolation {
        case,
        program_seed,
        violation,
        artifact,
        shrunk_insts: shrink::live_insts(&shrunk),
    }
}

#[cfg(test)]
pub(crate) mod testlock {
    //! The process interrupt latch is global state; tests that trigger or
    //! observe it serialize here so cargo's parallel test threads don't
    //! trip each other.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_session_is_clean_and_deterministic() {
        let _latch = testlock::hold();
        hbdc_snap::interrupt::reset();
        let opts = FuzzOptions {
            seed: 42,
            budget: 4,
            corpus: std::env::temp_dir().join(format!("hbdc-fuzz-lib-{}", std::process::id())),
            matrix_every: 0,
            gen: GenConfig::small(),
            keep_going: false,
        };
        let a = run_fuzz(&opts, |_, _| {});
        assert!(!a.interrupted);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.checked_programs, 4);
        assert!(a.relations_checked >= 4 * 6, "{}", a.relations_checked);
        let b = run_fuzz(&opts, |_, _| {});
        assert_eq!(a.relations_checked, b.relations_checked);
    }

    #[test]
    fn pending_interrupt_stops_the_session_before_work() {
        let _latch = testlock::hold();
        hbdc_snap::interrupt::reset();
        hbdc_snap::interrupt::trigger();
        let opts = FuzzOptions {
            budget: 1000,
            gen: GenConfig::small(),
            ..FuzzOptions::default()
        };
        let summary = run_fuzz(&opts, |_, _| {});
        hbdc_snap::interrupt::reset();
        assert!(summary.interrupted);
        assert_eq!(summary.checked_programs, 0);
    }
}
