//! Delta-debugging shrinker: reduces a violating program to a small
//! repro while preserving the violation.
//!
//! The reduction runs in four phases, each of which only commits a
//! candidate the caller's `interesting` predicate accepts (i.e. the
//! candidate still violates the *same* relation):
//!
//! 1. **Data shrink** — halve the data image repeatedly. (Generated
//!    images are zero-initialized and memory is sparse, so this almost
//!    always succeeds outright.)
//! 2. **Instruction-range nopping** — classic ddmin over the text, with
//!    chunk sizes halving from `len/2` down to 1. Ranges are replaced by
//!    [`Inst::Nop`] rather than deleted, so every branch and jump target
//!    stays valid without remapping.
//! 3. **Operand simplification** — per surviving instruction: zero the
//!    immediate or displacement, and retarget source registers at `r0`.
//!    Smaller operands make the repro easier to read and often reveal
//!    that the value never mattered.
//! 4. **Nop compaction** — drop the nops, remap branch/jump targets to
//!    the surviving indices, and append a terminal `halt`. If the
//!    violation is timing-sensitive enough that compaction loses it, the
//!    nop-padded form from phase 3 is returned instead — correctness of
//!    the repro beats its line count.
//!
//! The predicate must treat a candidate that *errors differently* (e.g. a
//! nopped loop decrement turning termination into a `CycleLimit`) as
//! uninteresting; [`crate::oracle::fuzz_cfg`]'s cycle ceiling guarantees
//! such candidates die quickly instead of hanging the harness.

use hbdc_isa::{Inst, Program, Reg};

/// Counts the instructions that actually do something — the size metric
/// reported for a shrunk repro (nop padding kept for timing fidelity
/// shouldn't inflate it).
pub fn live_insts(program: &Program) -> usize {
    program
        .text()
        .iter()
        .filter(|i| !matches!(i, Inst::Nop))
        .count()
}

fn with_text(text: Vec<Inst>, data: Vec<u8>, entry: u32) -> Program {
    Program::from_parts(text, data, std::collections::HashMap::new(), entry)
}

/// Shrinks `program` while `interesting` holds, returning the smallest
/// form found. `interesting(program)` itself must be true on entry; if it
/// is not (a flaky, non-deterministic violation — which the oracle's
/// deterministic relations should never produce), the program is returned
/// unshrunk.
pub fn shrink(program: &Program, interesting: &dyn Fn(&Program) -> bool) -> Program {
    if !interesting(program) {
        return program.clone();
    }
    let entry = program.entry();
    let mut data = program.data().to_vec();
    let mut text = program.text().to_vec();

    // Phase 1: data image.
    while !data.is_empty() {
        let half = data[..data.len() / 2].to_vec();
        if interesting(&with_text(text.clone(), half.clone(), entry)) {
            data = half;
        } else {
            break;
        }
    }

    // Phase 2: ddmin range nopping.
    let mut chunk = (text.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < text.len() {
            let end = (start + chunk).min(text.len());
            if text[start..end].iter().any(|i| !matches!(i, Inst::Nop)) {
                let mut cand = text.clone();
                for slot in &mut cand[start..end] {
                    *slot = Inst::Nop;
                }
                if interesting(&with_text(cand.clone(), data.clone(), entry)) {
                    text = cand;
                    progressed = true;
                }
            }
            start = end;
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
            // A committed nop can unlock earlier ranges; one more lap.
            continue;
        }
        chunk = (chunk / 2).max(1);
    }

    // Phase 3: operand simplification on the survivors.
    for idx in 0..text.len() {
        for cand_inst in simplifications(&text[idx]) {
            if cand_inst == text[idx] {
                continue;
            }
            let mut cand = text.clone();
            cand[idx] = cand_inst;
            if interesting(&with_text(cand.clone(), data.clone(), entry)) {
                text = cand;
            }
        }
    }

    // Phase 4: compact the nops away, remapping control-flow targets.
    let padded = with_text(text.clone(), data.clone(), entry);
    if let Some(compact) = compact_nops(&text, &data, entry) {
        if interesting(&compact) {
            return compact;
        }
    }
    padded
}

/// Candidate one-step simplifications of an instruction, mildest first.
fn simplifications(inst: &Inst) -> Vec<Inst> {
    let z = Reg::ZERO;
    match *inst {
        Inst::AluImm { op, rd, rs, imm } if imm != 0 => {
            vec![Inst::AluImm { op, rd, rs, imm: 0 }]
        }
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } if offset != 0 => vec![Inst::Load {
            width,
            rd,
            base,
            offset: 0,
        }],
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => {
            let mut out = Vec::new();
            if offset != 0 {
                out.push(Inst::Store {
                    width,
                    rs,
                    base,
                    offset: 0,
                });
            }
            if rs != z {
                out.push(Inst::Store {
                    width,
                    rs: z,
                    base,
                    offset,
                });
            }
            out
        }
        Inst::FLoad {
            width,
            fd,
            base,
            offset,
        } if offset != 0 => vec![Inst::FLoad {
            width,
            fd,
            base,
            offset: 0,
        }],
        Inst::FStore {
            width,
            fs,
            base,
            offset,
        } if offset != 0 => vec![Inst::FStore {
            width,
            fs,
            base,
            offset: 0,
        }],
        Inst::Alu { op, rd, rs, rt } => {
            let mut out = Vec::new();
            if rt != z {
                out.push(Inst::Alu { op, rd, rs, rt: z });
            }
            if rs != z {
                out.push(Inst::Alu { op, rd, rs: z, rt });
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Rebuilds the text without nops, remapping every control-flow target to
/// the index its (first surviving) destination landed on. Targets whose
/// destination was nopped fall through to the next survivor; targets past
/// the last survivor land on the terminal `halt` this function appends.
/// Returns `None` when the entry instruction itself was nopped away in a
/// way that would reorder semantics (it can't be: entry is only remapped,
/// never dropped — kept for defensive clarity).
fn compact_nops(text: &[Inst], data: &[u8], entry: u32) -> Option<Program> {
    // old index -> new index of the first surviving instruction at or
    // after it (off-end maps to the appended halt).
    let mut map = vec![0u32; text.len() + 1];
    let mut kept = Vec::new();
    for (old, inst) in text.iter().enumerate() {
        map[old] = kept.len() as u32;
        if !matches!(inst, Inst::Nop) {
            kept.push(*inst);
        }
    }
    map[text.len()] = kept.len() as u32;
    let halt_idx = kept.len() as u32; // the halt appended below
    let remap = |t: u32| -> u32 {
        if (t as usize) < text.len() {
            map[t as usize]
        } else {
            halt_idx
        }
    };
    for inst in &mut kept {
        match inst {
            Inst::Branch { target, .. }
            | Inst::Jump { target }
            | Inst::JumpAndLink { target, .. } => *target = remap(*target),
            _ => {}
        }
    }
    kept.push(Inst::Halt);
    let new_entry = remap(entry);
    if (new_entry as usize) >= kept.len() {
        return None;
    }
    Some(with_text(kept, data.to_vec(), new_entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use hbdc_core::PortConfig;
    use hbdc_cpu::Simulator;
    use hbdc_mem::HierarchyConfig;

    fn cycles(p: &Program, port: PortConfig) -> Option<u64> {
        Simulator::try_new(
            p,
            crate::oracle::fuzz_cfg(),
            HierarchyConfig::default(),
            port,
        )
        .and_then(|mut s| s.run())
        .ok()
        .map(|r| r.cycles)
    }

    #[test]
    fn shrinks_to_the_single_guilty_instruction() {
        // Interesting = "the program still contains a Div by r0"; the
        // shrinker should strip everything else and compact to a handful
        // of instructions.
        let p = generate(11, &GenConfig::default());
        let has_div = |p: &Program| {
            p.text().iter().any(|i| {
                matches!(
                    i,
                    Inst::Alu {
                        op: hbdc_isa::AluOp::Div,
                        ..
                    } | Inst::AluImm {
                        op: hbdc_isa::AluOp::Div,
                        ..
                    }
                )
            })
        };
        if !has_div(&p) {
            return; // seed didn't draw a div; other seeds cover it
        }
        let small = shrink(&p, &has_div);
        assert!(has_div(&small), "shrink lost the property");
        assert!(
            live_insts(&small) <= 2,
            "expected near-minimal repro, got {} live insts",
            live_insts(&small)
        );
    }

    #[test]
    fn shrunk_program_still_simulates() {
        // Interesting = "still runs clean and still issues >= 1 store":
        // the result must remain a valid, terminating program under the
        // cycle ceiling after compaction remapped all targets.
        let p = generate(4, &GenConfig::default());
        let pred = |p: &Program| {
            Simulator::try_new(
                p,
                crate::oracle::fuzz_cfg(),
                HierarchyConfig::default(),
                PortConfig::banked(4),
            )
            .and_then(|mut s| s.run())
            .map(|r| r.stores >= 1)
            .unwrap_or(false)
        };
        let small = shrink(&p, &pred);
        assert!(pred(&small));
        assert!(live_insts(&small) < live_insts(&p));
        assert!(cycles(&small, PortConfig::banked(4)).is_some());
    }

    #[test]
    fn uninteresting_input_is_returned_unchanged() {
        let p = generate(2, &GenConfig::small());
        let never = |_: &Program| false;
        let same = shrink(&p, &never);
        assert_eq!(same.text(), p.text());
    }

    #[test]
    fn compaction_remaps_forward_and_backward_edges() {
        use hbdc_isa::{AluOp, BranchCond};
        let r = Reg::new;
        // 0: li r1, 2       (addi r1, r0, 2)
        // 1: nop
        // 2: addi r1, r1, -1
        // 3: nop
        // 4: bne r1, r0, L2  (backward)
        // 5: nop
        // 6: halt
        let text = vec![
            Inst::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs: Reg::ZERO,
                imm: 2,
            },
            Inst::Nop,
            Inst::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs: r(1),
                imm: -1,
            },
            Inst::Nop,
            Inst::Branch {
                cond: BranchCond::Ne,
                rs: r(1),
                rt: Reg::ZERO,
                target: 2,
            },
            Inst::Nop,
            Inst::Halt,
        ];
        let p = compact_nops(&text, &[], 0).unwrap();
        assert_eq!(p.text().len(), 5); // 3 live + original halt + appended halt
        match p.text()[2] {
            Inst::Branch { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected branch, got {other:?}"),
        }
        // And it still terminates with the loop taken once.
        let c = cycles(&p, PortConfig::Ideal { ports: 4 });
        assert!(c.is_some());
    }
}
