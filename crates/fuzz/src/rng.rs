//! Deterministic RNG for the fuzzer.
//!
//! A self-contained xorshift64* generator, same family the fault injector
//! uses: every generated program, split point, and shrink schedule is a
//! pure function of the user-visible seed, so `--seed S` reproduces a run
//! exactly on any host.

/// Seeded xorshift64* stream.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a seed. A seed of 0 is remapped (xorshift has
    /// an all-zero fixed point), so every seed yields a live stream.
    pub fn new(seed: u64) -> Self {
        // SplitMix-style scramble decorrelates adjacent seeds before the
        // xorshift state is formed from them.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)) | 1)
    }

    /// Derives an independent stream for sub-task `index` of this seed
    /// (program `index` of a campaign, say) without consuming this stream.
    pub fn derive(&self, index: u64) -> Self {
        Self::new(self.0 ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_live() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(-4, 9);
            assert!((-4..=9).contains(&v));
        }
    }

    #[test]
    fn derive_is_independent_of_consumption() {
        let base = Rng::new(5);
        let mut d1 = base.derive(42);
        let mut base2 = Rng::new(5);
        let _ = base2.next_u64();
        let mut d2 = Rng::new(5).derive(42);
        assert_eq!(d1.next_u64(), d2.next_u64());
    }
}
