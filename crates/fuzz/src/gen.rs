//! Seeded random program generator.
//!
//! Emits valid, terminating [`Program`]s biased toward the access patterns
//! that stress cache-port arbitration hardest — the cases the paper's
//! Tables 3/4 orderings hinge on:
//!
//! * **aliasing load/store chains** — a store followed by loads of the
//!   same or partially overlapping bytes, exercising LSQ forwarding and
//!   ordering;
//! * **bank-conflict strides** — bursts of loads whose addresses differ
//!   by `line × banks` multiples, so they collide in one bank of a banked
//!   or LBIC cache while an ideal cache services them in parallel;
//! * **same-line bursts** — references inside one cache line, the access
//!   combining (LBIC) opportunity;
//! * **store-forwarding windows** — a store, a window of independent ALU
//!   work, then a load of the stored bytes;
//! * **branchy control flow** — forward skips and diamonds over the
//!   memory traffic, plus occasional `jal`/`jr ra` calls;
//! * **FP stencils** — the `swim`/`mgrid`-shaped 3-point load/compute/
//!   store kernels that dominate the paper's FP suite.
//!
//! **Termination by construction.** The only backward edge is the outer
//! loop's counted branch; its counter register is reserved (written only
//! by the prologue `li` and the epilogue decrement, never by a load),
//! every other branch targets strictly forward, and subroutines return
//! through `ra`, written only by the corresponding `jal`. Forward
//! branches may read load-written scratch registers — data-dependent
//! control is part of the point — but a forward edge cannot form a loop,
//! so the dynamic instruction count of one run is bounded by
//! `iters × body + prologue + calls` for any memory contents.
//!
//! Registers are partitioned so blocks compose freely:
//!
//! | registers | role |
//! |---|---|
//! | `r1..=r12` | scratch values (block inputs/outputs) |
//! | `r16..=r19` | data-region base pointers |
//! | `r20` | loop counter (reserved) |
//! | `r26` | integer sink (reserved for the load-only transform) |
//! | `f1..=f8` | FP scratch |
//! | `f28` | FP sink (reserved for the load-only transform) |

use hbdc_isa::{AluOp, BranchCond, FReg, FpuOp, Inst, Program, Reg, Width, DATA_BASE};

use crate::rng::Rng;

/// Integer sink register: written by the load-only transform, never read
/// or written by generated code.
pub const INT_SINK: u8 = 26;
/// FP sink register: written by the load-only transform, never read or
/// written by generated code.
pub const FP_SINK: u8 = 28;

const LOOP_REG: u8 = 20;
const BASE_REGS: [u8; 4] = [16, 17, 18, 19];
const VALUE_REGS: std::ops::RangeInclusive<u8> = 1..=12;
const FP_REGS: std::ops::RangeInclusive<u8> = 1..=8;

/// L1 line size the stride patterns are tuned against (the default
/// hierarchy's 32B lines; the patterns still stress other geometries,
/// they are just no longer bank-exact).
const LINE: i64 = 32;
/// Bank count the conflict strides are tuned against.
const BANKS: i64 = 4;

/// Tunable envelope for one generated program.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Body blocks per loop iteration (the static-size lever).
    pub blocks: std::ops::RangeInclusive<u64>,
    /// Outer-loop trip count range.
    pub iters: std::ops::RangeInclusive<u64>,
    /// Bytes in the zero-initialized data region.
    pub data_bytes: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            blocks: 3..=10,
            iters: 4..=40,
            data_bytes: 8192,
        }
    }
}

impl GenConfig {
    /// A smaller envelope for self-tests and shrinking experiments: short
    /// bodies whose minimal failing core is a handful of instructions.
    pub fn small() -> Self {
        Self {
            blocks: 2..=4,
            iters: 4..=12,
            data_bytes: 4096,
        }
    }
}

struct Gen {
    rng: Rng,
    text: Vec<Inst>,
    /// `(branch index, subroutine id)` fix-ups for `jal` sites.
    calls: Vec<(usize, usize)>,
    /// Subroutine bodies, appended after `halt` and patched into calls.
    subs: Vec<Vec<Inst>>,
    data_bytes: u64,
}

/// Generates one program from a seed. Equal seeds yield equal programs.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut g = Gen {
        rng: Rng::new(seed),
        text: Vec::new(),
        calls: Vec::new(),
        subs: Vec::new(),
        data_bytes: cfg.data_bytes,
    };
    g.program(cfg)
}

impl Gen {
    fn r(&mut self) -> Reg {
        Reg::new(
            self.rng
                .range(*VALUE_REGS.start() as i64, *VALUE_REGS.end() as i64) as u8,
        )
    }

    fn f(&mut self) -> FReg {
        FReg::new(
            self.rng
                .range(*FP_REGS.start() as i64, *FP_REGS.end() as i64) as u8,
        )
    }

    fn base(&mut self) -> Reg {
        Reg::new(*self.rng.pick(&BASE_REGS))
    }

    /// A data-region offset that stays inside the region even after the
    /// per-iteration pointer drift.
    fn off(&mut self) -> i64 {
        self.rng.range(0, (self.data_bytes as i64 / 2).max(8)) & !7
    }

    fn emit(&mut self, inst: Inst) {
        self.text.push(inst);
    }

    fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs: Reg::ZERO,
            imm,
        });
    }

    fn program(&mut self, cfg: &GenConfig) -> Program {
        // Prologue: base pointers spread across the data region, the loop
        // counter, and seeded scratch values.
        for (i, &b) in BASE_REGS.iter().enumerate() {
            let spread = (self.data_bytes as i64 / 8) * i as i64;
            let jitter = self.rng.range(0, 64) & !7;
            self.li(Reg::new(b), DATA_BASE as i64 + spread + jitter);
        }
        let iters = self
            .rng
            .range(*cfg.iters.start() as i64, *cfg.iters.end() as i64);
        self.li(Reg::new(LOOP_REG), iters);
        for r in 1..=6u8 {
            let v = self.rng.range(-9, 23);
            self.li(Reg::new(r), v);
        }
        for fr in 1..=4u8 {
            let src = Reg::new(fr);
            self.emit(Inst::MovToFp {
                fd: FReg::new(fr),
                rs: src,
            });
        }

        let loop_top = self.text.len() as u32;
        let blocks = self
            .rng
            .range(*cfg.blocks.start() as i64, *cfg.blocks.end() as i64);
        for _ in 0..blocks {
            self.block();
        }

        // Epilogue: drift one base pointer (so iterations touch fresh
        // lines), decrement, loop.
        let drift_base = self.base();
        let drift = self.rng.range(0, 6) * 8;
        self.emit(Inst::AluImm {
            op: AluOp::Add,
            rd: drift_base,
            rs: drift_base,
            imm: drift,
        });
        self.emit(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(LOOP_REG),
            rs: Reg::new(LOOP_REG),
            imm: -1,
        });
        self.emit(Inst::Branch {
            cond: BranchCond::Ne,
            rs: Reg::new(LOOP_REG),
            rt: Reg::ZERO,
            target: loop_top,
        });
        self.emit(Inst::Halt);

        // Lay out subroutines after the halt and patch the call sites.
        let mut sub_entries = Vec::with_capacity(self.subs.len());
        let subs = std::mem::take(&mut self.subs);
        for body in subs {
            sub_entries.push(self.text.len() as u32);
            self.text.extend(body);
            self.emit(Inst::JumpReg { rs: Reg::RA });
        }
        for &(site, sub) in &self.calls {
            if let Inst::JumpAndLink { target, .. } = &mut self.text[site] {
                *target = sub_entries[sub];
            }
        }

        Program::from_parts(
            std::mem::take(&mut self.text),
            vec![0u8; self.data_bytes as usize],
            std::collections::HashMap::new(),
            0,
        )
    }

    fn block(&mut self) {
        match self.rng.below(100) {
            0..=17 => self.alias_chain(),
            18..=35 => self.bank_conflict_burst(),
            36..=47 => self.same_line_burst(),
            48..=61 => self.forwarding_window(),
            62..=75 => self.fp_stencil(),
            76..=89 => self.branchy(),
            90..=95 => self.alu_chain(),
            _ => self.call(),
        }
    }

    /// Store then load the same (or overlapping) bytes, then store back —
    /// a dependence chain through memory.
    fn alias_chain(&mut self) {
        let b = self.base();
        let o = self.off();
        let (src, dst) = (self.r(), self.r());
        let store_w = *self.rng.pick(&[Width::Word, Width::Double]);
        self.emit(Inst::Store {
            width: store_w,
            rs: src,
            base: b,
            offset: o,
        });
        // Same-address reload, or a partial overlap inside the store.
        let (load_w, load_off) = if self.rng.chance(40) {
            (
                Width::Word,
                o + if store_w == Width::Double { 4 } else { 0 },
            )
        } else {
            (store_w, o)
        };
        self.emit(Inst::Load {
            width: load_w,
            rd: dst,
            base: b,
            offset: load_off,
        });
        let bump = self.rng.range(1, 5);
        self.emit(Inst::AluImm {
            op: AluOp::Add,
            rd: dst,
            rs: dst,
            imm: bump,
        });
        if self.rng.chance(60) {
            self.emit(Inst::Store {
                width: store_w,
                rs: dst,
                base: b,
                offset: o,
            });
        }
    }

    /// A burst of loads whose addresses differ by `line × banks`: same
    /// bank, different lines — serialized by banked designs, parallel on
    /// an ideal cache.
    fn bank_conflict_burst(&mut self) {
        let b = self.base();
        let o = self.off().min(self.data_bytes as i64 / 4);
        let n = self.rng.range(3, 5);
        let stride = LINE * BANKS;
        for k in 0..n {
            let rd = self.r();
            self.emit(Inst::Load {
                width: Width::Word,
                rd,
                base: b,
                offset: o + k * stride,
            });
        }
        if self.rng.chance(35) {
            let rs = self.r();
            self.emit(Inst::Store {
                width: Width::Word,
                rs,
                base: b,
                offset: o + stride,
            });
        }
    }

    /// References packed into one cache line — the LBIC combining case.
    fn same_line_burst(&mut self) {
        let b = self.base();
        let o = self.off() & !(LINE - 1);
        let n = self.rng.range(2, 4);
        for k in 0..n {
            let rd = self.r();
            self.emit(Inst::Load {
                width: Width::Double,
                rd,
                base: b,
                offset: o + k * 8,
            });
        }
    }

    /// Store, a window of independent ALU work, then a load of the stored
    /// bytes: the forwarding distance varies with the window length.
    fn forwarding_window(&mut self) {
        let b = self.base();
        let o = self.off();
        let src = self.r();
        self.emit(Inst::Store {
            width: Width::Double,
            rs: src,
            base: b,
            offset: o,
        });
        let window = self.rng.range(1, 4);
        for _ in 0..window {
            let (rd, rs, rt) = (self.r(), self.r(), self.r());
            let op = *self
                .rng
                .pick(&[AluOp::Add, AluOp::Xor, AluOp::Sub, AluOp::And]);
            self.emit(Inst::Alu { op, rd, rs, rt });
        }
        let dst = self.r();
        self.emit(Inst::Load {
            width: Width::Double,
            rd: dst,
            base: b,
            offset: o,
        });
    }

    /// 3-point stencil: load neighbors, combine, store the center.
    fn fp_stencil(&mut self) {
        let b = self.base();
        let o = self.off().max(8);
        let (a, c, r2) = (self.f(), self.f(), self.f());
        let acc = self.f();
        let t = self.f();
        self.emit(Inst::FLoad {
            width: Width::Double,
            fd: a,
            base: b,
            offset: o - 8,
        });
        self.emit(Inst::FLoad {
            width: Width::Double,
            fd: c,
            base: b,
            offset: o,
        });
        self.emit(Inst::FLoad {
            width: Width::Double,
            fd: r2,
            base: b,
            offset: o + 8,
        });
        let op1 = *self.rng.pick(&[FpuOp::Add, FpuOp::Sub]);
        let op2 = *self.rng.pick(&[FpuOp::Mul, FpuOp::Add]);
        self.emit(Inst::Fpu {
            op: op1,
            fd: t,
            fs: a,
            ft: c,
        });
        self.emit(Inst::Fpu {
            op: op2,
            fd: acc,
            fs: t,
            ft: r2,
        });
        self.emit(Inst::FStore {
            width: Width::Double,
            fs: acc,
            base: b,
            offset: o,
        });
    }

    /// A forward skip or diamond over a couple of instructions. Branch
    /// inputs are scratch registers, which earlier blocks may have loaded
    /// from memory — data-dependent forward control, still loop-free.
    fn branchy(&mut self) {
        let (ra, rb) = (self.r(), self.r());
        let cond = *self.rng.pick(&[
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ]);
        let br_at = self.text.len();
        self.emit(Inst::Branch {
            cond,
            rs: ra,
            rt: rb,
            target: 0, // patched below
        });
        let then_len = self.rng.range(1, 3);
        for _ in 0..then_len {
            self.short_work();
        }
        if self.rng.chance(40) {
            // Diamond: jump over the else-arm.
            let j_at = self.text.len();
            self.emit(Inst::Jump { target: 0 });
            let else_target = self.text.len() as u32;
            self.short_work();
            let join = self.text.len() as u32;
            if let Inst::Branch { target, .. } = &mut self.text[br_at] {
                *target = else_target;
            }
            if let Inst::Jump { target } = &mut self.text[j_at] {
                *target = join;
            }
        } else {
            let join = self.text.len() as u32;
            if let Inst::Branch { target, .. } = &mut self.text[br_at] {
                *target = join;
            }
        }
    }

    /// One cheap instruction for branch arms: ALU or a single load.
    fn short_work(&mut self) {
        if self.rng.chance(40) {
            let b = self.base();
            let o = self.off();
            let rd = self.r();
            self.emit(Inst::Load {
                width: Width::Word,
                rd,
                base: b,
                offset: o,
            });
        } else {
            let (rd, rs, rt) = (self.r(), self.r(), self.r());
            let op = *self
                .rng
                .pick(&[AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Slt]);
            self.emit(Inst::Alu { op, rd, rs, rt });
        }
    }

    /// A dependent ALU chain with long-latency ops mixed in.
    fn alu_chain(&mut self) {
        let n = self.rng.range(2, 4);
        let mut prev = self.r();
        for _ in 0..n {
            let rd = self.r();
            let rt = self.r();
            let op = *self
                .rng
                .pick(&[AluOp::Add, AluOp::Mul, AluOp::Div, AluOp::Sub, AluOp::Sll]);
            self.emit(Inst::Alu {
                op,
                rd,
                rs: prev,
                rt,
            });
            prev = rd;
        }
    }

    /// `jal` to a small shared subroutine ending in `jr ra`.
    fn call(&mut self) {
        let sub = if self.subs.is_empty() || (self.subs.len() < 3 && self.rng.chance(50)) {
            let mut body = Vec::new();
            let b = Reg::new(*self.rng.pick(&BASE_REGS));
            let o = self.rng.range(0, 64) & !7;
            let rd = Reg::new(self.rng.range(7, 12) as u8);
            body.push(Inst::Load {
                width: Width::Double,
                rd,
                base: b,
                offset: o,
            });
            body.push(Inst::AluImm {
                op: AluOp::Xor,
                rd,
                rs: rd,
                imm: self.rng.range(0, 255),
            });
            if self.rng.chance(50) {
                body.push(Inst::Store {
                    width: Width::Word,
                    rs: rd,
                    base: b,
                    offset: o,
                });
            }
            self.subs.push(body);
            self.subs.len() - 1
        } else {
            self.rng.below(self.subs.len() as u64) as usize
        };
        let site = self.text.len();
        self.emit(Inst::JumpAndLink {
            rd: Reg::RA,
            target: 0, // patched once subroutines are laid out
        });
        self.calls.push((site, sub));
    }
}

/// The load-only metamorphic transform: every store becomes a load of the
/// same address into a reserved sink register. On the transformed program
/// replicated ports are *definitionally* equivalent to ideal ports (the
/// store-broadcast machinery never engages), which the oracle checks
/// bit-for-bit. Termination is preserved: control flow never reads the
/// sinks, and the loop counter is never a memory destination.
pub fn stores_to_loads(p: &Program) -> Program {
    let text = p
        .text()
        .iter()
        .map(|inst| match *inst {
            Inst::Store {
                width,
                rs: _,
                base,
                offset,
            } => Inst::Load {
                width,
                rd: Reg::new(INT_SINK),
                base,
                offset,
            },
            Inst::FStore {
                width,
                fs: _,
                base,
                offset,
            } => Inst::FLoad {
                width,
                fd: FReg::new(FP_SINK),
                base,
                offset,
            },
            other => other,
        })
        .collect();
    Program::from_parts(
        text,
        p.data().to_vec(),
        std::collections::HashMap::new(),
        p.entry(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_cpu::Emulator;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(11, &cfg);
        let b = generate(11, &cfg);
        assert_eq!(a.text(), b.text());
        assert_ne!(a.text(), generate(12, &cfg).text());
    }

    #[test]
    fn programs_terminate_functionally() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = generate(seed, &cfg);
            let mut emu = Emulator::new(&p);
            let mut steps = 0u64;
            while emu.step().is_some() {
                steps += 1;
                assert!(steps < 5_000_000, "seed {seed}: runaway program");
            }
            assert!(steps > 10, "seed {seed}: trivially empty program");
        }
    }

    #[test]
    fn programs_contain_memory_traffic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let p = generate(seed, &cfg);
            assert!(
                p.text().iter().any(|i| i.is_mem()),
                "seed {seed}: no memory instructions"
            );
        }
    }

    #[test]
    fn load_only_transform_strips_every_store() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let p = stores_to_loads(&generate(seed, &cfg));
            assert!(p.text().iter().all(|i| !i.is_store()), "seed {seed}");
            // And still terminates.
            let mut emu = Emulator::new(&p);
            let mut steps = 0u64;
            while emu.step().is_some() {
                steps += 1;
                assert!(
                    steps < 5_000_000,
                    "seed {seed}: transform broke termination"
                );
            }
        }
    }

    #[test]
    fn generated_code_never_touches_reserved_registers() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let p = generate(seed, &cfg);
            for inst in p.text() {
                if let Some(hbdc_isa::ArchReg::Int(r)) = inst.def() {
                    assert_ne!(r.index(), INT_SINK as usize, "seed {seed}: wrote int sink");
                }
                if let Some(hbdc_isa::ArchReg::Fp(f)) = inst.def() {
                    assert_ne!(f.index(), FP_SINK as usize, "seed {seed}: wrote fp sink");
                }
            }
        }
    }
}
