//! Micro-benchmarks of the core building blocks: assembler throughput,
//! tag-array access, port-model arbitration, and functional emulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_core::{MemRequest, PortConfig};
use hbdc_cpu::Emulator;
use hbdc_isa::asm::assemble;
use hbdc_mem::{CacheGeometry, LookupResult, TagArray};
use hbdc_workloads::{by_name, Scale};

fn bench_assembler(c: &mut Criterion) {
    let src = by_name("mgrid").expect("registered").source(Scale::Test);
    c.bench_function("assembler/mgrid", |b| {
        b.iter(|| black_box(assemble(&src).expect("assembles").text().len()))
    });
}

fn bench_tag_array(c: &mut Criterion) {
    c.bench_function("tagarray/lookup-fill-10k", |b| {
        b.iter(|| {
            let mut tags = TagArray::new(CacheGeometry::new(32 * 1024, 32, 1));
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                let addr = (i.wrapping_mul(0x9e37_79b9) >> 3) & 0xf_ffff;
                if tags.lookup(addr, i % 4 == 0) == LookupResult::Hit {
                    hits += 1;
                } else {
                    tags.fill(addr, i % 4 == 0);
                }
            }
            black_box(hits)
        })
    });
}

fn bench_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitrate");
    let ready: Vec<MemRequest> = (0..32u64)
        .map(|i| {
            let addr = (i.wrapping_mul(0x9e37_79b9) >> 2) & 0xffff8;
            if i % 4 == 0 {
                MemRequest::store(i, addr)
            } else {
                MemRequest::load(i, addr)
            }
        })
        .collect();
    for config in [
        PortConfig::Ideal { ports: 8 },
        PortConfig::Replicated { ports: 8 },
        PortConfig::banked(8),
        PortConfig::lbic(8, 4),
    ] {
        let mut model = config.build(32);
        group.bench_function(model.label(), |b| {
            b.iter(|| {
                let g = model.arbitrate(black_box(&ready));
                model.tick();
                black_box(g.len())
            })
        });
    }
    group.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let bench = by_name("li").expect("registered");
    let program = bench.build(Scale::Test);
    c.bench_function("emulator/li-test-scale", |b| {
        b.iter(|| {
            let emu = Emulator::new(&program);
            black_box(emu.count())
        })
    });
}

criterion_group!(
    benches,
    bench_assembler,
    bench_tag_array,
    bench_arbitration,
    bench_emulator
);
criterion_main!(benches);
