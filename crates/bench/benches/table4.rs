//! Criterion bench for the Table 4 machinery: timing simulation under the
//! six LBIC configurations. Full-scale rows come from
//! `cargo run -p hbdc-bench --bin table4 --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_bench::runner::simulate;
use hbdc_core::PortConfig;
use hbdc_workloads::{by_name, Scale};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    let bench = by_name("swim").expect("registered benchmark");
    for (m, n) in [(2u32, 2usize), (4, 2), (4, 4)] {
        group.bench_function(format!("lbic-{m}x{n}"), |b| {
            b.iter(|| {
                black_box(
                    simulate(&bench, Scale::Test, PortConfig::lbic(m, n))
                        .unwrap()
                        .ipc(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
