//! Criterion bench for the Table 3 machinery: full timing simulation of a
//! benchmark analog under the conventional port models. Full-scale rows
//! come from `cargo run -p hbdc-bench --bin table3 --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_bench::runner::simulate;
use hbdc_core::PortConfig;
use hbdc_workloads::{by_name, Scale};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let bench = by_name("li").expect("registered benchmark");
    let configs = [
        ("ideal-1", PortConfig::Ideal { ports: 1 }),
        ("ideal-4", PortConfig::Ideal { ports: 4 }),
        ("repl-4", PortConfig::Replicated { ports: 4 }),
        ("bank-4", PortConfig::banked(4)),
    ];
    for (name, port) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate(&bench, Scale::Test, port).unwrap().ipc()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
