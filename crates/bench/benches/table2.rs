//! Criterion bench for the Table 2 pipeline: functional emulation of a
//! benchmark analog plus trace-driven L1 simulation. The full-scale rows
//! are produced by `cargo run -p hbdc-bench --bin table2`; this bench
//! tracks the cost of the measurement machinery itself at test scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_cpu::Emulator;
use hbdc_trace::{MemRef, TraceCacheSim};
use hbdc_workloads::{by_name, Scale};

fn table2_row(name: &str) -> (u64, f64) {
    let bench = by_name(name).expect("registered benchmark");
    let program = bench.build(Scale::Test);
    let mut emu = Emulator::new(&program);
    let mut dl1 = TraceCacheSim::paper_l1();
    let mut total = 0u64;
    while let Some(di) = emu.step() {
        total += 1;
        if let Some(addr) = di.addr {
            dl1.access(if di.inst.is_store() {
                MemRef::store(addr)
            } else {
                MemRef::load(addr)
            });
        }
    }
    (total, dl1.stats().miss_rate())
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for name in ["compress", "swim"] {
        group.bench_function(name, |b| b.iter(|| black_box(table2_row(name))));
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
