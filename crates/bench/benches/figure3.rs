//! Criterion bench for the Figure 3 analyzer: consecutive-reference
//! classification over synthetic and emulated streams. Full-scale output
//! comes from `cargo run -p hbdc-bench --bin figure3 --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_cpu::Emulator;
use hbdc_trace::{ConsecutiveMapping, MemRef, StreamGenerator, StreamParams};
use hbdc_workloads::{by_name, Scale};

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);

    // Pure analyzer throughput on a pre-generated stream.
    let refs: Vec<MemRef> = StreamGenerator::new(StreamParams::default(), 42)
        .take(100_000)
        .collect();
    group.bench_function("synthetic-100k", |b| {
        b.iter(|| {
            let mut f3 = ConsecutiveMapping::new(4, 32);
            f3.extend(refs.iter().copied());
            black_box(f3.segments())
        })
    });

    // End-to-end: emulate a benchmark and classify its stream.
    group.bench_function("gcc-emulated", |b| {
        let bench = by_name("gcc").expect("registered benchmark");
        let program = bench.build(Scale::Test);
        b.iter(|| {
            let mut emu = Emulator::new(&program);
            let mut f3 = ConsecutiveMapping::new(4, 32);
            while let Some(di) = emu.step() {
                if let Some(addr) = di.addr {
                    f3.record(if di.inst.is_store() {
                        MemRef::store(addr)
                    } else {
                        MemRef::load(addr)
                    });
                }
            }
            black_box(f3.same_bank_fraction())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
