//! Criterion benches for the three ablation studies (DESIGN.md):
//! bank-selection functions, LBIC combining policy, and queue depths.
//! Full-scale output comes from the `ablation_*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbdc_bench::runner::simulate;
use hbdc_core::{CombinePolicy, PortConfig};
use hbdc_cpu::{CpuConfig, Simulator};
use hbdc_mem::{BankMapper, BankSelect, HierarchyConfig};
use hbdc_trace::{ConflictAnalysis, StreamGenerator, StreamParams};
use hbdc_workloads::{by_name, Scale};

fn bench_bankmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bankmap");
    group.sample_size(10);
    let refs: Vec<_> = StreamGenerator::new(StreamParams::default(), 9)
        .take(50_000)
        .collect();
    for (name, select) in [
        ("bit", BankSelect::BitSelect),
        ("xor", BankSelect::XorFold),
        ("rand", BankSelect::PseudoRandom),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut a = ConflictAnalysis::new(BankMapper::with_select(select, 8, 32), 8);
                a.extend(refs.iter().copied());
                a.finish();
                black_box(a.conflict_rate())
            })
        });
    }
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policy");
    group.sample_size(10);
    let bench = by_name("perl").expect("registered benchmark");
    for (name, policy) in [
        ("leading", CombinePolicy::LeadingRequest),
        ("largest", CombinePolicy::LargestGroup),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    simulate(
                        &bench,
                        Scale::Test,
                        PortConfig::Lbic {
                            banks: 4,
                            line_ports: 4,
                            store_queue: 8,
                            policy,
                        },
                    )
                    .unwrap()
                    .ipc(),
                )
            })
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    let bench = by_name("li").expect("registered benchmark");
    let program = bench.build(Scale::Test);
    for lsq in [16usize, 512] {
        group.bench_function(format!("lsq-{lsq}"), |b| {
            b.iter(|| {
                let cfg = CpuConfig {
                    lsq_size: lsq,
                    ..CpuConfig::default()
                };
                black_box(
                    Simulator::new(
                        &program,
                        cfg,
                        HierarchyConfig::default(),
                        PortConfig::lbic(4, 4),
                    )
                    .run()
                    .unwrap()
                    .ipc(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bankmap, bench_policy, bench_depth);
criterion_main!(benches);
