//! Golden-equivalence check: the optimized simulator must be
//! bit-identical to the reference implementation.
//!
//! The constants below are the complete `SimReport`s produced for `li`
//! at `Scale::Test` by the pre-optimization (allocating) simulator.
//! Any divergence means a scratch-buffer or ready-list change altered
//! simulated behavior, which is never acceptable for a pure perf change.

use hbdc_bench::runner::{simulate, simulate_matrix, simulate_with};
use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, SimReport};
use hbdc_workloads::{by_name, Scale};

fn golden(port_label: &str) -> SimReport {
    let common = SimReport {
        committed: 58493,
        cycles: 0, // per-config below
        loads: 12600,
        stores: 11472,
        forwards: 0,
        l1_accesses: 24072,
        l1_misses: 1024,
        l1_writebacks: 0,
        l2_accesses: 1024,
        l2_misses: 512,
        arb_offered: 0, // per-config below
        arb_granted: 24072,
        bank_conflicts: 0,
        combined: 0,
        store_serializations: 0,
        port_label: port_label.into(),
        skipped_cycles: 0,
        wall_secs: 0.0,
        cycles_per_sec: 0.0,
        events_per_sec: 0.0,
    };
    match port_label {
        "True-4" => SimReport {
            cycles: 7142,
            arb_offered: 28279,
            ..common
        },
        "Bank-4" => SimReport {
            cycles: 14667,
            arb_offered: 59697,
            bank_conflicts: 35625,
            ..common
        },
        "LBIC-4x2" => SimReport {
            cycles: 10730,
            arb_offered: 42063,
            bank_conflicts: 15365,
            combined: 6260,
            ..common
        },
        other => panic!("no golden for {other}"),
    }
}

const CONFIGS: [PortConfig; 3] = [
    PortConfig::Ideal { ports: 4 },
    PortConfig::Banked {
        banks: 4,
        select: hbdc_mem::BankSelect::BitSelect,
    },
    PortConfig::Lbic {
        banks: 4,
        line_ports: 2,
        store_queue: 8,
        policy: hbdc_core::CombinePolicy::LeadingRequest,
    },
];

#[test]
fn li_reports_match_reference_implementation() {
    let li = by_name("li").unwrap();
    for port in CONFIGS {
        let r = simulate(&li, Scale::Test, port).unwrap();
        assert_eq!(r, golden(&r.port_label), "{} diverged", r.port_label);
    }
}

#[test]
fn matrix_reports_match_reference_implementation() {
    let li = by_name("li").unwrap();
    let configs: Vec<(String, PortConfig)> = CONFIGS.iter().map(|&p| (String::new(), p)).collect();
    let matrix = simulate_matrix(&[li], Scale::Test, &configs).expect_complete();
    for r in &matrix[0] {
        assert_eq!(*r, golden(&r.port_label), "{} diverged", r.port_label);
    }
}

/// The invariant auditor is a pure observer: running with `audit` on must
/// produce reports bit-identical to the golden references (and therefore
/// to audit-off runs). A divergence means the auditor perturbed
/// simulated behavior, which is never acceptable.
#[test]
fn audited_runs_match_reference_implementation() {
    let li = by_name("li").unwrap();
    for port in CONFIGS {
        let audited = CpuConfig {
            audit: true,
            ..CpuConfig::default()
        };
        let r = simulate_with(&li, Scale::Test, port, audited).unwrap();
        assert_eq!(
            r,
            golden(&r.port_label),
            "{} diverged under audit",
            r.port_label
        );
    }
}
