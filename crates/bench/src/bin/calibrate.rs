//! Calibration report: measured vs paper Table 2 for every kernel, plus
//! Figure 3 locality preview. Used while tuning the workload analogs.

use hbdc_cpu::Emulator;
use hbdc_trace::{ConsecutiveMapping, MemRef, TraceCacheSim};
use hbdc_workloads::{all, Scale};

fn main() {
    println!(
        "{:10} {:>9} {:>6}/{:<5} {:>5}/{:<4} {:>6}/{:<6} {:>6} {:>6}",
        "bench", "instrs", "mem%", "(pap)", "s/l", "(pap)", "miss", "(pap)", "B-same", "B-diff"
    );
    for b in all() {
        let p = b.build(Scale::Small);
        let mut emu = Emulator::new(&p);
        let (mut total, mut loads, mut stores) = (0u64, 0u64, 0u64);
        let mut dl1 = TraceCacheSim::paper_l1();
        let mut f3 = ConsecutiveMapping::new(4, 32);
        while let Some(di) = emu.step() {
            total += 1;
            if di.inst.is_mem() {
                let r = if di.inst.is_store() {
                    stores += 1;
                    MemRef::store(di.mem_addr())
                } else {
                    loads += 1;
                    MemRef::load(di.mem_addr())
                };
                dl1.access(r);
                f3.record(r);
            }
        }
        let pr = b.paper();
        println!(
            "{:10} {:>9} {:>6.1}/{:<5.1} {:>5.2}/{:<4.2} {:>6.4}/{:<6.4} {:>6.3} {:>6.3}",
            b.name(),
            total,
            (loads + stores) as f64 / total as f64 * 100.0,
            pr.mem_pct,
            stores as f64 / loads as f64,
            pr.store_to_load,
            dl1.stats().miss_rate(),
            pr.miss_rate,
            f3.same_line_fraction(),
            f3.diff_line_fraction(),
        );
    }
}
