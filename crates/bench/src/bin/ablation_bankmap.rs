//! **Ablation A — bank-selection functions** (paper §3.2).
//!
//! The paper uses simple bit selection and argues that fancier selection
//! functions (refs \[10]\[11]) "may not be as critical as we thought since much
//! of the loss of bandwidth due to same bank collisions map to the same
//! cache line." This harness tests that claim two ways:
//!
//! 1. timing: IPC of an 8-bank cache under bit-select / XOR-fold /
//!    pseudo-random selection;
//! 2. trace: same-bank collision decomposition (same-line vs conflict)
//!    under each mapper.
//!
//! Usage: `ablation_bankmap [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, simulate, SpeedTally};
use hbdc_core::PortConfig;
use hbdc_cpu::Emulator;
use hbdc_mem::{BankMapper, BankSelect};
use hbdc_stats::{ipc, Table};
use hbdc_trace::{ConflictAnalysis, MemRef};
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let selects = [
        ("bit", BankSelect::BitSelect),
        ("xor", BankSelect::XorFold),
        ("rand", BankSelect::PseudoRandom),
    ];

    let mut table = Table::new(
        [
            "Program",
            "IPC bit",
            "IPC xor",
            "IPC rand",
            "conf bit",
            "conf xor",
            "conf rand",
            "same-line bit",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let mut cells = vec![bench.name().to_string()];
        for (_, select) in selects {
            let r = sim_ok(simulate(
                &bench,
                scale,
                PortConfig::Banked { banks: 8, select },
            ));
            cells.push(ipc(r.ipc()));
            tally.add(&r);
            eprint!(".");
        }
        // Trace-level collision decomposition (window of 8 simultaneous
        // references, 8 banks).
        let mut analyses: Vec<ConflictAnalysis> = selects
            .iter()
            .map(|(_, s)| ConflictAnalysis::new(BankMapper::with_select(*s, 8, 32), 8))
            .collect();
        let mut emu = Emulator::new(&bench.build(scale));
        while let Some(di) = emu.step() {
            if di.inst.is_mem() {
                let r = if di.inst.is_store() {
                    MemRef::store(di.mem_addr())
                } else {
                    MemRef::load(di.mem_addr())
                };
                for a in &mut analyses {
                    a.record(r);
                }
            }
        }
        for a in &mut analyses {
            a.finish();
        }
        for a in &analyses {
            cells.push(format!("{:.1}%", a.conflict_rate() * 100.0));
        }
        cells.push(format!("{:.1}%", analyses[0].same_line_rate() * 100.0));
        table.row(cells);
        eprintln!(" {}", bench.name());
    }

    tally.print();
    println!("\nAblation A: bank-selection function, 8-bank cache\n");
    println!("{table}");
    println!(
        "The paper's claim holds if IPC is broadly insensitive to the mapper while\n\
         same-line collisions (recoverable only by combining) remain substantial."
    );
}
