//! Regenerates the paper's **Figure 3**: consecutive memory-reference
//! mapping analysis for an infinite 4-bank line-interleaved cache. For
//! each benchmark, the five segments — B-same-line, B-diff-line, and
//! (B+1)..(B+3) mod 4 — are printed as percentages of all consecutive
//! reference pairs, plus suite averages.
//!
//! Usage: `figure3 [--scale test|small|full]`

use hbdc_cpu::Emulator;
use hbdc_stats::Table;
use hbdc_trace::{ConsecutiveMapping, MemRef};
use hbdc_workloads::{all, Suite};

use hbdc_bench::runner::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        [
            "Program",
            "B-same line",
            "B-diff line",
            "(B+1)%4",
            "(B+2)%4",
            "(B+3)%4",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    let mut int_rows: Vec<Vec<f64>> = Vec::new();
    let mut fp_rows: Vec<Vec<f64>> = Vec::new();
    let mut printed_fp_rule = false;
    for bench in all() {
        if bench.suite() == Suite::Fp && !printed_fp_rule {
            table.rule();
            printed_fp_rule = true;
        }
        let program = bench.build(scale);
        let mut emu = Emulator::new(&program);
        let mut f3 = ConsecutiveMapping::new(4, 32);
        while let Some(di) = emu.step() {
            if di.inst.is_mem() {
                let r = if di.inst.is_store() {
                    MemRef::store(di.mem_addr())
                } else {
                    MemRef::load(di.mem_addr())
                };
                f3.record(r);
            }
        }
        let segs = f3.segments();
        let mut cells = vec![bench.name().to_string()];
        cells.extend(segs.iter().map(|s| format!("{:.1}%", s * 100.0)));
        table.row(cells);
        match bench.suite() {
            Suite::Int => int_rows.push(segs),
            Suite::Fp => fp_rows.push(segs),
        }
        eprint!(".");
    }
    eprintln!();

    table.rule();
    for (label, rows) in [("SPECint Ave.", &int_rows), ("SPECfp Ave.", &fp_rows)] {
        let cols = rows[0].len();
        let mut cells = vec![label.to_string()];
        for c in 0..cols {
            let mean = rows.iter().map(|r| r[c]).sum::<f64>() / rows.len() as f64;
            cells.push(format!("{:.1}%", mean * 100.0));
        }
        table.row(cells);
    }

    println!("\nFigure 3: consecutive reference mapping, infinite 4-bank cache\n");
    println!("{table}");
    println!(
        "Paper reference points: SPECint same-bank ~49% (same-line 35.4%), \
         SPECfp same-bank ~44% (same-line 21.8%); swim B-diff 33.8%, wave5 B-diff 24.7%."
    );
}
