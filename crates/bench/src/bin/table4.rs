//! Regenerates the paper's **Table 4**: IPC for the six MxN LBIC
//! configurations (2x2, 2x4, 4x2, 4x4, 8x2, 8x4) plus suite averages and
//! the paper's §6 derived scaling claims.
//!
//! Usage: `table4 [--scale test|small|full] [--bench <name>] [--threads N]
//! [--csv] [--journal PATH | --resume PATH] [--timeout-secs N] [--shard
//! [--max-attempts N] [--lease-ttl-secs N]]`
//!
//! With `--journal`, every finished cell is logged crash-safely and
//! Ctrl-C checkpoints in-flight cells; `--resume PATH` continues an
//! interrupted campaign from its journal and cell checkpoints. With
//! `--shard`, N such processes started on the same journal drain one
//! campaign cooperatively (leased cells, isolated worker subprocesses,
//! quarantine after `--max-attempts` failures — exit 3).

use hbdc_bench::runner::{
    benches_from_args, csv_from_args, scale_from_args, simulate_matrix, table4_columns,
    SuiteAverages,
};
use hbdc_cpu::SimReport;
use hbdc_stats::{ipc, Table};
use hbdc_workloads::Suite;

fn main() -> std::process::ExitCode {
    let scale = scale_from_args();
    let columns = table4_columns();
    let benches = benches_from_args();

    let mut headers = vec!["Program".to_string()];
    headers.extend(columns.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(headers);
    table.numeric();

    let run = simulate_matrix(&benches, scale, &columns);
    let mut averages = SuiteAverages::new();
    let mut printed_fp_rule = false;
    for (bench, reports) in benches.iter().zip(&run.reports) {
        if bench.suite() == Suite::Fp && !printed_fp_rule {
            table.rule();
            printed_fp_rule = true;
        }
        let mut cells = vec![bench.name().to_string()];
        cells.extend(reports.iter().map(|r| {
            r.as_ref()
                .map_or_else(|| "--".to_string(), |r| ipc(r.ipc()))
        }));
        // Only complete rows enter the suite averages; a failed cell
        // leaves a visible "--" in the table instead of skewing means.
        if let Some(row) = reports
            .iter()
            .map(|r| r.as_ref().map(SimReport::ipc))
            .collect::<Option<Vec<f64>>>()
        {
            averages.push(bench.suite(), row);
        }
        table.row(cells);
    }

    if benches.len() > 1 {
        table.rule();
        for (label, means) in [
            ("SPECint Ave.", averages.int_means()),
            ("SPECfp Ave.", averages.fp_means()),
        ] {
            if means.is_empty() {
                continue;
            }
            let mut cells = vec![label.to_string()];
            cells.extend(means.iter().map(|&v| ipc(v)));
            table.row(cells);
        }
    }

    println!("\nTable 4: IPC for six MxN LBIC configurations\n");
    println!("{table}");
    if csv_from_args() {
        println!("CSV:\n{}", table.to_csv());
    }

    // Paper §6: SPECfp gains more from N (combining) than M (banks);
    // SPECint gains more from M. Columns: 2x2, 2x4, 4x2, 4x4, 8x2, 8x4.
    let fp = averages.fp_means();
    let int = averages.int_means();
    if fp.len() == 6 && int.len() == 6 {
        let n_gain_fp =
            ((fp[1] / fp[0] - 1.0) + (fp[3] / fp[2] - 1.0) + (fp[5] / fp[4] - 1.0)) / 3.0 * 100.0;
        let m_gain_fp = ((fp[2] / fp[0] - 1.0)
            + (fp[4] / fp[2] - 1.0)
            + (fp[3] / fp[1] - 1.0)
            + (fp[5] / fp[3] - 1.0))
            / 4.0
            * 100.0;
        let n_gain_int =
            ((int[1] / int[0] - 1.0) + (int[3] / int[2] - 1.0) + (int[5] / int[4] - 1.0)) / 3.0
                * 100.0;
        let m_gain_int = ((int[2] / int[0] - 1.0)
            + (int[4] / int[2] - 1.0)
            + (int[3] / int[1] - 1.0)
            + (int[5] / int[3] - 1.0))
            / 4.0
            * 100.0;
        println!("Derived (paper §6):");
        println!(
            "  SPECfp: doubling N (combining) +{n_gain_fp:.1}% (paper +10.3%), doubling M +{m_gain_fp:.1}% (paper +6.5..8.5%)"
        );
        println!(
            "  SPECint: doubling N +{n_gain_int:.1}%, doubling M +{m_gain_int:.1}% (paper: int gains more from M than N)"
        );
    }

    run.exit_code()
}
