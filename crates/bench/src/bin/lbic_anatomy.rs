//! **LBIC anatomy**: where the Locality-Based Interleaved Cache's
//! bandwidth actually comes from, per benchmark (supporting the paper's
//! §6 narrative).
//!
//! For a 4x4 LBIC, reports the fraction of grants that were *combined*
//! (riders on a leading request), remaining bank conflicts, store-queue
//! behaviour, and the grants-per-cycle distribution.
//!
//! Usage: `lbic_anatomy [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, SpeedTally};
use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, Simulator};
use hbdc_mem::HierarchyConfig;
use hbdc_stats::Table;
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        [
            "Program",
            "IPC",
            "grants/cyc",
            "p90",
            "combined %",
            "conflicts %",
            "sq drains",
            "sq stalls",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let program = bench.build(scale);
        let mut sim = Simulator::new(
            &program,
            CpuConfig::default(),
            HierarchyConfig::default(),
            PortConfig::lbic(4, 4),
        );
        let report = sim_ok(sim.run());
        tally.add(&report);
        let arb = sim.port_stats();
        let granted = arb.granted().max(1);
        let offered = arb.offered().max(1);
        table.row(vec![
            bench.name().to_string(),
            format!("{:.3}", report.ipc()),
            format!("{:.2}", arb.grants_per_cycle().mean()),
            arb.grants_per_cycle()
                .quantile(0.9)
                .map_or("-".into(), |q| q.to_string()),
            format!(
                "{:.1}",
                arb.extra_counter("combined") as f64 / granted as f64 * 100.0
            ),
            format!(
                "{:.1}",
                arb.extra_counter("bank_conflicts") as f64 / offered as f64 * 100.0
            ),
            arb.extra_counter("sq_drains").to_string(),
            arb.extra_counter("sq_full_stalls").to_string(),
        ]);
        eprint!(".");
    }
    eprintln!();
    tally.print();
    println!("\nLBIC-4x4 anatomy: combining share, residual conflicts, store queues\n");
    println!("{table}");
}
