//! Regenerates the paper's **Table 3**: IPC for ideal multi-porting
//! (True), multi-porting by replication (Repl), and multi-banking (Bank)
//! as ports grow 1 → 16, for all ten benchmarks plus suite averages.
//!
//! Usage: `table3 [--scale test|small|full] [--bench <name>] [--threads N]
//! [--csv] [--journal PATH | --resume PATH] [--timeout-secs N] [--shard
//! [--max-attempts N] [--lease-ttl-secs N]]`
//!
//! With `--journal`, every finished cell is logged crash-safely and
//! Ctrl-C checkpoints in-flight cells; `--resume PATH` continues an
//! interrupted campaign from its journal and cell checkpoints. With
//! `--shard`, N such processes started on the same journal drain one
//! campaign cooperatively (leased cells, isolated worker subprocesses,
//! quarantine after `--max-attempts` failures — exit 3).

use hbdc_bench::runner::{
    benches_from_args, csv_from_args, scale_from_args, simulate_matrix, table3_columns,
    SuiteAverages,
};
use hbdc_cpu::SimReport;
use hbdc_stats::{ipc, Table};
use hbdc_workloads::Suite;

fn main() -> std::process::ExitCode {
    let scale = scale_from_args();
    let columns = table3_columns();
    let benches = benches_from_args();

    let mut headers = vec!["Program".to_string()];
    headers.extend(columns.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(headers);
    table.numeric();

    let run = simulate_matrix(&benches, scale, &columns);
    let mut averages = SuiteAverages::new();
    let mut printed_fp_rule = false;
    for (bench, reports) in benches.iter().zip(&run.reports) {
        if bench.suite() == Suite::Fp && !printed_fp_rule {
            table.rule();
            printed_fp_rule = true;
        }
        let mut cells = vec![bench.name().to_string()];
        cells.extend(reports.iter().map(|r| {
            r.as_ref()
                .map_or_else(|| "--".to_string(), |r| ipc(r.ipc()))
        }));
        // Only complete rows enter the suite averages; a failed cell
        // leaves a visible "--" in the table instead of skewing means.
        if let Some(row) = reports
            .iter()
            .map(|r| r.as_ref().map(SimReport::ipc))
            .collect::<Option<Vec<f64>>>()
        {
            averages.push(bench.suite(), row);
        }
        table.row(cells);
    }

    if benches.len() > 1 {
        table.rule();
        for (label, means) in [
            ("SPECint Ave.", averages.int_means()),
            ("SPECfp Ave.", averages.fp_means()),
        ] {
            if means.is_empty() {
                continue;
            }
            let mut cells = vec![label.to_string()];
            cells.extend(means.iter().map(|&v| ipc(v)));
            table.row(cells);
        }
    }

    println!("\nTable 3: IPC for True / Repl / Bank port models\n");
    println!("{table}");
    if csv_from_args() {
        println!("CSV:\n{}", table.to_csv());
    }

    // The paper's §3.1 derived claims.
    let int = averages.int_means();
    let fp = averages.fp_means();
    if !int.is_empty() && !fp.is_empty() {
        println!("Derived (paper §3.1):");
        println!(
            "  True 1→2 ports: SPECint +{:.0}% (paper +89%), SPECfp +{:.0}% (paper +92%)",
            (int[1] / int[0] - 1.0) * 100.0,
            (fp[1] / fp[0] - 1.0) * 100.0,
        );
        println!(
            "  True 2→4 ports: SPECint +{:.0}% (paper +41%), SPECfp +{:.0}% (paper +50%)",
            (int[4] / int[1] - 1.0) * 100.0,
            (fp[4] / fp[1] - 1.0) * 100.0,
        );
        println!(
            "  True 8→16 ports: SPECint +{:.2}% (paper +0.12%), SPECfp +{:.1}% (paper ~4%)",
            (int[10] / int[7] - 1.0) * 100.0,
            (fp[10] / fp[7] - 1.0) * 100.0,
        );
    }

    run.exit_code()
}
