//! Measures simulator throughput (simulated cycles per second of
//! simulator CPU time) over the Table 3 matrix and emits
//! `BENCH_throughput.json`, so the perf trajectory is tracked across PRs.
//!
//! The JSON carries the aggregate rate (what `scripts/perf_guard.sh`
//! gates on) plus a per-benchmark breakdown — each benchmark's rate,
//! how many cycles the event calendar skipped, and the executed-cycle
//! rate — so a regression or a skip-engagement change is attributable
//! to a workload, not just visible in the total.
//!
//! Usage: `throughput [--scale test|small|full] [--bench <name>] [--threads N]
//! [--journal PATH | --resume PATH] [--timeout-secs N]
//! [--trace-mode execute|replay] [--trace-cache DIR]`
//! (default scale: `small`, the standing cross-PR measurement point).
//!
//! Besides the working-copy `BENCH_throughput.json`, each run appends an
//! immutable copy under `results/bench_history/` (sequence-numbered,
//! stamped with the git commit when available) so the perf trajectory
//! across PRs stays plottable; prior entries are never overwritten.

use std::path::Path;
use std::time::Instant;

use hbdc_bench::runner::{
    benches_from_args, matrix_opts_from_args, scale_from_args_or, scale_label, sim_speed,
    simulate_matrix, table3_columns, TraceMode,
};
use hbdc_cpu::SimReport;
use hbdc_workloads::Scale;

/// Throughput summary over one set of finished reports.
struct Speed {
    sims: usize,
    cycles: u64,
    skipped: u64,
    sim_secs: f64,
    rate: f64,
    executed_rate: f64,
}

fn speed_over<'a>(reports: impl IntoIterator<Item = &'a SimReport> + Clone) -> Speed {
    let sims = reports.clone().into_iter().count();
    let (cycles, sim_secs, rate) = sim_speed(reports.clone());
    let skipped: u64 = reports.into_iter().map(|r| r.skipped_cycles).sum();
    let executed_rate = if sim_secs > 0.0 {
        (cycles - skipped) as f64 / sim_secs
    } else {
        0.0
    };
    Speed {
        sims,
        cycles,
        skipped,
        sim_secs,
        rate,
        executed_rate,
    }
}

/// Appends one immutable history snapshot under `results/bench_history/`.
/// The filename carries a monotonically increasing sequence number (and
/// the current git commit when one is resolvable), and an existing file
/// is never overwritten — a collision just advances the sequence.
fn append_history(json: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results/bench_history");
    std::fs::create_dir_all(dir)?;
    let next_seq = std::fs::read_dir(dir)?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let stem = name.to_str()?.strip_suffix(".json")?;
            stem.split('-').next()?.parse::<u64>().ok()
        })
        .max()
        .map_or(1, |n| n + 1);
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "nogit".to_string(), |s| s.trim().to_string());
    for seq in next_seq.. {
        let path = dir.join(format!("{seq:04}-{commit}.json"));
        if !path.exists() {
            std::fs::write(&path, json)?;
            return Ok(path);
        }
    }
    unreachable!("u64 sequence space exhausted")
}

fn main() -> std::process::ExitCode {
    let scale = scale_from_args_or(Scale::Small);
    let benches = benches_from_args();
    let columns = table3_columns();
    let trace_mode = match matrix_opts_from_args().trace_mode {
        TraceMode::Replay => "replay",
        TraceMode::Execute => "execute",
    };

    let start = Instant::now();
    let run = simulate_matrix(&benches, scale, &columns);
    let elapsed = start.elapsed().as_secs_f64();

    // Failed cells contribute no cycles; `sims` counts finished runs so
    // the throughput quotient stays honest on a partial matrix.
    let total = speed_over(run.reports.iter().flatten().flatten());

    // Hand-rolled JSON: the workspace deliberately carries no serializer
    // dependency, and this schema is flat. The aggregate
    // `"cycles_per_sec"` key stays at top-level two-space indent —
    // `scripts/perf_guard.sh` anchors on that to ignore the per-benchmark
    // entries below it.
    // `sim_cpu_secs` covers only the timing loops of the finished cells;
    // the one-shot functional capture pass is reported apart as
    // `capture_secs` so the two phases stay separately interpretable
    // against `harness_wall_secs`.
    let mut json = format!(
        "{{\n  \"name\": \"simulator-throughput\",\n  \"scale\": \"{}\",\n  \"trace_mode\": \"{}\",\n  \"sims\": {},\n  \"simulated_cycles\": {},\n  \"skipped_cycles\": {},\n  \"sim_cpu_secs\": {:.3},\n  \"capture_secs\": {:.3},\n  \"cycles_per_sec\": {:.0},\n  \"executed_cycles_per_sec\": {:.0},\n  \"harness_wall_secs\": {:.3},\n  \"benchmarks\": [",
        scale_label(scale),
        trace_mode,
        total.sims,
        total.cycles,
        total.skipped,
        total.sim_secs,
        run.capture_secs,
        total.rate,
        total.executed_rate,
        elapsed,
    );
    for (bench, row) in benches.iter().zip(&run.reports) {
        let s = speed_over(row.iter().flatten());
        json.push_str(&format!(
            "\n    {{ \"bench\": \"{}\", \"sims\": {}, \"simulated_cycles\": {}, \"skipped_cycles\": {}, \"sim_cpu_secs\": {:.3}, \"cycles_per_sec\": {:.0}, \"executed_cycles_per_sec\": {:.0} }},",
            bench.name(),
            s.sims,
            s.cycles,
            s.skipped,
            s.sim_secs,
            s.rate,
            s.executed_rate,
        ));
    }
    if json.ends_with(',') {
        json.pop();
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    match append_history(&json) {
        Ok(path) => eprintln!("history snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not append bench history: {e}"),
    }
    print!("{json}");
    run.exit_code()
}
