//! Measures simulator throughput (simulated cycles per second of
//! simulator CPU time) over the Table 3 matrix and emits
//! `BENCH_throughput.json`, so the perf trajectory is tracked across PRs.
//!
//! Usage: `throughput [--scale test|small|full] [--bench <name>] [--threads N]
//! [--journal PATH | --resume PATH] [--timeout-secs N]`
//! (default scale: `small`, the standing cross-PR measurement point).

use std::time::Instant;

use hbdc_bench::runner::{
    benches_from_args, scale_from_args_or, scale_label, sim_speed, simulate_matrix, table3_columns,
};
use hbdc_workloads::Scale;

fn main() -> std::process::ExitCode {
    let scale = scale_from_args_or(Scale::Small);
    let benches = benches_from_args();
    let columns = table3_columns();

    let start = Instant::now();
    let run = simulate_matrix(&benches, scale, &columns);
    let elapsed = start.elapsed().as_secs_f64();

    // Failed cells contribute no cycles; `sims` counts finished runs so
    // the throughput quotient stays honest on a partial matrix.
    let sims = run.reports.iter().flatten().flatten().count();
    let (cycles, sim_secs, rate) = sim_speed(run.reports.iter().flatten().flatten());

    // Hand-rolled JSON: the workspace deliberately carries no serializer
    // dependency, and this schema is flat.
    let json = format!(
        "{{\n  \"name\": \"simulator-throughput\",\n  \"scale\": \"{}\",\n  \"sims\": {},\n  \"simulated_cycles\": {},\n  \"sim_cpu_secs\": {:.3},\n  \"cycles_per_sec\": {:.0},\n  \"harness_wall_secs\": {:.3}\n}}\n",
        scale_label(scale),
        sims,
        cycles,
        sim_secs,
        rate,
        elapsed,
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    print!("{json}");
    run.exit_code()
}
