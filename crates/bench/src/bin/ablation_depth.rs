//! **Ablation C — LSQ and store-queue depth** (paper §5.2).
//!
//! "An LBIC implementation requires a memory reorder buffer or a LSQ …
//! performance of the scheme depends on the depth of the LSQ. Deeper LSQs
//! will help to minimize possible performance degradation due to
//! insufficient data requests for combining." This harness sweeps the LSQ
//! depth for a 4x4 LBIC, and separately the per-bank store-queue depth.
//!
//! Usage: `ablation_depth [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, SpeedTally};
use hbdc_core::{CombinePolicy, PortConfig};
use hbdc_cpu::{CpuConfig, Simulator};
use hbdc_mem::HierarchyConfig;
use hbdc_stats::{ipc, Table};
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let lsq_depths = [16usize, 64, 128, 512];
    let sq_depths = [1usize, 2, 8, 32];

    let mut headers = vec!["Program".to_string()];
    headers.extend(lsq_depths.iter().map(|d| format!("LSQ {d}")));
    headers.extend(sq_depths.iter().map(|d| format!("SQ {d}")));
    let mut table = Table::new(headers);
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let program = bench.build(scale);
        let mut cells = vec![bench.name().to_string()];
        for &depth in &lsq_depths {
            let cfg = CpuConfig {
                lsq_size: depth,
                ..CpuConfig::default()
            };
            let r = sim_ok(
                Simulator::new(
                    &program,
                    cfg,
                    HierarchyConfig::default(),
                    PortConfig::lbic(4, 4),
                )
                .run(),
            );
            cells.push(ipc(r.ipc()));
            tally.add(&r);
            eprint!(".");
        }
        for &depth in &sq_depths {
            let r = sim_ok(
                Simulator::new(
                    &program,
                    CpuConfig::default(),
                    HierarchyConfig::default(),
                    PortConfig::Lbic {
                        banks: 4,
                        line_ports: 4,
                        store_queue: depth,
                        policy: CombinePolicy::LeadingRequest,
                    },
                )
                .run(),
            );
            cells.push(ipc(r.ipc()));
            tally.add(&r);
            eprint!(".");
        }
        table.row(cells);
        eprintln!(" {}", bench.name());
    }

    tally.print();
    println!("\nAblation C: 4x4 LBIC sensitivity to LSQ depth and per-bank store-queue depth\n");
    println!("{table}");
}
