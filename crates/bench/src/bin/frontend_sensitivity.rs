//! **Extension — front-end sensitivity** (paper §2.1–§2.2).
//!
//! The paper runs a perfect front end so the data cache is the only
//! bottleneck, while noting that real machines speculate and that IPC
//! "fails to expose the data resource requirements" of imperfect fetch.
//! This harness re-runs the headline comparison (True-4 vs Bank-4 vs
//! LBIC-4x4) under real branch predictors to check that the paper's
//! conclusions survive the relaxed assumption.
//!
//! Usage: `frontend_sensitivity [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, SpeedTally};
use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, FrontEnd, PredictorKind, Simulator};
use hbdc_mem::HierarchyConfig;
use hbdc_stats::{ipc, Table};
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let front_ends = [
        ("perfect", FrontEnd::Perfect),
        (
            "gshare",
            FrontEnd::Predicted {
                kind: PredictorKind::Gshare {
                    entries: 4096,
                    history_bits: 12,
                },
                redirect_penalty: 3,
            },
        ),
        (
            "bimodal",
            FrontEnd::Predicted {
                kind: PredictorKind::Bimodal { entries: 2048 },
                redirect_penalty: 3,
            },
        ),
    ];
    let ports = [
        ("True-4", PortConfig::Ideal { ports: 4 }),
        ("Bank-4", PortConfig::banked(4)),
        ("LBIC-4x4", PortConfig::lbic(4, 4)),
    ];

    let mut headers = vec!["Program".to_string()];
    for (fe, _) in &front_ends {
        for (p, _) in &ports {
            headers.push(format!("{p}/{fe}"));
        }
    }
    headers.push("mispredict %".to_string());
    let mut table = Table::new(headers);
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let program = bench.build(scale);
        let mut cells = vec![bench.name().to_string()];
        let mut misp_rate = 0.0;
        for (_, front_end) in front_ends {
            for (_, port) in ports {
                let mut sim = Simulator::new(
                    &program,
                    CpuConfig {
                        front_end,
                        ..CpuConfig::default()
                    },
                    HierarchyConfig::default(),
                    port,
                );
                let r = sim_ok(sim.run());
                cells.push(ipc(r.ipc()));
                tally.add(&r);
                let (branches, mispredicts) = sim.branch_stats();
                if branches > 0 {
                    misp_rate = mispredicts as f64 / branches as f64;
                }
                eprint!(".");
            }
        }
        cells.push(format!("{:.1}", misp_rate * 100.0));
        table.row(cells);
        eprintln!(" {}", bench.name());
    }

    tally.print();
    println!("\nFront-end sensitivity: port-model comparison under real predictors\n");
    println!("{table}");
    println!(
        "The LBIC's advantage over plain banking should persist under every\n\
         front end; an imperfect front end compresses all IPCs toward the\n\
         fetch bottleneck, exactly why the paper idealized it (§2.1)."
    );
}
