//! Regenerates the paper's **Table 2**: per-benchmark memory
//! characteristics — dynamic instruction count, memory-instruction
//! percentage, store-to-load ratio, and 32KB direct-mapped L1 miss rate —
//! measured on this repository's workload analogs, with the paper's
//! values alongside.
//!
//! Usage: `table2 [--scale test|small|full]`

use hbdc_cpu::Emulator;
use hbdc_stats::Table;
use hbdc_trace::{MemRef, TraceCacheSim};
use hbdc_workloads::all;

use hbdc_bench::runner::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        [
            "Program",
            "Instr Count",
            "Mem %",
            "(paper)",
            "S/L Ratio",
            "(paper)",
            "L1 Miss",
            "(paper)",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    for bench in all() {
        let program = bench.build(scale);
        let mut emu = Emulator::new(&program);
        let mut dl1 = TraceCacheSim::paper_l1();
        let (mut total, mut loads, mut stores) = (0u64, 0u64, 0u64);
        while let Some(di) = emu.step() {
            total += 1;
            if di.inst.is_mem() {
                let r = if di.inst.is_store() {
                    stores += 1;
                    MemRef::store(di.mem_addr())
                } else {
                    loads += 1;
                    MemRef::load(di.mem_addr())
                };
                dl1.access(r);
            }
        }
        let paper = bench.paper();
        table.row(vec![
            bench.name().to_string(),
            total.to_string(),
            format!("{:.1}", (loads + stores) as f64 / total as f64 * 100.0),
            format!("{:.1}", paper.mem_pct),
            format!("{:.2}", stores as f64 / loads as f64),
            format!("{:.2}", paper.store_to_load),
            format!("{:.4}", dl1.stats().miss_rate()),
            format!("{:.4}", paper.miss_rate),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("\nTable 2: benchmark memory characteristics (measured vs paper)\n");
    println!("{table}");
}
