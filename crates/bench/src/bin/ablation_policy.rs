//! **Ablation B — LBIC combining policy** (paper §5.2).
//!
//! The paper's LBIC combines with the *leading request* ("fair and
//! simple") and proposes, as an enhancement, "selecting LSQ logic that
//! attempts to find the largest group of combinable ready accesses",
//! noting its sorting logic "may be costly". This harness measures what
//! that enhancement would actually buy on 4x2 and 4x4 LBICs.
//!
//! Usage: `ablation_policy [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, simulate, SpeedTally};
use hbdc_core::{CombinePolicy, PortConfig};
use hbdc_stats::{ipc, Table};
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let configs = [
        ("4x2 lead", 4u32, 2usize, CombinePolicy::LeadingRequest),
        ("4x2 large", 4, 2, CombinePolicy::LargestGroup),
        ("4x4 lead", 4, 4, CombinePolicy::LeadingRequest),
        ("4x4 large", 4, 4, CombinePolicy::LargestGroup),
    ];

    let mut headers = vec!["Program".to_string()];
    headers.extend(configs.iter().map(|(n, ..)| n.to_string()));
    headers.push("4x4 gain".to_string());
    let mut table = Table::new(headers);
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let mut cells = vec![bench.name().to_string()];
        let mut vals = Vec::new();
        for &(_, banks, line_ports, policy) in &configs {
            let r = sim_ok(simulate(
                &bench,
                scale,
                PortConfig::Lbic {
                    banks,
                    line_ports,
                    store_queue: 8,
                    policy,
                },
            ));
            vals.push(r.ipc());
            cells.push(ipc(r.ipc()));
            tally.add(&r);
            eprint!(".");
        }
        cells.push(format!("{:+.1}%", (vals[3] / vals[2] - 1.0) * 100.0));
        table.row(cells);
        eprintln!(" {}", bench.name());
    }

    tally.print();
    println!("\nAblation B: LBIC combining policy (leading-request vs largest-group)\n");
    println!("{table}");
}
