//! **Ablation D — line vs word interleaving** (paper §3, footnote a and
//! §4).
//!
//! "Word interleaving is efficient for reducing bank conflicts but costly
//! due to the need for tag replication in each bank or multi-porting the
//! tag store." The paper therefore restricts the LBIC to line-interleaved
//! layouts (§5.1). This harness measures what word interleaving would buy
//! a plain banked cache — and shows the LBIC recovering most of that gain
//! while keeping one tag per line.
//!
//! Usage: `ablation_interleave [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, simulate, SpeedTally};
use hbdc_core::{BankedPorts, PortConfig, PortModel};
use hbdc_cpu::{CpuConfig, Simulator};
use hbdc_mem::{BankMapper, HierarchyConfig};
use hbdc_stats::{ipc, Table};
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        [
            "Program",
            "Bank-4 line",
            "Bank-4 word",
            "LBIC-4x2",
            "LBIC-4x4",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    let mut tally = SpeedTally::new();
    for bench in all() {
        let program = bench.build(scale);
        let mut cells = vec![bench.name().to_string()];

        // Line-interleaved 4-bank (the paper's configuration).
        let line = sim_ok(simulate(&bench, scale, PortConfig::banked(4)));
        cells.push(ipc(line.ipc()));
        tally.add(&line);
        eprint!(".");

        // Word-interleaved 4-bank: banks selected on 8-byte words, so a
        // 32-byte line spreads across all four banks. Hardware cost: the
        // tag must be replicated (or multi-ported) per bank — 4x the tag
        // storage here.
        let word_model: Box<dyn PortModel> =
            Box::new(BankedPorts::with_mapper(BankMapper::bit_select(4, 8)));
        let word = sim_ok(
            Simulator::with_port_model(
                &program,
                CpuConfig::default(),
                HierarchyConfig::default(),
                word_model,
            )
            .run(),
        );
        cells.push(ipc(word.ipc()));
        tally.add(&word);
        eprint!(".");

        for lbic in [PortConfig::lbic(4, 2), PortConfig::lbic(4, 4)] {
            let r = sim_ok(simulate(&bench, scale, lbic));
            cells.push(ipc(r.ipc()));
            tally.add(&r);
            eprint!(".");
        }
        table.row(cells);
        eprintln!(" {}", bench.name());
    }

    tally.print();
    println!("\nAblation D: line- vs word-interleaved banking vs LBIC (4 banks)\n");
    println!("{table}");
    println!(
        "Word interleaving needs 4 tag copies per line here; the LBIC keeps a\n\
         single tag per line and recovers same-line bandwidth by combining."
    );
}
