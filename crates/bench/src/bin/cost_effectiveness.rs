//! **Extension — cost-effectiveness** (paper §1, §6, §8).
//!
//! The paper claims the LBIC "scales well toward ideal multiporting with
//! an implementation cost close to traditional multi-banking" and that
//! "a large 2-port replicated cache costs about twice the 2x2 LBIC in
//! die area". This harness combines the measured suite-average IPC with
//! the first-order area model (`hbdc_core::cost`) into IPC-per-area — the
//! figure of merit behind the paper's conclusion.
//!
//! Usage: `cost_effectiveness [--scale test|small|full]`

use hbdc_bench::runner::{scale_from_args, sim_ok, simulate, SpeedTally};
use hbdc_core::{cost, PortConfig};
use hbdc_stats::summary::arithmetic_mean;
use hbdc_stats::Table;
use hbdc_workloads::all;

fn main() {
    let scale = scale_from_args();
    let configs = [
        PortConfig::Ideal { ports: 2 },
        PortConfig::Ideal { ports: 4 },
        PortConfig::Replicated { ports: 2 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(4),
        PortConfig::banked(8),
        PortConfig::lbic(2, 2),
        PortConfig::lbic(4, 2),
        PortConfig::lbic(4, 4),
        PortConfig::lbic(8, 4),
    ];

    let mut table = Table::new(
        [
            "Config", "Area", "Peak B/W", "Mean IPC", "IPC/Area", "B/W/Area",
        ]
        .map(String::from)
        .to_vec(),
    );
    table.numeric();

    let mut tally = SpeedTally::new();
    for config in configs {
        let ipcs: Vec<f64> = all()
            .iter()
            .map(|b| {
                eprint!(".");
                let r = sim_ok(simulate(b, scale, config));
                tally.add(&r);
                r.ipc()
            })
            .collect();
        let mean_ipc = arithmetic_mean(&ipcs);
        let area = cost::area(config);
        let peak = cost::peak_bandwidth(config);
        let label = config.build(32).label();
        eprintln!(" {label}");
        table.row(vec![
            label,
            format!("{area:.2}"),
            peak.to_string(),
            format!("{mean_ipc:.3}"),
            format!("{:.3}", mean_ipc / area),
            format!("{:.2}", peak as f64 / area),
        ]);
    }

    tally.print();
    println!("\nCost-effectiveness: mean IPC and peak bandwidth per unit die area\n");
    println!("{table}");
    println!(
        "Calibration quote (paper §6): Repl-2 area / LBIC-2x2 area = {:.2} (paper: ~2).",
        cost::area(PortConfig::Replicated { ports: 2 }) / cost::area(PortConfig::lbic(2, 2))
    );
}
