//! Multi-process campaign supervision: the journal v2 lease protocol,
//! the flock-coordinated journal state machine, the supervisor loop that
//! drives process-isolated cell workers, and the hidden worker-cell mode
//! those subprocesses run in.
//!
//! # The protocol
//!
//! N independent processes started with `--journal J --shard` drain one
//! campaign cooperatively. The journal is the only shared state: every
//! mutation is a read-modify-write of the whole file under an exclusive
//! advisory lock on `J.lock` (see [`hbdc_snap::lock::FileLock`]),
//! finished with an atomic rename — so the journal is never torn, and a
//! supervisor killed at any instant loses at most its own uncommitted
//! claim.
//!
//! Per cell, the journal records one of:
//!
//! * `ok <idx> <attempts> <report-record>` — terminal. First writer
//!   wins; a second worker finishing the same cell (possible after a
//!   lease steal from a stalled-but-alive owner) discards its result,
//!   which is bit-identical anyway because simulations are
//!   deterministic.
//! * `lease <idx> <pid> <heartbeat-ms> <attempt>` — the cell is being
//!   run by `pid`'s worker. Supervisors refresh their leases'
//!   heartbeats; a lease whose owner is dead ([`pid_alive`]) or whose
//!   heartbeat is older than the TTL is *stolen* (re-leased, same
//!   attempt number) by any supervisor looking for work.
//! * `fail <idx> <attempts> <not-before-ms> <error>` — a concluded,
//!   failed attempt. Claimable again once the wall clock passes
//!   `not-before` (exponential backoff), until the attempt budget is
//!   exhausted.
//! * `quar <idx> <attempts> <error>` — quarantined: the cell failed
//!   `--max-attempts` times (or timed out, which is never retried — a
//!   hung model hangs again). The campaign completes around it and
//!   reports it; a later resume with a larger `--max-attempts` may try
//!   again.
//!
//! Each claimed cell runs in a **child subprocess**: the supervisor
//! re-executes its own binary with the original arguments plus hidden
//! `--worker-cell`/`--worker-out`/`--worker-matrix` flags, and the
//! worker branch in `simulate_matrix_opts` runs exactly that one cell
//! and writes its outcome to the out file (atomically, so a kill
//! mid-write reads as "no result"). A SIGKILL, abort, or OOM kill in a
//! cell therefore costs one attempt of one cell — never the supervisor.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use hbdc_core::PortConfig;
use hbdc_cpu::SimReport;
use hbdc_snap::interrupt;
use hbdc_snap::lock::{pid_alive, send_signal, FileLock, SIGINT};
use hbdc_snap::write_atomic;
use hbdc_workloads::{Benchmark, Scale};

use crate::runner::{
    capture_traces, cell_snap_path, matrix_hash, run_cell, CellJob, JobFailure, JobOutcome,
    MatrixOpts, MatrixRun, TraceMode, WorkerSpec,
};

/// First line of every matrix run journal this version writes.
pub(crate) const JOURNAL_HEADER: &str = "hbdc-journal v2";

/// Previous journal format, still accepted on load (its `fail` lines
/// carry no backoff deadline and it has no `lease`/`quar` records).
pub(crate) const JOURNAL_HEADER_V1: &str = "hbdc-journal v1";

/// Default attempt budget before a cell is quarantined.
pub(crate) const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Default lease heartbeat TTL before other supervisors steal the cell.
pub(crate) const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(10);

/// Base retry backoff after a failed attempt (doubles per attempt, capped
/// at 16x). Overridable via `HBDC_RETRY_BACKOFF_MS` so the chaos harness
/// can keep its rounds short.
const DEFAULT_BACKOFF_MS: u64 = 500;

/// One cell's standing in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CellState {
    /// Never attempted (or released by an interrupted supervisor).
    Empty,
    /// Being run by `pid`'s worker subprocess.
    Lease {
        /// Supervisor process that claimed the cell.
        pid: u32,
        /// Last heartbeat, in milliseconds since the Unix epoch.
        heartbeat_ms: u64,
        /// Which attempt this lease is running (1-based).
        attempt: u32,
    },
    /// Completed; `record` is the [`SimReport::to_record`] line.
    Ok { attempts: u32, record: String },
    /// A concluded failed attempt, claimable again after `not_before_ms`.
    Fail {
        attempts: u32,
        not_before_ms: u64,
        error: String,
    },
    /// Failed out of its attempt budget; terminal for this campaign.
    Quarantined { attempts: u32, error: String },
}

impl CellState {
    fn is_terminal(&self) -> bool {
        matches!(self, CellState::Ok { .. } | CellState::Quarantined { .. })
    }
}

/// The whole journal, decoded: fingerprint plus one [`CellState`] per
/// matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JournalState {
    pub(crate) hash: u64,
    pub(crate) cells: Vec<CellState>,
}

impl JournalState {
    pub(crate) fn fresh(hash: u64, total: usize) -> Self {
        Self {
            hash,
            cells: vec![CellState::Empty; total],
        }
    }

    /// Records a completed cell. First `ok` wins: returns `false` (and
    /// changes nothing) if the cell is already `ok` — the caller's
    /// duplicate result is discarded.
    pub(crate) fn set_ok(&mut self, idx: usize, attempts: u32, record: String) -> bool {
        if matches!(self.cells[idx], CellState::Ok { .. }) {
            return false;
        }
        self.cells[idx] = CellState::Ok { attempts, record };
        true
    }

    /// Records a concluded failed attempt; quarantines the cell instead
    /// when the attempt budget is spent. Returns `true` if this
    /// transition quarantined the cell. A cell already `ok` (another
    /// supervisor finished it first) is left alone.
    pub(crate) fn set_fail(
        &mut self,
        idx: usize,
        attempts: u32,
        not_before_ms: u64,
        error: String,
        max_attempts: u32,
    ) -> bool {
        if matches!(self.cells[idx], CellState::Ok { .. }) {
            return false;
        }
        if attempts >= max_attempts {
            self.cells[idx] = CellState::Quarantined { attempts, error };
            true
        } else {
            self.cells[idx] = CellState::Fail {
                attempts,
                not_before_ms,
                error,
            };
            false
        }
    }

    /// Quarantines a cell outright (timeouts: never retried).
    pub(crate) fn set_quarantined(&mut self, idx: usize, attempts: u32, error: String) {
        if matches!(self.cells[idx], CellState::Ok { .. }) {
            return;
        }
        self.cells[idx] = CellState::Quarantined { attempts, error };
    }

    /// Releases a lease this process holds (interrupt wind-down), so
    /// another supervisor — or a resume — can claim the cell at once
    /// instead of waiting out the TTL.
    pub(crate) fn release_lease(&mut self, idx: usize, pid: u32) {
        if matches!(self.cells[idx], CellState::Lease { pid: p, .. } if p == pid) {
            self.cells[idx] = CellState::Empty;
        }
    }

    /// Refreshes the heartbeat on every lease `pid` holds over `running`.
    pub(crate) fn heartbeat(&mut self, pid: u32, now_ms: u64, running: &[usize]) {
        for &idx in running {
            if let CellState::Lease {
                pid: p,
                heartbeat_ms,
                ..
            } = &mut self.cells[idx]
            {
                if *p == pid {
                    *heartbeat_ms = now_ms;
                }
            }
        }
    }

    /// Whether every cell has reached a terminal state (`ok` or
    /// quarantined) — the campaign-complete condition.
    pub(crate) fn all_terminal(&self) -> bool {
        self.cells.iter().all(CellState::is_terminal)
    }
}

/// Everything [`claim_cell`] needs to judge eligibility, with liveness
/// injected so tests can run the state machine deterministically.
pub(crate) struct ClaimCtx<'a> {
    pub(crate) now_ms: u64,
    pub(crate) pid: u32,
    pub(crate) lease_ttl_ms: u64,
    pub(crate) max_attempts: u32,
    /// Cells this supervisor is actively running (their leases are ours
    /// and live; never reclaim them).
    pub(crate) running: &'a [usize],
    pub(crate) is_alive: &'a dyn Fn(u32) -> bool,
}

/// Claims the lowest-indexed eligible cell: writes a lease for it into
/// `state` and returns `(cell index, attempt number)`. Eligible are
/// never-attempted cells, failed cells past their backoff deadline with
/// attempts to spare, quarantined cells whose budget was raised, and
/// leases whose owner is dead or heartbeat-expired (stolen at the same
/// attempt number — the attempt never concluded).
pub(crate) fn claim_cell(state: &mut JournalState, ctx: &ClaimCtx<'_>) -> Option<(usize, u32)> {
    for idx in 0..state.cells.len() {
        let attempt = match &state.cells[idx] {
            CellState::Empty => 1,
            CellState::Fail {
                attempts,
                not_before_ms,
                ..
            } if *attempts < ctx.max_attempts && ctx.now_ms >= *not_before_ms => attempts + 1,
            // A resume with a raised --max-attempts gives quarantined
            // cells the extra attempts.
            CellState::Quarantined { attempts, .. } if *attempts < ctx.max_attempts => attempts + 1,
            CellState::Lease { pid, attempt, .. }
                if *pid == ctx.pid && !ctx.running.contains(&idx) =>
            {
                // Our own pid but not our own child: a stale lease from a
                // previous incarnation of this pid. Reclaim it.
                *attempt
            }
            CellState::Lease {
                pid,
                heartbeat_ms,
                attempt,
            } if *pid != ctx.pid
                && (!(ctx.is_alive)(*pid)
                    || ctx.now_ms >= heartbeat_ms.saturating_add(ctx.lease_ttl_ms)) =>
            {
                // Steal: the owner died, or is wedged/stopped and let its
                // heartbeat lapse. The attempt never reported an outcome,
                // so it keeps its number.
                *attempt
            }
            _ => continue,
        };
        state.cells[idx] = CellState::Lease {
            pid: ctx.pid,
            heartbeat_ms: ctx.now_ms,
            attempt,
        };
        return Some((idx, attempt));
    }
    None
}

/// Folds a failure message onto one journal line (`\` / newline / tab
/// escaped); [`unescape_error`] inverts it.
pub(crate) fn escape_error(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

/// Inverse of [`escape_error`]. Lenient on unknown escapes (kept
/// verbatim) so a hand-edited journal still loads.
pub(crate) fn unescape_error(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Renders the journal file image: header, fingerprint, cell count, one
/// line per non-empty cell.
pub(crate) fn render_journal(state: &JournalState) -> String {
    let mut out = format!(
        "{JOURNAL_HEADER}\nmatrix {:016x}\ncells {}\n",
        state.hash,
        state.cells.len()
    );
    for (idx, cell) in state.cells.iter().enumerate() {
        match cell {
            CellState::Empty => {}
            CellState::Lease {
                pid,
                heartbeat_ms,
                attempt,
            } => out.push_str(&format!("lease {idx} {pid} {heartbeat_ms} {attempt}\n")),
            CellState::Ok { attempts, record } => {
                out.push_str(&format!("ok {idx} {attempts} {record}\n"));
            }
            CellState::Fail {
                attempts,
                not_before_ms,
                error,
            } => out.push_str(&format!(
                "fail {idx} {attempts} {not_before_ms} {}\n",
                escape_error(error)
            )),
            CellState::Quarantined { attempts, error } => {
                out.push_str(&format!("quar {idx} {attempts} {}\n", escape_error(error)));
            }
        }
    }
    out
}

/// Parses and validates a journal image against this run's matrix: the
/// header, fingerprint, and cell count must all match. Corruption is
/// handled asymmetrically: a malformed **final** line is dropped with a
/// warning (the cell re-runs — a half-written tail must not brick the
/// campaign), while a malformed line anywhere else is an error, because
/// silently skipping interior records could resurrect completed work.
/// A duplicate record for a cell keeps the first and warns.
pub(crate) fn parse_journal(
    text: &str,
    path: &Path,
    hash: u64,
    total: usize,
) -> Result<JournalState, String> {
    let mut lines = text.lines();
    let header = lines.next();
    let v1 = match header {
        Some(JOURNAL_HEADER) => false,
        Some(JOURNAL_HEADER_V1) => true,
        Some(other) => {
            return Err(format!(
                "{}: not a matrix journal (first line `{other}`, expected `{JOURNAL_HEADER}`)",
                path.display()
            ))
        }
        None => return Err(format!("{}: journal is empty", path.display())),
    };
    let found_hash = lines
        .next()
        .and_then(|l| l.strip_prefix("matrix "))
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| format!("{}: malformed `matrix` header line", path.display()))?;
    if found_hash != hash {
        return Err(format!(
            "{}: journal fingerprint {found_hash:016x} does not match this run's {hash:016x} \
             (different benchmarks, scale, port configs, or machine config); refusing to resume",
            path.display()
        ));
    }
    let cells = lines
        .next()
        .and_then(|l| l.strip_prefix("cells "))
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| format!("{}: malformed `cells` header line", path.display()))?;
    if cells != total {
        return Err(format!(
            "{}: journal covers {cells} cells, this run has {total}",
            path.display()
        ));
    }

    let body: Vec<&str> = lines.collect();
    let last_content = body.iter().rposition(|l| !l.is_empty());
    let mut state = JournalState::fresh(hash, total);
    for (lineno, line) in body.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_record_line(line, v1, total) {
            Ok((idx, cell)) => {
                if state.cells[idx] != CellState::Empty {
                    eprintln!(
                        "warning: {}:{}: duplicate record for cell {idx}; keeping the first",
                        path.display(),
                        lineno + 4
                    );
                    continue;
                }
                state.cells[idx] = cell;
            }
            Err(what) => {
                let msg = format!("{}:{}: {what}: `{line}`", path.display(), lineno + 4);
                if Some(lineno) == last_content {
                    eprintln!("warning: {msg} (torn final line dropped; the cell will re-run)");
                    continue;
                }
                return Err(msg);
            }
        }
    }
    Ok(state)
}

/// Parses one journal body line into `(cell index, state)`. Errors are
/// short descriptions; the caller adds file/line context.
fn parse_record_line(line: &str, v1: bool, total: usize) -> Result<(usize, CellState), String> {
    let mut parts = line.splitn(2, ' ');
    let tag = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("");
    let mut fields = rest.splitn(
        match tag {
            "ok" | "quar" => 3,
            "fail" => {
                if v1 {
                    3
                } else {
                    4
                }
            }
            "lease" => 4,
            _ => 2,
        },
        ' ',
    );
    let mut num = |what: &'static str| -> Result<u64, String> {
        fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| what.to_string())
    };
    let idx = num("malformed cell index")? as usize;
    if idx >= total {
        return Err("cell index out of range".to_string());
    }
    let cell = match tag {
        "ok" => {
            let attempts = num("malformed attempt count")? as u32;
            let record = fields.next().unwrap_or("").to_string();
            // Validate eagerly so a bit-flipped record is caught at load,
            // where the torn-final-line policy can deal with it, rather
            // than when the table is rendered.
            SimReport::from_record(&record)?;
            CellState::Ok { attempts, record }
        }
        "fail" => {
            let attempts = num("malformed attempt count")? as u32;
            let not_before_ms = if v1 {
                0
            } else {
                num("malformed fail deadline")?
            };
            let error = unescape_error(fields.next().unwrap_or(""));
            CellState::Fail {
                attempts,
                not_before_ms,
                error,
            }
        }
        "quar" => {
            let attempts = num("malformed attempt count")? as u32;
            let error = unescape_error(fields.next().unwrap_or(""));
            CellState::Quarantined { attempts, error }
        }
        "lease" => {
            let pid = num("malformed lease pid")? as u32;
            let heartbeat_ms = num("malformed lease heartbeat")?;
            let attempt = num("malformed attempt count")? as u32;
            CellState::Lease {
                pid,
                heartbeat_ms,
                attempt,
            }
        }
        _ => return Err("unknown record tag".to_string()),
    };
    Ok((idx, cell))
}

/// The lock-file sibling guarding a journal's read-modify-write cycle.
pub(crate) fn lock_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_owned();
    name.push(".lock");
    PathBuf::from(name)
}

/// Milliseconds since the Unix epoch (the lease clock).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One read-modify-write cycle on the journal under the advisory lock:
/// load (or initialize) the on-disk state, apply `f`, write the result
/// back atomically. This is the only way shard supervisors touch the
/// journal, so every mutation observes every other process's latest
/// records.
pub(crate) fn locked_update<T>(
    path: &Path,
    hash: u64,
    total: usize,
    f: impl FnOnce(&mut JournalState) -> T,
) -> Result<T, String> {
    let _lock = FileLock::exclusive(&lock_path(path))
        .map_err(|e| format!("journal lock {}: {e}", lock_path(path).display()))?;
    let mut state = match std::fs::read_to_string(path) {
        Ok(text) => parse_journal(&text, path, hash, total)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => JournalState::fresh(hash, total),
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let out = f(&mut state);
    write_atomic(path, render_journal(&state).as_bytes())
        .map_err(|e| format!("journal {}: {e}", path.display()))?;
    Ok(out)
}

/// Retry backoff before attempt `attempts + 1`: doubles per concluded
/// attempt, capped at 16x the base.
fn backoff_ms(attempts: u32) -> u64 {
    let base = std::env::var("HBDC_RETRY_BACKOFF_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BACKOFF_MS);
    base.saturating_mul(1u64 << (attempts.saturating_sub(1)).min(4))
}

/// The test seam the chaos harness uses to manufacture deterministic
/// cell failures: `HBDC_CHAOS_FAIL_CELLS="3,17"` makes the worker for
/// those cells fail every attempt. Only consulted in worker mode.
fn chaos_fail_requested(idx: usize) -> bool {
    std::env::var("HBDC_CHAOS_FAIL_CELLS")
        .map(|v| v.split(',').any(|t| t.trim().parse::<usize>() == Ok(idx)))
        .unwrap_or(false)
}

/// Companion seam: `HBDC_CHAOS_GARBLE_CELLS="2,5"` makes the worker for
/// those cells write a *torn* result file (half an `ok` record) and exit
/// cleanly, exercising the supervisor's [`OutFileError::Garbled`]
/// classification end to end. Only consulted in worker mode.
fn chaos_garble_requested(idx: usize) -> bool {
    std::env::var("HBDC_CHAOS_GARBLE_CELLS")
        .map(|v| v.split(',').any(|t| t.trim().parse::<usize>() == Ok(idx)))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Worker-cell mode
// ---------------------------------------------------------------------

/// What a worker subprocess reports back through its out file.
#[derive(Debug)]
enum WorkerOut {
    Ok(String),
    Fail(String),
    Interrupted,
}

/// Why a worker's out file produced no usable result. The two cases are
/// operationally distinct — a [`Missing`](Self::Missing) file means the
/// worker never completed its atomic result write (SIGKILL, OOM, crash),
/// while [`Garbled`](Self::Garbled) means a write landed but its
/// contents do not parse (torn write under a dying filesystem, stray
/// process scribbling on the path) — but both charge exactly one attempt
/// against the cell: the supervisor retries with backoff and quarantines
/// at the attempt budget, never crashes.
#[derive(Debug, PartialEq, Eq)]
enum OutFileError {
    /// No out file on disk.
    Missing,
    /// An out file exists but is empty, truncated, or corrupt; the
    /// payload explains what failed to parse.
    Garbled(String),
}

/// Parses a worker out file, classifying every non-result as a typed
/// [`OutFileError`] so the supervisor's retry bookkeeping can name what
/// actually happened.
fn parse_worker_out(path: &Path) -> Result<WorkerOut, OutFileError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(OutFileError::Missing),
        Err(e) => return Err(OutFileError::Garbled(format!("unreadable: {e}"))),
    };
    let Some(line) = text.lines().next().filter(|l| !l.is_empty()) else {
        return Err(OutFileError::Garbled("empty result file".into()));
    };
    if let Some(record) = line.strip_prefix("ok ") {
        // Validate before the record enters the journal: a truncated
        // record must cost this attempt, not poison the campaign.
        return match SimReport::from_record(record) {
            Ok(_) => Ok(WorkerOut::Ok(record.to_string())),
            Err(e) => Err(OutFileError::Garbled(format!("bad ok record: {e}"))),
        };
    }
    if let Some(err) = line.strip_prefix("fail ") {
        return Ok(WorkerOut::Fail(unescape_error(err)));
    }
    if line == "int" {
        return Ok(WorkerOut::Interrupted);
    }
    let head: String = line.chars().take(40).collect();
    Err(OutFileError::Garbled(format!(
        "unrecognized result line starting `{head}`"
    )))
}

/// Runs exactly one matrix cell in-process and reports through the out
/// file — the body of the hidden `--worker-cell` mode every experiment
/// binary (and `hbdc-sim campaign`) reaches through
/// `simulate_matrix_opts`. Never returns: the process exits with 0
/// (done), 1 (failed), or 130 (checkpointed on SIGINT).
pub(crate) fn run_worker(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
    opts: &MatrixOpts,
    spec: &WorkerSpec,
) -> ! {
    let finish = |line: String, code: i32| -> ! {
        if let Err(e) = write_atomic(&spec.out, line.as_bytes()) {
            eprintln!("worker: cannot write result {}: {e}", spec.out.display());
        }
        std::process::exit(code);
    };
    let fail = |msg: &str| -> ! { finish(format!("fail {}", escape_error(msg)), 1) };

    let hash = matrix_hash(benches, scale, configs, &opts.cpu_cfg);
    if hash != spec.matrix {
        fail(&format!(
            "worker matrix fingerprint {hash:016x} does not match the supervisor's {:016x} \
             (binary rebuilt mid-campaign?)",
            spec.matrix
        ));
    }
    let total = benches.len() * configs.len();
    if spec.cell >= total {
        fail(&format!(
            "worker cell {} out of range ({total} cells)",
            spec.cell
        ));
    }
    if chaos_fail_requested(spec.cell) {
        fail("chaos: injected worker failure (HBDC_CHAOS_FAIL_CELLS)");
    }
    if chaos_garble_requested(spec.cell) {
        // A torn write with a clean exit status: the supervisor must not
        // trust the exit code, classify the file as garbled, and charge
        // the attempt.
        finish("ok 12\t34".to_string(), 0);
    }
    interrupt::install();

    let bench_idx = spec.cell / configs.len();
    let bench = &benches[bench_idx];
    let (_, port) = &configs[spec.cell % configs.len()];
    // Workers self-serve traces from the shared on-disk corpus (capturing
    // — and healing corrupt entries — on demand); there is no supervisor
    // capture phase in shard mode.
    let trace = match opts.trace_mode {
        TraceMode::Execute => None,
        TraceMode::Replay => {
            let mut wanted = vec![false; benches.len()];
            wanted[bench_idx] = true;
            let (mut traces, _) = capture_traces(
                benches,
                &wanted,
                scale,
                &opts.cpu_cfg,
                opts.trace_cache.as_deref(),
            );
            traces.swap_remove(bench_idx)
        }
    };
    let ckpt = opts
        .journal
        .as_deref()
        .map(|j| cell_snap_path(j, spec.cell));
    let outcome = run_cell(CellJob {
        bench,
        trace: trace.as_ref(),
        scale,
        port: *port,
        cpu_cfg: opts.cpu_cfg,
        // The supervisor enforces the wall-clock budget from outside;
        // the worker only needs to poll the SIGINT latch.
        timeout: None,
        checkpoint: ckpt.as_deref(),
        resume: true,
    });
    match outcome {
        JobOutcome::Done(r) => finish(format!("ok {}", r.to_record()), 0),
        JobOutcome::Failed(e) => fail(&e),
        JobOutcome::Interrupted => finish("int".to_string(), 130),
    }
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// Shard-mode knobs, resolved from [`MatrixOpts`] and `argv`.
pub(crate) struct ShardParams {
    pub(crate) journal: PathBuf,
    pub(crate) max_attempts: u32,
    pub(crate) lease_ttl: Duration,
    pub(crate) timeout: Option<Duration>,
    /// Concurrent worker subprocesses this supervisor runs.
    pub(crate) threads: usize,
}

/// A worker subprocess in flight.
struct Running {
    idx: usize,
    attempt: u32,
    child: Child,
    out: PathBuf,
    started: Instant,
    signalled: bool,
}

/// The supervisor argv for a cell worker: this binary, the original
/// arguments (minus any stale worker flags), plus the hidden worker
/// triple. Reusing the caller's own argv is what lets the worker rebuild
/// the identical matrix — benchmarks, scale, configs, machine config —
/// without a separate job-description format.
fn worker_command(cell: usize, out: &Path, hash: u64) -> Result<Command, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate our own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if matches!(
            a.as_str(),
            "--worker-cell" | "--worker-out" | "--worker-matrix"
        ) {
            let _ = args.next();
            continue;
        }
        cmd.arg(a);
    }
    cmd.arg("--worker-cell").arg(cell.to_string());
    cmd.arg("--worker-out").arg(out);
    cmd.arg("--worker-matrix").arg(format!("{hash:016x}"));
    // The worker branch exits before any table is printed, but a clean
    // null stdout keeps the contract obvious; stderr (capture warnings,
    // eviction notices) flows through to the supervisor's.
    cmd.stdout(Stdio::null());
    Ok(cmd)
}

/// Drains a campaign as one of N cooperating shard processes; see the
/// module docs for the protocol. Returns when every cell is terminal
/// (`ok` or quarantined) in the journal — including cells other
/// processes ran — or when interrupted.
pub(crate) fn supervise(
    benches: &[Benchmark],
    configs: &[(String, PortConfig)],
    hash: u64,
    params: &ShardParams,
) -> Result<MatrixRun, String> {
    use std::io::Write;

    let total = benches.len() * configs.len();
    let pid = std::process::id();
    let ttl_ms = params.lease_ttl.as_millis() as u64;
    let hb_interval =
        (params.lease_ttl / 4).clamp(Duration::from_millis(250), Duration::from_secs(2));
    let journal = &params.journal;
    interrupt::install();

    // Create (or validate) the journal up front so a fingerprint
    // mismatch is a usage error before any worker spawns.
    locked_update(journal, hash, total, |_| ())?;

    let mut running: Vec<Running> = Vec::new();
    let mut out_seq = 0u64;
    let mut last_hb = Instant::now();
    let is_alive = |p: u32| pid_alive(p);

    loop {
        let interrupted = interrupt::requested();

        // Reap finished workers and record their outcomes.
        let mut i = 0;
        while i < running.len() {
            let Some(status) = running[i]
                .child
                .try_wait()
                .map_err(|e| format!("waiting for worker: {e}"))?
            else {
                i += 1;
                continue;
            };
            let r = running.swap_remove(i);
            let outcome = parse_worker_out(&r.out);
            let _ = std::fs::remove_file(&r.out);
            let mark = match outcome {
                Ok(WorkerOut::Ok(record)) => {
                    locked_update(journal, hash, total, |s| {
                        if s.set_ok(r.idx, r.attempt, record) {
                            // The cell is on the books; its in-flight
                            // checkpoint (if any) is now stale.
                            let _ = std::fs::remove_file(cell_snap_path(journal, r.idx));
                        }
                    })?;
                    "."
                }
                Ok(WorkerOut::Interrupted) => {
                    // The worker checkpointed; hand the cell back so a
                    // resume (or a surviving shard) picks it up at once.
                    locked_update(journal, hash, total, |s| s.release_lease(r.idx, pid))?;
                    "!"
                }
                Ok(WorkerOut::Fail(e)) => {
                    let deadline = now_ms().saturating_add(backoff_ms(r.attempt));
                    let quarantined = locked_update(journal, hash, total, |s| {
                        s.set_fail(r.idx, r.attempt, deadline, e, params.max_attempts)
                    })?;
                    if quarantined {
                        "Q"
                    } else {
                        "x"
                    }
                }
                Err(kind) => {
                    // No usable result: the worker died before its atomic
                    // write landed (Missing) or the out file does not
                    // parse (Garbled). Either way this attempt is
                    // charged; the cell retries with backoff and
                    // quarantines at the attempt budget.
                    let e = match kind {
                        OutFileError::Missing => {
                            format!("worker for cell {} died without a result ({status})", r.idx)
                        }
                        OutFileError::Garbled(why) => format!(
                            "worker for cell {} left a garbled result file: {why} ({status})",
                            r.idx
                        ),
                    };
                    let deadline = now_ms().saturating_add(backoff_ms(r.attempt));
                    let quarantined = locked_update(journal, hash, total, |s| {
                        s.set_fail(r.idx, r.attempt, deadline, e, params.max_attempts)
                    })?;
                    if quarantined {
                        "Q"
                    } else {
                        "x"
                    }
                }
            };
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "{mark}");
        }

        // Enforce per-cell wall-clock budgets: a timed-out worker is
        // killed and its cell quarantined (never retried: a hung model
        // hangs again).
        if let Some(budget) = params.timeout {
            let mut i = 0;
            while i < running.len() {
                if running[i].started.elapsed() < budget {
                    i += 1;
                    continue;
                }
                let mut r = running.swap_remove(i);
                let _ = r.child.kill();
                let _ = r.child.wait();
                let _ = std::fs::remove_file(&r.out);
                locked_update(journal, hash, total, |s| {
                    s.set_quarantined(
                        r.idx,
                        r.attempt,
                        format!(
                            "timeout: exceeded the {:.3}s wall-clock budget",
                            budget.as_secs_f64()
                        ),
                    )
                })?;
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "Q");
            }
        }

        if interrupted {
            // Ask every in-flight worker to checkpoint; the reap pass
            // above records their `int` (or late `ok`) outcomes.
            for r in &mut running {
                if !r.signalled {
                    send_signal(r.child.id(), SIGINT);
                    r.signalled = true;
                }
            }
            if running.is_empty() {
                break;
            }
        } else {
            // Refresh our lease heartbeats.
            if last_hb.elapsed() >= hb_interval && !running.is_empty() {
                let idxs: Vec<usize> = running.iter().map(|r| r.idx).collect();
                let now = now_ms();
                locked_update(journal, hash, total, |s| s.heartbeat(pid, now, &idxs))?;
                last_hb = Instant::now();
            }

            // Claim and spawn up to the concurrency cap.
            while running.len() < params.threads {
                let idxs: Vec<usize> = running.iter().map(|r| r.idx).collect();
                let now = now_ms();
                let claimed = locked_update(journal, hash, total, |s| {
                    claim_cell(
                        s,
                        &ClaimCtx {
                            now_ms: now,
                            pid,
                            lease_ttl_ms: ttl_ms,
                            max_attempts: params.max_attempts,
                            running: &idxs,
                            is_alive: &is_alive,
                        },
                    )
                })?;
                let Some((idx, attempt)) = claimed else { break };
                out_seq += 1;
                let mut out = journal.as_os_str().to_owned();
                out.push(format!(".w{idx}.{pid}.{out_seq}.out"));
                let out = PathBuf::from(out);
                let _ = std::fs::remove_file(&out);
                match worker_command(idx, &out, hash)
                    .and_then(|mut c| c.spawn().map_err(|e| format!("spawn worker: {e}")))
                {
                    Ok(child) => running.push(Running {
                        idx,
                        attempt,
                        child,
                        out,
                        started: Instant::now(),
                        signalled: false,
                    }),
                    Err(e) => {
                        // Can't start workers at all: record the attempt
                        // so the cell isn't wedged under our lease.
                        let deadline = now_ms().saturating_add(backoff_ms(attempt));
                        locked_update(journal, hash, total, |s| {
                            s.set_fail(idx, attempt, deadline, e, params.max_attempts)
                        })?;
                        break;
                    }
                }
            }

            if running.is_empty() {
                // Nothing claimable right now. Done if the whole campaign
                // is terminal; otherwise other shards hold live leases or
                // failed cells are backing off — wait for them.
                let done = locked_update(journal, hash, total, |s| s.all_terminal())?;
                if done {
                    break;
                }
            }
        }

        std::thread::sleep(Duration::from_millis(50));
    }
    {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
    }

    let interrupted = interrupt::requested();
    if interrupted {
        eprintln!(
            "interrupted: leases released and journal flushed; \
             rerun the same command to continue {}",
            journal.display()
        );
    }

    // Final assembly straight from the journal, so every shard reports
    // the complete campaign — including cells its peers ran.
    let state = locked_update(journal, hash, total, |s| s.clone())?;
    let mut reports: Vec<Vec<Option<SimReport>>> = Vec::with_capacity(benches.len());
    let mut failures = Vec::new();
    let mut quarantined = Vec::new();
    for (b, bench) in benches.iter().enumerate() {
        let mut row = Vec::with_capacity(configs.len());
        for (c, (label, _)) in configs.iter().enumerate() {
            let idx = b * configs.len() + c;
            match &state.cells[idx] {
                CellState::Ok { record, .. } => {
                    row.push(SimReport::from_record(record).ok());
                    let _ = std::fs::remove_file(cell_snap_path(journal, idx));
                }
                CellState::Quarantined { attempts, error } => {
                    row.push(None);
                    quarantined.push(JobFailure {
                        bench: bench.name().to_string(),
                        config: label.clone(),
                        attempts: *attempts,
                        error: error.clone(),
                    });
                }
                CellState::Fail {
                    attempts, error, ..
                } if !interrupted => {
                    row.push(None);
                    failures.push(JobFailure {
                        bench: bench.name().to_string(),
                        config: label.clone(),
                        attempts: *attempts,
                        error: error.clone(),
                    });
                }
                _ => row.push(None),
            }
        }
        reports.push(row);
    }
    let run = MatrixRun {
        reports,
        failures,
        quarantined,
        interrupted,
        capture_secs: 0.0,
    };
    crate::runner::print_sim_speed(run.reports.iter().flatten().flatten());
    run.print_failure_summary();
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> String {
        "1000\t250\t200\t100\t20\t300\t30\t5\t30\t3\t400\t380\t10\t4\t0\tIdeal-4".to_string()
    }

    fn path() -> PathBuf {
        PathBuf::from("test.journal")
    }

    #[test]
    fn worker_out_files_classify_missing_vs_garbled() {
        let dir = std::env::temp_dir().join(format!("hbdc-workerout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("cell.out");

        // Missing file: the worker never finished its atomic write.
        let _ = std::fs::remove_file(&p);
        assert_eq!(parse_worker_out(&p).unwrap_err(), OutFileError::Missing);

        // Empty, torn, scribbled, and non-UTF-8 files are all Garbled —
        // typed, with a reason, never a panic or a silent Ok.
        std::fs::write(&p, "").unwrap();
        assert!(matches!(
            parse_worker_out(&p),
            Err(OutFileError::Garbled(w)) if w.contains("empty")
        ));
        std::fs::write(&p, "ok 12\t34").unwrap();
        assert!(matches!(
            parse_worker_out(&p),
            Err(OutFileError::Garbled(w)) if w.contains("bad ok record")
        ));
        std::fs::write(&p, "lease 3 999").unwrap();
        assert!(matches!(
            parse_worker_out(&p),
            Err(OutFileError::Garbled(w)) if w.contains("unrecognized")
        ));
        std::fs::write(&p, [0xffu8, 0xfe, 0x00]).unwrap();
        assert!(matches!(
            parse_worker_out(&p),
            Err(OutFileError::Garbled(w)) if w.contains("unreadable")
        ));

        // The three legitimate shapes still parse.
        std::fs::write(&p, format!("ok {}\n", sample_record())).unwrap();
        assert!(matches!(parse_worker_out(&p), Ok(WorkerOut::Ok(_))));
        std::fs::write(&p, "fail boom\n").unwrap();
        assert!(matches!(
            parse_worker_out(&p),
            Ok(WorkerOut::Fail(e)) if e == "boom"
        ));
        std::fs::write(&p, "int\n").unwrap();
        assert!(matches!(parse_worker_out(&p), Ok(WorkerOut::Interrupted)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_out_files_charge_one_attempt_toward_quarantine() {
        // The journal-side consequence of a Garbled classification: each
        // bad result costs exactly one attempt, and the cell quarantines
        // once the budget is spent — identical bookkeeping to a worker
        // that reported `fail`.
        let mut s = JournalState::fresh(0x99, 1);
        let msg = "worker for cell 0 left a garbled result file: bad ok record".to_string();
        assert!(
            !s.set_fail(0, 1, 0, msg.clone(), 2),
            "first attempt retries"
        );
        assert!(matches!(&s.cells[0], CellState::Fail { attempts: 1, .. }));
        assert!(s.set_fail(0, 2, 0, msg, 2), "budget spent: quarantined");
        assert!(matches!(&s.cells[0], CellState::Quarantined { .. }));
    }

    #[test]
    fn render_parse_roundtrip_all_states() {
        let mut s = JournalState::fresh(0xabcd, 5);
        assert!(s.set_ok(0, 2, sample_record()));
        assert!(!s.set_fail(1, 1, 123, "bank conflict\tweird\nerror \\ stuff".into(), 3));
        s.set_quarantined(2, 3, "gave up".into());
        s.cells[3] = CellState::Lease {
            pid: 4242,
            heartbeat_ms: 99999,
            attempt: 2,
        };
        let text = render_journal(&s);
        let back = parse_journal(&text, &path(), 0xabcd, 5).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn first_ok_wins_and_duplicates_are_ignored() {
        let mut s = JournalState::fresh(1, 2);
        assert!(s.set_ok(0, 1, sample_record()));
        assert!(!s.set_ok(0, 9, "stomped".into()), "second ok is discarded");
        assert!(matches!(&s.cells[0], CellState::Ok { attempts: 1, .. }));
        // A failure racing a completed cell is also discarded.
        assert!(!s.set_fail(0, 2, 0, "late failure".into(), 2));
        assert!(matches!(&s.cells[0], CellState::Ok { .. }));

        // Duplicate *lines* in the file: first wins.
        let text = format!(
            "{JOURNAL_HEADER}\nmatrix {:016x}\ncells 2\nok 0 1 {}\nok 0 7 {}\n",
            1u64,
            sample_record(),
            sample_record()
        );
        let back = parse_journal(&text, &path(), 1, 2).unwrap();
        assert!(matches!(&back.cells[0], CellState::Ok { attempts: 1, .. }));
    }

    #[test]
    fn torn_final_line_is_dropped_but_interior_corruption_is_fatal() {
        let mut s = JournalState::fresh(7, 3);
        s.set_ok(0, 1, sample_record());
        let mut text = render_journal(&s);
        // Simulate a torn tail: a half-written ok line.
        text.push_str("ok 1 1 12\t34");
        let back = parse_journal(&text, &path(), 7, 3).unwrap();
        assert!(matches!(&back.cells[0], CellState::Ok { .. }));
        assert_eq!(back.cells[1], CellState::Empty, "torn cell re-runs");

        // The same garbage in the middle is an error, not a silent skip.
        let text = format!(
            "{JOURNAL_HEADER}\nmatrix {:016x}\ncells 3\nok 1 1 12\t34\nok 0 1 {}\n",
            7u64,
            sample_record()
        );
        let err = parse_journal(&text, &path(), 7, 3).unwrap_err();
        assert!(err.contains("report record has"), "{err}");
    }

    #[test]
    fn pinned_rejection_messages() {
        let p = path();
        assert!(parse_journal("", &p, 1, 1)
            .unwrap_err()
            .contains("journal is empty"));
        let err = parse_journal("not a journal\n", &p, 1, 1).unwrap_err();
        assert!(err.contains("not a matrix journal"), "{err}");
        let err = parse_journal(&format!("{JOURNAL_HEADER}\nmatrix zz\n"), &p, 1, 1).unwrap_err();
        assert!(err.contains("malformed `matrix` header line"), "{err}");
        let err = parse_journal(
            &format!("{JOURNAL_HEADER}\nmatrix 0000000000000002\ncells 1\n"),
            &p,
            1,
            1,
        )
        .unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        assert!(err.contains("refusing to resume"), "{err}");
        let err = parse_journal(
            &format!("{JOURNAL_HEADER}\nmatrix 0000000000000001\ncells 9\n"),
            &p,
            1,
            1,
        )
        .unwrap_err();
        assert!(
            err.contains("journal covers 9 cells, this run has 1"),
            "{err}"
        );
        // Interior bad tag / index / attempts keep their pinned wording.
        let base = format!("{JOURNAL_HEADER}\nmatrix 0000000000000001\ncells 2\n");
        for (line, what) in [
            ("zap 0 1 x", "unknown record tag"),
            ("ok nine 1 x", "malformed cell index"),
            ("ok 7 1 x", "cell index out of range"),
            ("ok 0 none x", "malformed attempt count"),
            ("lease 0 12 now 1", "malformed lease heartbeat"),
        ] {
            let text = format!("{base}{line}\nok 1 1 {}\n", sample_record());
            let err = parse_journal(&text, &p, 1, 2).unwrap_err();
            assert!(err.contains(what), "`{line}` -> {err}");
        }
    }

    #[test]
    fn v1_journals_still_load() {
        let text = format!(
            "{JOURNAL_HEADER_V1}\nmatrix 0000000000000001\ncells 2\nok 0 2 {}\nfail 1 2 boom \\t tab\n",
            sample_record()
        );
        let s = parse_journal(&text, &path(), 1, 2).unwrap();
        assert!(matches!(&s.cells[0], CellState::Ok { attempts: 2, .. }));
        match &s.cells[1] {
            CellState::Fail {
                attempts,
                not_before_ms,
                error,
            } => {
                assert_eq!(*attempts, 2);
                assert_eq!(*not_before_ms, 0);
                assert_eq!(error, "boom \t tab");
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn escape_unescape_roundtrip() {
        for s in [
            "",
            "plain",
            "tabs\tand\nnewlines",
            "back\\slash\\n",
            "\\",
            "trail\\",
        ] {
            assert_eq!(unescape_error(&escape_error(s)), s, "{s:?}");
        }
    }

    fn ctx<'a>(
        now_ms: u64,
        running: &'a [usize],
        is_alive: &'a dyn Fn(u32) -> bool,
    ) -> ClaimCtx<'a> {
        ClaimCtx {
            now_ms,
            pid: 100,
            lease_ttl_ms: 1000,
            max_attempts: 3,
            running,
            is_alive,
        }
    }

    #[test]
    fn claim_prefers_lowest_eligible_and_respects_backoff() {
        let alive = |_: u32| true;
        let mut s = JournalState::fresh(1, 4);
        s.set_ok(0, 1, sample_record());
        s.set_fail(1, 1, 5000, "flaky".into(), 3); // backing off until t=5000
                                                   // t=100: cell 1 is backing off, cell 2 is the first claimable.
        let got = claim_cell(&mut s, &ctx(100, &[], &alive));
        assert_eq!(got, Some((2, 1)));
        // t=6000: cell 1's backoff has passed; it is claimed as attempt 2.
        let got = claim_cell(&mut s, &ctx(6000, &[2], &alive));
        assert_eq!(got, Some((1, 2)));
        // Everything else is ok, leased-by-us-and-running, or empty.
        let got = claim_cell(&mut s, &ctx(6000, &[1, 2], &alive));
        assert_eq!(got, Some((3, 1)));
        assert_eq!(claim_cell(&mut s, &ctx(6000, &[1, 2, 3], &alive)), None);
    }

    #[test]
    fn claim_steals_dead_and_expired_leases_but_not_live_ones() {
        let mut s = JournalState::fresh(1, 3);
        for (i, (pid, hb)) in [(200u32, 10_000u64), (300, 10_000), (400, 100)]
            .into_iter()
            .enumerate()
        {
            s.cells[i] = CellState::Lease {
                pid,
                heartbeat_ms: hb,
                attempt: 2,
            };
        }
        let alive = |p: u32| p != 300; // 300 is dead
                                       // t=10500 (< hb+ttl for cells 0/1): only the dead owner's lease
                                       // and the heartbeat-expired lease (cell 2) are stealable.
        let got = claim_cell(&mut s, &ctx(10_500, &[], &alive));
        assert_eq!(
            got,
            Some((1, 2)),
            "dead owner's lease stolen at same attempt"
        );
        let got = claim_cell(&mut s, &ctx(10_500, &[1], &alive));
        assert_eq!(got, Some((2, 2)), "expired heartbeat stolen");
        assert_eq!(
            claim_cell(&mut s, &ctx(10_500, &[1, 2], &alive)),
            None,
            "live fresh lease is not stealable"
        );
    }

    #[test]
    fn quarantine_after_attempt_budget_and_revival_with_a_bigger_budget() {
        let mut s = JournalState::fresh(1, 1);
        assert!(!s.set_fail(0, 1, 0, "boom".into(), 3));
        assert!(!s.set_fail(0, 2, 0, "boom".into(), 3));
        assert!(
            s.set_fail(0, 3, 0, "boom".into(), 3),
            "third failure quarantines"
        );
        assert!(matches!(
            &s.cells[0],
            CellState::Quarantined { attempts: 3, .. }
        ));
        assert!(s.all_terminal());
        // Same budget: not claimable.
        let alive = |_: u32| true;
        assert_eq!(claim_cell(&mut s, &ctx(0, &[], &alive)), None);
        // Raised budget: the quarantined cell gets its extra attempts.
        let mut big = ctx(0, &[], &alive);
        big.max_attempts = 5;
        assert_eq!(claim_cell(&mut s, &big), Some((0, 4)));
    }

    #[test]
    fn locked_update_persists_across_calls() {
        let dir = std::env::temp_dir().join(format!("hbdc-supervise-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = dir.join("u.journal");
        let _ = std::fs::remove_file(&j);
        locked_update(&j, 42, 2, |s| {
            s.set_ok(1, 1, sample_record());
        })
        .unwrap();
        let state = locked_update(&j, 42, 2, |s| s.clone()).unwrap();
        assert!(matches!(&state.cells[1], CellState::Ok { .. }));
        assert_eq!(state.cells[0], CellState::Empty);
        // Wrong fingerprint is refused before the closure runs.
        let err = locked_update(&j, 43, 2, |_| ()).unwrap_err();
        assert!(err.contains("refusing to resume"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_error() -> impl Strategy<Value = String> {
            // Error text with the characters the escaper must handle.
            proptest::prop::collection::vec(
                prop_oneof![
                    Just('\\'),
                    Just('\n'),
                    Just('\t'),
                    Just(' '),
                    (b'a'..=b'z').prop_map(|b| b as char),
                ],
                0..40,
            )
            .prop_map(|v| v.into_iter().collect())
        }

        fn arb_cell() -> impl Strategy<Value = CellState> {
            prop_oneof![
                Just(CellState::Empty),
                (any::<u32>(), any::<u64>(), 1u32..50).prop_map(|(pid, heartbeat_ms, attempt)| {
                    CellState::Lease {
                        pid,
                        heartbeat_ms,
                        attempt,
                    }
                }),
                (1u32..50).prop_map(|attempts| CellState::Ok {
                    attempts,
                    record: super::sample_record(),
                }),
                (1u32..50, any::<u64>(), arb_error()).prop_map(
                    |(attempts, not_before_ms, error)| CellState::Fail {
                        attempts,
                        not_before_ms,
                        error,
                    }
                ),
                (1u32..50, arb_error())
                    .prop_map(|(attempts, error)| { CellState::Quarantined { attempts, error } }),
            ]
        }

        proptest! {
            /// Journal round-trip: any mix of lease/ok/fail/quar records
            /// renders to text and parses back to the identical state —
            /// escaping included.
            #[test]
            fn journal_roundtrip(cells in proptest::prop::collection::vec(arb_cell(), 1..24)) {
                let state = JournalState { hash: 0x1234_5678_9abc_def0, cells };
                let text = render_journal(&state);
                let back = parse_journal(
                    &text,
                    Path::new("prop.journal"),
                    state.hash,
                    state.cells.len(),
                )
                .unwrap();
                prop_assert_eq!(back, state);
            }

            /// Escape/unescape is lossless for arbitrary error strings.
            #[test]
            fn error_escape_roundtrip(s in arb_error()) {
                prop_assert_eq!(unescape_error(&escape_error(&s)), s);
            }
        }
    }
}
