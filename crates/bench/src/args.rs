//! Command-line parsing shared by every experiment binary.
//!
//! All flag handling funnels through one argv scanner
//! ([`flag_value`]/[`flag_present`]) so the binaries cannot drift apart
//! in how they locate flags, and each flag's validation (and its exact
//! error message) lives in exactly one place. The helpers are
//! re-exported from [`crate::runner`], which is where the binaries
//! import them.

use std::path::PathBuf;
use std::time::Duration;

use crate::runner::{MatrixOpts, TraceMode, WorkerSpec};
use hbdc_workloads::{Benchmark, Scale};

/// The argument following `flag` on the command line. Outer `None`: the
/// flag is absent. Inner `None`: the flag is the last argument, with no
/// value after it (callers report their own usage errors).
fn flag_value(flag: &str) -> Option<Option<String>> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    Some(args.get(i + 1).cloned())
}

/// Whether a bare `flag` appears on the command line.
fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Reports a command-line usage problem and exits with status 2 (the
/// conventional usage-error code), without the panic machinery's
/// backtrace noise.
pub(crate) fn usage_bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parses a `--scale` CLI value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale `{other}` (use test|small|full)")),
    }
}

/// The canonical CLI name of a [`Scale`] — the inverse of [`parse_scale`].
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Reads the scale from `argv` (`--scale <value>`), defaulting to `full`.
/// Prints a usage message and exits with status 2 on an invalid value.
pub fn scale_from_args() -> Scale {
    scale_from_args_or(Scale::Full)
}

/// Reads the scale from `argv` (`--scale <value>`), with an explicit
/// default for binaries whose natural scale is not `full`. Prints a
/// usage message and exits with status 2 on an invalid value.
pub fn scale_from_args_or(default: Scale) -> Scale {
    match flag_value("--scale") {
        Some(v) => {
            let v = v.as_deref().unwrap_or("");
            parse_scale(v).unwrap_or_else(|e| usage_bail(&format!("--scale: {e}")))
        }
        None => default,
    }
}

/// Reads a worker-thread count from `argv` (`--threads <N>`); `None`
/// means "use every available core". Prints a usage message and exits
/// with status 2 on a non-numeric or zero value.
///
/// `--threads` composes with `--shard` rather than conflicting with it:
/// without `--shard` it sizes the in-process simulation thread pool;
/// with `--shard` it caps how many isolated worker *subprocesses* this
/// one supervisor keeps in flight (each shard process applies its own
/// `--threads`, so two terminals running `--shard --threads 2` drain the
/// journal four cells at a time campaign-wide). `scripts/chaos_test.sh`
/// exercises exactly this combination.
pub fn threads_from_args() -> Option<usize> {
    let v = flag_value("--threads")?;
    let v = v.as_deref().unwrap_or("");
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => usage_bail(&format!("--threads needs a positive integer, got `{v}`")),
    }
}

/// Whether `--csv` was passed (binaries then print a CSV block after the
/// human-readable table).
pub fn csv_from_args() -> bool {
    flag_present("--csv")
}

/// Which benchmarks to run: all, or a `--bench <name>` subset.
pub fn benches_from_args() -> Vec<Benchmark> {
    match flag_value("--bench") {
        Some(v) => {
            let name = v.as_deref().unwrap_or("");
            match hbdc_workloads::by_name(name) {
                Some(b) => vec![b],
                None => {
                    let valid: Vec<&str> =
                        hbdc_workloads::all().iter().map(Benchmark::name).collect();
                    usage_bail(&format!(
                        "--bench: unknown benchmark `{name}` (valid: {})",
                        valid.join(", ")
                    ))
                }
            }
        }
        None => hbdc_workloads::all(),
    }
}

/// Reads the campaign options from `argv`: `--journal <path>`,
/// `--resume <path>` (sets the journal path *and* resume mode),
/// `--timeout-secs <N>`, `--trace-mode <execute|replay>`,
/// `--trace-cache <dir>`, and the multi-process knobs — `--shard`,
/// `--max-attempts <N>`, `--lease-ttl-secs <N>`, plus the hidden
/// `--worker-cell`/`--worker-out`/`--worker-matrix` triple a shard
/// supervisor passes to its subprocesses. Prints a usage message naming
/// the offending flag and exits with status 2 on a malformed value.
pub fn matrix_opts_from_args() -> MatrixOpts {
    let mut opts = MatrixOpts::default();
    if let Some(v) = flag_value("--journal") {
        match v {
            Some(p) if !p.starts_with("--") => opts.journal = Some(PathBuf::from(p)),
            _ => usage_bail("--journal needs a file path, e.g. `--journal table3.journal`"),
        }
    }
    if let Some(v) = flag_value("--resume") {
        match v {
            Some(p) if !p.starts_with("--") => {
                opts.journal = Some(PathBuf::from(p));
                opts.resume = true;
            }
            _ => usage_bail("--resume needs the journal path of the interrupted run"),
        }
    }
    if let Some(v) = flag_value("--timeout-secs") {
        let v = v.as_deref().unwrap_or("");
        match v.parse::<u64>() {
            Ok(n) if n > 0 => opts.timeout = Some(Duration::from_secs(n)),
            _ => usage_bail(&format!(
                "--timeout-secs needs a positive whole number of seconds, got `{v}`"
            )),
        }
    }
    if let Some(v) = flag_value("--trace-mode") {
        opts.trace_mode = parse_trace_mode(v.as_deref().unwrap_or(""))
            .unwrap_or_else(|e| usage_bail(&format!("--trace-mode: {e}")));
    }
    if let Some(v) = flag_value("--trace-cache") {
        match v {
            Some(p) if !p.starts_with("--") => opts.trace_cache = Some(PathBuf::from(p)),
            _ => usage_bail(
                "--trace-cache needs a directory path, e.g. `--trace-cache results/traces`",
            ),
        }
    }
    opts.shard = flag_present("--shard");
    if let Some(v) = flag_value("--max-attempts") {
        let v = v.as_deref().unwrap_or("");
        match v.parse::<u32>() {
            Ok(n) if n > 0 => opts.max_attempts = n,
            _ => usage_bail(&format!(
                "--max-attempts needs a positive integer, got `{v}`"
            )),
        }
    }
    if let Some(v) = flag_value("--lease-ttl-secs") {
        let v = v.as_deref().unwrap_or("");
        match v.parse::<u64>() {
            Ok(n) if n > 0 => opts.lease_ttl = Duration::from_secs(n),
            _ => usage_bail(&format!(
                "--lease-ttl-secs needs a positive whole number of seconds, got `{v}`"
            )),
        }
    }
    // The hidden worker triple: set only by a shard supervisor when it
    // re-executes the binary for one cell. All three travel together.
    let cell = flag_value("--worker-cell");
    let out = flag_value("--worker-out");
    let matrix = flag_value("--worker-matrix");
    if cell.is_some() || out.is_some() || matrix.is_some() {
        let cell = cell
            .flatten()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| usage_bail("--worker-cell needs a cell index"));
        let out = out
            .flatten()
            .filter(|p| !p.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| usage_bail("--worker-out needs a file path"));
        let matrix = matrix
            .flatten()
            .and_then(|v| u64::from_str_radix(&v, 16).ok())
            .unwrap_or_else(|| usage_bail("--worker-matrix needs a 16-hex-digit fingerprint"));
        opts.worker = Some(WorkerSpec { cell, out, matrix });
    }
    opts
}

/// Parses a `--trace-mode` CLI value.
///
/// # Errors
///
/// Returns the offending string if it is not `execute` or `replay`.
pub fn parse_trace_mode(s: &str) -> Result<TraceMode, String> {
    match s {
        "execute" => Ok(TraceMode::Execute),
        "replay" => Ok(TraceMode::Replay),
        other => Err(format!("unknown trace mode `{other}` (use execute|replay)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_values() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn scale_labels_invert_parsing() {
        for s in [Scale::Test, Scale::Small, Scale::Full] {
            assert_eq!(parse_scale(scale_label(s)).unwrap(), s);
        }
    }
}
