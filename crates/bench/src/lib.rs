//! `hbdc-bench`: the experiment harness for the paper's evaluation.
//!
//! Each table and figure of the paper has a binary that regenerates it
//! (`table2`, `table3`, `figure3`, `table4`) plus ablation binaries
//! (`ablation_bankmap`, `ablation_policy`, `ablation_depth`). The shared
//! machinery — building a benchmark, running it through the timing
//! simulator under a port model, and rendering rows — lives here so the
//! binaries and the Criterion benches stay thin. The multi-process
//! campaign supervisor (journal leases, subprocess workers, quarantine)
//! lives in the private `supervise` module and is reached through the
//! `--shard` flag on any matrix binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod runner;
pub(crate) mod supervise;
