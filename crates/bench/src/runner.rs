//! Shared experiment machinery: simulation driving, scale parsing,
//! suite-average bookkeeping, and the crash-safe journaled matrix runner
//! (per-cell run journal, SIGINT checkpointing, per-job timeouts).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hbdc_core::PortConfig;
use hbdc_cpu::{
    CacheLookup, CommittedTrace, CpuConfig, SimError, SimReport, SimSnapshot, Simulator,
};
use hbdc_mem::HierarchyConfig;
use hbdc_snap::lock::{evict_corrupt, FileLock};
use hbdc_snap::{fnv1a64, interrupt, write_atomic, StateWriter};
use hbdc_stats::summary::arithmetic_mean;
use hbdc_workloads::{Benchmark, Scale, Suite};

use crate::supervise::{self, CellState, JournalState, ShardParams};

/// Runs one benchmark under one port model and returns its report.
///
/// Uses the paper's Table 1 machine and memory hierarchy. The run length
/// is whatever the kernel's `scale` dictates (kernels halt on their own).
///
/// # Errors
///
/// Propagates any [`SimError`] from configuration or the run (deadlock
/// watchdog, cycle cap, invariant auditor).
pub fn simulate(bench: &Benchmark, scale: Scale, port: PortConfig) -> Result<SimReport, SimError> {
    simulate_with(bench, scale, port, CpuConfig::default())
}

/// [`simulate`] with an explicit machine configuration (auditing on, a
/// tighter cycle cap, non-default widths).
///
/// # Errors
///
/// Propagates any [`SimError`] from configuration or the run.
pub fn simulate_with(
    bench: &Benchmark,
    scale: Scale,
    port: PortConfig,
    cpu_cfg: CpuConfig,
) -> Result<SimReport, SimError> {
    let program = bench.build(scale);
    Simulator::try_new(&program, cpu_cfg, HierarchyConfig::default(), port)?.run()
}

/// Unwraps a simulation result in an experiment binary: on failure,
/// prints the error to stderr and exits with status 2.
///
/// Experiment binaries have no meaningful partial output for a single
/// failed run (unlike [`simulate_matrix`], which completes the rest of
/// the matrix), so failing loudly and immediately is the right behavior.
pub fn sim_ok(result: Result<SimReport, SimError>) -> SimReport {
    result.unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(2);
    })
}

// CLI parsing lives in [`crate::args`] (one shared argv scanner);
// re-exported here because the binaries import it from the runner.
pub(crate) use crate::args::usage_bail;
pub use crate::args::{
    benches_from_args, csv_from_args, matrix_opts_from_args, parse_scale, parse_trace_mode,
    scale_from_args, scale_from_args_or, scale_label, threads_from_args,
};

/// Accumulates per-suite IPC rows and produces the paper's "SPECint Ave."
/// and "SPECfp Ave." rows.
#[derive(Debug, Default, Clone)]
pub struct SuiteAverages {
    int: Vec<Vec<f64>>,
    fp: Vec<Vec<f64>>,
}

impl SuiteAverages {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one benchmark's row of column values.
    pub fn push(&mut self, suite: Suite, row: Vec<f64>) {
        match suite {
            Suite::Int => self.int.push(row),
            Suite::Fp => self.fp.push(row),
        }
    }

    fn column_means(rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        let cols = rows[0].len();
        (0..cols)
            .map(|c| arithmetic_mean(&rows.iter().map(|r| r[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Per-column means over the integer suite.
    pub fn int_means(&self) -> Vec<f64> {
        Self::column_means(&self.int)
    }

    /// Per-column means over the floating-point suite.
    pub fn fp_means(&self) -> Vec<f64> {
        Self::column_means(&self.fp)
    }
}

/// One failed matrix job: which cell failed, how many attempts it got,
/// and the error (or panic payload) that killed it.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Benchmark name of the failed cell.
    pub bench: String,
    /// Config label of the failed cell.
    pub config: String,
    /// Attempts made (the runner retries a failed job once).
    pub attempts: u32,
    /// Rendered [`SimError`] or panic payload from the final attempt.
    pub error: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} under {} failed after {} attempt{}: {}",
            self.bench,
            self.config,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// The outcome of a fault-tolerant matrix run: every cell's report in
/// `[bench][config]` order (`None` where the job failed), plus a failure
/// record per dead cell.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Reports in `[bench][config]` order; `None` marks a failed job (or,
    /// on an interrupted run, a checkpointed or never-started one).
    pub reports: Vec<Vec<Option<SimReport>>>,
    /// One record per failed job (empty on a clean run).
    pub failures: Vec<JobFailure>,
    /// One record per quarantined cell: in shard mode, a cell that failed
    /// its whole `--max-attempts` budget (or timed out). The campaign
    /// completed around these; rerunning with a larger `--max-attempts`
    /// gives them fresh attempts.
    pub quarantined: Vec<JobFailure>,
    /// Whether the run was cut short by an interrupt request (SIGINT on a
    /// journaled campaign): in-flight cells were checkpointed at a cycle
    /// boundary and the journal flushed, so a later `--resume` continues
    /// where this run stopped.
    pub interrupted: bool,
    /// Wall-clock seconds the trace-capture phase took (0.0 in execute
    /// mode, and tiny when the trace cache was warm). Kept separate from
    /// the per-report `wall_secs` so replay timing is reported apart from
    /// the one-shot functional pass.
    pub capture_secs: f64,
}

impl MatrixRun {
    /// Whether every job produced a report.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.quarantined.is_empty() && !self.interrupted
    }

    /// Prints one line per failed and per quarantined cell to stderr
    /// (no-op on a clean run).
    pub fn print_failure_summary(&self) {
        let total = self.reports.iter().map(Vec::len).sum::<usize>();
        if !self.failures.is_empty() {
            eprintln!("{} of {total} matrix jobs failed:", self.failures.len());
            for f in &self.failures {
                eprintln!("  {f}");
            }
        }
        if !self.quarantined.is_empty() {
            eprintln!(
                "{} of {total} matrix jobs quarantined (rerun with a larger \
                 --max-attempts to retry them):",
                self.quarantined.len()
            );
            for f in &self.quarantined {
                eprintln!("  {f}");
            }
        }
    }

    /// Unwraps a run that must be complete (golden tests, callers with no
    /// partial-output story), panicking with the failure summary if any
    /// job died.
    ///
    /// # Panics
    ///
    /// Panics listing every failure if the run was not complete.
    pub fn expect_complete(self) -> Vec<Vec<SimReport>> {
        assert!(!self.interrupted, "matrix run was interrupted");
        assert!(
            self.failures.is_empty(),
            "matrix run incomplete: {:?}",
            self.failures
        );
        assert!(
            self.quarantined.is_empty(),
            "matrix run has quarantined cells: {:?}",
            self.quarantined
        );
        self.reports
            .into_iter()
            .map(|row| row.into_iter().flatten().collect())
            .collect()
    }

    /// The exit code a binary should end with: 0 for a clean run, 1 if
    /// any job failed (partial results were still printed), 3 if the only
    /// incomplete cells are quarantined ones (the campaign is as done as
    /// its attempt budget allows), 130 — the conventional SIGINT code —
    /// if the run was interrupted and checkpointed.
    pub fn exit_code(&self) -> std::process::ExitCode {
        if self.interrupted {
            std::process::ExitCode::from(130)
        } else if !self.failures.is_empty() {
            std::process::ExitCode::from(1)
        } else if !self.quarantined.is_empty() {
            std::process::ExitCode::from(3)
        } else {
            std::process::ExitCode::SUCCESS
        }
    }
}

/// Name prefix for matrix worker threads; the panic hook uses it to keep
/// an intentionally-caught job panic from spraying stderr.
const WORKER_PREFIX: &str = "hbdc-job";

/// Silences default panic output from matrix worker threads (their
/// panics are caught, recorded as [`JobFailure`]s, and reported in the
/// failure summary); panics anywhere else keep the previous hook.
fn install_worker_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload for a [`JobFailure`] record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs the full (benchmark x port-config) matrix across OS threads,
/// returning a [`MatrixRun`] with reports in `[bench][config]` order.
///
/// Simulations are independent, so this is an embarrassingly parallel
/// work queue; on an N-core machine the full-scale Table 3 matrix runs
/// ~N times faster than the serial loop. The worker count honors
/// `--threads N` (default: every available core). Workers hand finished
/// reports to the calling thread over a channel, which fills the result
/// slots and batches the progress marks through one locked stderr handle
/// (one writer, no interleaved syscalls; `.` per success, `x` per
/// failure). A `sim-speed` summary line follows the marks.
///
/// **Fault tolerance:** a job that fails — a [`SimError`], or a panic
/// caught at the job boundary — is retried once, then recorded as a
/// [`JobFailure`]; the rest of the matrix still completes. One diverging
/// cell costs one cell, not a whole Table 3 overnight run.
pub fn simulate_matrix(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
) -> MatrixRun {
    simulate_matrix_with(benches, scale, configs, CpuConfig::default())
}

/// [`simulate_matrix`] with an explicit machine configuration. The
/// campaign options (`--journal`, `--resume`, `--timeout-secs`) are read
/// from `argv` like the rest of the matrix flags; a journal problem is a
/// usage error (reported and exit 2).
pub fn simulate_matrix_with(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
    cpu_cfg: CpuConfig,
) -> MatrixRun {
    let opts = MatrixOpts {
        cpu_cfg,
        ..matrix_opts_from_args()
    };
    simulate_matrix_opts(benches, scale, configs, &opts).unwrap_or_else(|e| usage_bail(&e))
}

/// How matrix cells obtain their dynamic instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Capture each benchmark's committed stream once (one functional
    /// pass per benchmark, served from the trace cache when possible),
    /// then drive every cell of the configuration fan-out by timing-only
    /// replay. Reports are bit-identical to [`Execute`](Self::Execute);
    /// the functional work is simply not repeated per cell.
    #[default]
    Replay,
    /// Execute the program functionally inside every cell.
    Execute,
}

/// Coordinates for the hidden worker-cell mode: a shard supervisor
/// re-executes its own binary with `--worker-cell IDX --worker-out PATH
/// --worker-matrix HEX` appended, and the child runs exactly that one
/// matrix cell and reports through the out file. Not a user-facing
/// interface; see `crate::supervise` for the protocol.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Flat matrix cell index (`bench * configs + config`) to run.
    pub cell: usize,
    /// Outcome file, written atomically on exit.
    pub out: PathBuf,
    /// The supervisor's matrix fingerprint; the worker recomputes its own
    /// and refuses to run on a mismatch (binary rebuilt mid-campaign).
    pub matrix: u64,
}

/// Campaign options for [`simulate_matrix_opts`].
#[derive(Debug, Clone)]
pub struct MatrixOpts {
    /// Machine configuration for every cell.
    pub cpu_cfg: CpuConfig,
    /// Per-job wall-clock budget. A cell still running when it expires is
    /// recorded as a `timeout` failure (never retried: a hung model hangs
    /// again) and the rest of the matrix continues. `None` disables it.
    pub timeout: Option<Duration>,
    /// Journal path. Enables crash-safe campaign journaling: every
    /// finished cell is persisted with an atomic whole-file rewrite, and
    /// SIGINT checkpoints in-flight cells instead of killing the process.
    pub journal: Option<PathBuf>,
    /// Resume from the journal at [`journal`](Self::journal): completed
    /// cells are served from the journal, failed cells are re-run, and
    /// checkpointed in-flight cells resume bit-identically from their
    /// snapshots.
    pub resume: bool,
    /// Whether cells replay a captured trace or execute functionally.
    pub trace_mode: TraceMode,
    /// Directory for the on-disk trace corpus. Captured traces are
    /// persisted here keyed by benchmark, scale, warmup, and program
    /// fingerprint, so later campaigns — and *other* experiment binaries
    /// sharing the directory — skip the capture pass entirely. `None`
    /// keeps traces in memory for this campaign only.
    pub trace_cache: Option<PathBuf>,
    /// Run as one of N cooperating shard processes draining the journal
    /// at [`journal`](Self::journal) (required) together: cells are
    /// claimed under heartbeat leases, each runs in a subprocess, and the
    /// run returns once every cell is terminal campaign-wide. Start the
    /// same command in several terminals (or on several machines sharing
    /// a filesystem with sane rename semantics) to parallelize.
    pub shard: bool,
    /// Shard mode: attempts a cell gets before it is quarantined.
    pub max_attempts: u32,
    /// Shard mode: heartbeat TTL after which other processes may steal a
    /// lease from an unresponsive owner.
    pub lease_ttl: Duration,
    /// Hidden worker-cell mode (set only by a shard supervisor when it
    /// re-executes the binary); runs one cell and exits.
    pub worker: Option<WorkerSpec>,
}

impl Default for MatrixOpts {
    fn default() -> Self {
        Self {
            cpu_cfg: CpuConfig::default(),
            timeout: None,
            journal: None,
            resume: false,
            trace_mode: TraceMode::default(),
            trace_cache: None,
            shard: false,
            max_attempts: supervise::DEFAULT_MAX_ATTEMPTS,
            lease_ttl: supervise::DEFAULT_LEASE_TTL,
            worker: None,
        }
    }
}

/// Cycle-chunk size for interruptible and timed jobs: large enough that
/// the chunking overhead disappears into the noise, small enough that
/// SIGINT and timeout latency stay in the low milliseconds.
const CHUNK_CYCLES: u64 = 4096;

/// Content fingerprint of a matrix campaign: scale, benchmark roster,
/// column labels and port parameters, and the machine configuration. A
/// journal records the fingerprint it was written under, and resuming it
/// under any other matrix is refused rather than silently mixing results.
pub(crate) fn matrix_hash(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
    cpu_cfg: &CpuConfig,
) -> u64 {
    let mut w = StateWriter::new();
    w.put_str(scale_label(scale));
    w.put_usize(benches.len());
    for b in benches {
        w.put_str(b.name());
    }
    w.put_usize(configs.len());
    for (label, port) in configs {
        w.put_str(label);
        port.save_state(&mut w);
    }
    cpu_cfg.save_state(&mut w);
    fnv1a64(&w.into_bytes())
}

/// Where a journaled run checkpoints cell `idx`'s in-flight simulator
/// state on interrupt (deleted once the cell completes).
pub(crate) fn cell_snap_path(journal: &Path, idx: usize) -> PathBuf {
    let mut name = journal.as_os_str().to_owned();
    name.push(format!(".cell{idx}.snap"));
    PathBuf::from(name)
}

/// The single-process campaign log: the in-memory [`JournalState`] plus
/// its path. [`flush`](Self::flush) atomically rewrites the whole file
/// under the journal's advisory lock, so a kill at any instant leaves
/// either the previous journal or the new one on disk — never a torn
/// file — and a concurrent shard supervisor pointed at the same journal
/// never reads mid-rename. The file format (journal v2) is shared with
/// the multi-process supervisor in [`crate::supervise`].
struct Journal {
    path: PathBuf,
    state: JournalState,
}

impl Journal {
    fn new(path: PathBuf, hash: u64, total: usize) -> Self {
        Self {
            path,
            state: JournalState::fresh(hash, total),
        }
    }

    fn record_ok(&mut self, idx: usize, attempts: u32, report: &SimReport) {
        self.state.set_ok(idx, attempts, report.to_record());
    }

    fn record_fail(&mut self, idx: usize, attempts: u32, error: &str) {
        // The single-process runner's retry policy (one in-line retry) has
        // already run its course by the time a failure is recorded, so
        // the cell is never quarantined here — a later --resume re-runs
        // it immediately (no backoff deadline).
        self.state
            .set_fail(idx, attempts, 0, error.to_string(), u32::MAX);
    }

    fn flush(&self) -> Result<(), String> {
        let lock = supervise::lock_path(&self.path);
        let _lock = FileLock::exclusive(&lock)
            .map_err(|e| format!("journal lock {}: {e}", lock.display()))?;
        write_atomic(
            &self.path,
            supervise::render_journal(&self.state).as_bytes(),
        )
        .map_err(|e| format!("journal {}: {e}", self.path.display()))
    }
}

/// Parses and validates a journal for resumption: the header, matrix
/// fingerprint, and cell count must all match this run. Returns the
/// completed (`ok`) cells; `fail`, `quar`, and stale `lease` cells are
/// dropped so the resume re-runs them.
fn load_journal(
    path: &Path,
    hash: u64,
    total: usize,
) -> Result<Vec<Option<(SimReport, u32)>>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let state = supervise::parse_journal(&text, path, hash, total)?;
    let mut out: Vec<Option<(SimReport, u32)>> = vec![None; total];
    for (idx, cell) in state.cells.iter().enumerate() {
        if let CellState::Ok { attempts, record } = cell {
            let report = SimReport::from_record(record)
                .map_err(|e| format!("{}: cell {idx}: {e}", path.display()))?;
            out[idx] = Some((report, *attempts));
        }
    }
    Ok(out)
}

/// The on-disk name of a benchmark's cached trace. The program
/// fingerprint is part of the name, so a kernel-generator change makes
/// the stale file unreachable rather than silently replayed.
fn trace_cache_path(dir: &Path, bench: &str, scale: Scale, warmup: u64, fp: u64) -> PathBuf {
    dir.join(format!(
        "{bench}-{}-w{warmup}-{fp:016x}.hbtr",
        scale_label(scale)
    ))
}

/// Captures (or loads from the cache) one committed-stream trace per
/// benchmark, in parallel across the benchmarks. Returns the traces —
/// `None` where capture failed, leaving those cells to execute
/// functionally and report the real error — and the wall-clock seconds
/// the phase took, which callers report separately from replay time.
///
/// A corrupt or truncated cache file is **evicted** (renamed to
/// `*.corrupt`, with one warning) and the trace recaptured, so one bad
/// byte costs one capture — not a warning storm or a silent functional
/// re-parse on every later campaign.
///
/// The interrupt latch is polled before each fresh capture (cached hits
/// still load — they are nearly free and make the later resume fast), so
/// a Ctrl-C during this phase stops promptly instead of executing every
/// remaining benchmark first. The caller is responsible for turning the
/// pending interrupt into an interrupted, resumable run.
pub(crate) fn capture_traces(
    benches: &[Benchmark],
    wanted: &[bool],
    scale: Scale,
    cpu_cfg: &CpuConfig,
    cache: Option<&Path>,
) -> (Vec<Option<CommittedTrace>>, f64) {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let start = Instant::now();
    if let Some(dir) = cache {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "warning: cannot create trace cache {}: {e}; capturing in memory",
                dir.display()
            );
        }
    }
    let warmup = cpu_cfg.warmup_insts;
    let one = |bench: &Benchmark| -> Option<CommittedTrace> {
        // A pending SIGINT stops new captures before the expensive
        // build/execute work; the journal (if any) is already on disk,
        // so the caller winds down into a resumable interrupted run.
        if interrupt::requested() {
            return None;
        }
        let program = bench.build(scale);
        let fp = fnv1a64(&hbdc_isa::object::to_bytes(&program));
        let path = cache.map(|d| trace_cache_path(d, bench.name(), scale, warmup, fp));
        if let Some(p) = &path {
            // The fingerprint is in the file name, but a renamed or
            // hand-edited file must still not drive a replay (that case
            // reads as a miss, not corruption).
            match CommittedTrace::read_cached(p, fp, warmup) {
                CacheLookup::Hit(t) => return Some(*t),
                CacheLookup::Miss => {}
                CacheLookup::Corrupt(e) => match evict_corrupt(p) {
                    Ok(dest) => eprintln!(
                        "warning: corrupt cached trace {}: {e}; evicted to {} and recapturing",
                        p.display(),
                        dest.display()
                    ),
                    Err(e2) => eprintln!(
                        "warning: corrupt cached trace {}: {e}; eviction failed ({e2}), \
                         recapturing anyway",
                        p.display()
                    ),
                },
            }
        }
        // Re-check after the cache lookup: a cached hit above still
        // loads under a pending interrupt (it is nearly free and keeps
        // resume fast), but a fresh execute-once capture does not start.
        if interrupt::requested() {
            return None;
        }
        let t = CommittedTrace::capture(&program, warmup, None).ok()?;
        if let Some(p) = &path {
            if let Err(e) = t.write_to_path(p) {
                eprintln!("warning: cannot persist trace {}: {e}", p.display());
            }
        }
        Some(t)
    };
    let mut traces: Vec<Option<CommittedTrace>> = vec![None; benches.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, bench) in benches.iter().enumerate() {
            if !wanted[i] {
                continue;
            }
            // Worker-thread naming keeps a capture panic (a kernel
            // generator blowing up) quiet here; the execute-mode fallback
            // cell reproduces it as a proper JobFailure.
            let h = std::thread::Builder::new()
                .name(format!("{WORKER_PREFIX}-capture-{i}"))
                .spawn_scoped(scope, move || {
                    catch_unwind(AssertUnwindSafe(|| one(bench))).ok().flatten()
                });
            match h {
                Ok(h) => handles.push((i, h)),
                Err(e) => eprintln!("warning: failed to spawn capture worker: {e}"),
            }
        }
        for (i, h) in handles {
            if let Ok(t) = h.join() {
                traces[i] = t;
            }
        }
    });
    (traces, start.elapsed().as_secs_f64())
}

/// One matrix cell's outcome as a worker reports it.
pub(crate) enum JobOutcome {
    /// The simulation finished and produced a report.
    Done(Box<SimReport>),
    /// The simulation (or its setup) failed; the rendered error.
    Failed(String),
    /// An interrupt was requested; the in-flight state was checkpointed
    /// to the cell's snapshot file.
    Interrupted,
}

/// Everything a worker needs to run one matrix cell.
#[derive(Clone, Copy)]
pub(crate) struct CellJob<'a> {
    pub(crate) bench: &'a Benchmark,
    pub(crate) trace: Option<&'a CommittedTrace>,
    pub(crate) scale: Scale,
    pub(crate) port: PortConfig,
    pub(crate) cpu_cfg: CpuConfig,
    pub(crate) timeout: Option<Duration>,
    pub(crate) checkpoint: Option<&'a Path>,
    pub(crate) resume: bool,
}

/// Runs one matrix cell. Plain cells run straight to completion; cells
/// with a timeout or a checkpoint path run in [`CHUNK_CYCLES`]-cycle
/// slices, polling the interrupt latch and the wall clock between slices.
/// Panics anywhere inside (kernel generators included) are caught and
/// rendered as failures.
pub(crate) fn run_cell(job: CellJob<'_>) -> JobOutcome {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let CellJob {
        bench,
        trace,
        scale,
        port,
        cpu_cfg,
        timeout,
        checkpoint,
        resume,
    } = job;

    let body = || -> JobOutcome {
        // Fresh construction: timing-only replay of the benchmark's
        // captured trace when one exists, functional execution otherwise
        // (execute mode, or the capture itself failed and the cell should
        // reproduce the real error).
        let fresh = || match trace {
            Some(t) => Simulator::try_from_trace(t, cpu_cfg, HierarchyConfig::default(), port),
            None => {
                let program = bench.build(scale);
                Simulator::try_new(&program, cpu_cfg, HierarchyConfig::default(), port)
            }
        };
        if checkpoint.is_none() && timeout.is_none() {
            // Fast path: nothing to poll for between cycle chunks.
            return match fresh().and_then(|mut sim| sim.run()) {
                Ok(r) => JobOutcome::Done(Box::new(r)),
                Err(e) => JobOutcome::Failed(e.to_string()),
            };
        }
        let resumed = checkpoint.filter(|p| resume && p.exists()).map(|p| {
            SimSnapshot::read_from_path(p)
                .map_err(SimError::from)
                .and_then(|snap| Simulator::resume(&snap))
                .map_err(|e| (p, e))
        });
        let built = match resumed {
            Some(Ok(sim)) => Ok(sim),
            // A stale or corrupt cell checkpoint costs a fresh run of that
            // one cell, never the campaign. Evict the bad file so the next
            // resume doesn't trip over the same bytes (and the evidence
            // survives for a post-mortem).
            Some(Err((p, e))) => {
                match evict_corrupt(p) {
                    Ok(dest) => eprintln!(
                        "warning: unusable cell checkpoint {}: {e}; evicted to {} and \
                         rerunning the cell fresh",
                        p.display(),
                        dest.display()
                    ),
                    Err(_) => {
                        let _ = std::fs::remove_file(p);
                    }
                }
                fresh()
            }
            None => fresh(),
        };
        let mut sim = match built {
            Ok(sim) => sim,
            Err(e) => return JobOutcome::Failed(e.to_string()),
        };
        let start = Instant::now();
        loop {
            match sim.run_for(CHUNK_CYCLES) {
                Ok(true) => return JobOutcome::Done(Box::new(sim.report())),
                Ok(false) => {}
                Err(e) => return JobOutcome::Failed(e.to_string()),
            }
            if let Some(path) = checkpoint {
                if interrupt::requested() {
                    return match sim.save_snapshot().write_to_path(path) {
                        Ok(()) => JobOutcome::Interrupted,
                        Err(e) => JobOutcome::Failed(format!("interrupt checkpoint: {e}")),
                    };
                }
            }
            if let Some(t) = timeout {
                if start.elapsed() >= t {
                    return JobOutcome::Failed(format!(
                        "timeout: exceeded the {:.3}s wall-clock budget at cycle {} \
                         ({} committed)",
                        t.as_secs_f64(),
                        sim.current_cycle(),
                        sim.committed()
                    ));
                }
            }
        }
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(outcome) => outcome,
        Err(payload) => JobOutcome::Failed(panic_message(payload)),
    }
}

/// [`simulate_matrix`] with the full campaign option set — the journaled,
/// resumable, interruptible engine underneath every matrix entry point.
///
/// **Journaling** ([`MatrixOpts::journal`]): each finished cell (success
/// or failure) is recorded in a text journal that is atomically rewritten
/// after every cell, and the SIGINT latch is installed: on Ctrl-C,
/// workers checkpoint their in-flight simulation to
/// `<journal>.cell<idx>.snap` at the next cycle-chunk boundary, unstarted
/// cells are left for later, and the run returns with
/// [`MatrixRun::interrupted`] set. **Resuming** ([`MatrixOpts::resume`]):
/// `ok` cells are served from the journal, `fail` cells re-run, and
/// checkpointed cells resumed bit-identically from their snapshots — the
/// resumed campaign's reports equal an uninterrupted run's.
///
/// **Sharding** ([`MatrixOpts::shard`]): instead of running cells on
/// threads in this process, hand the whole campaign to the multi-process
/// supervisor (the `supervise` module): N invocations of the same command
/// drain one journal cooperatively, each cell runs in an isolated worker
/// subprocess, and failed cells are retried with backoff and quarantined
/// when their attempt budget runs out. `--threads` remains meaningful in
/// this mode — it caps the concurrent worker subprocesses *per
/// supervisor* (default: available cores), so the campaign-wide width is
/// the sum over the cooperating shard processes.
///
/// # Errors
///
/// Fails only on journal problems: an unreadable or corrupt journal, a
/// fingerprint mismatch (the journal belongs to a different matrix), or
/// an I/O failure flushing it.
pub fn simulate_matrix_opts(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
    opts: &MatrixOpts,
) -> Result<MatrixRun, String> {
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    // Worker-cell mode (a shard supervisor re-executed this binary): run
    // the one assigned cell and exit through the out file. Checked before
    // everything else so a worker never becomes a supervisor itself.
    if let Some(spec) = &opts.worker {
        supervise::run_worker(benches, scale, configs, opts, spec);
    }
    if opts.shard {
        let journal = opts.journal.clone().ok_or_else(|| {
            "--shard requires --journal PATH (the journal is the shared campaign state)".to_string()
        })?;
        let hash = matrix_hash(benches, scale, configs, &opts.cpu_cfg);
        let threads = threads_from_args().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
        return supervise::supervise(
            benches,
            configs,
            hash,
            &ShardParams {
                journal,
                max_attempts: opts.max_attempts,
                lease_ttl: opts.lease_ttl,
                timeout: opts.timeout,
                threads,
            },
        );
    }

    type JobResult = Result<SimReport, String>;

    let total = benches.len() * configs.len();
    let hash = matrix_hash(benches, scale, configs, &opts.cpu_cfg);
    let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
    let mut attempts_by_slot: Vec<u32> = vec![0; total];

    let mut journal = match &opts.journal {
        Some(path) => {
            let mut j = Journal::new(path.clone(), hash, total);
            if opts.resume {
                for (i, cell) in load_journal(path, hash, total)?.into_iter().enumerate() {
                    if let Some((report, attempts)) = cell {
                        j.record_ok(i, attempts, &report);
                        slots[i] = Some(Ok(report));
                        attempts_by_slot[i] = attempts;
                        // The cell is settled; an interrupt checkpoint it
                        // left behind is stale — reclaim the disk space.
                        let _ = std::fs::remove_file(cell_snap_path(path, i));
                    }
                }
            }
            // The journal exists (header at minimum) from the first
            // instant, so a kill at any point leaves a resumable file.
            j.flush()?;
            interrupt::install();
            Some(j)
        }
        None => None,
    };

    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
    let threads = threads_from_args()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(pending.len().max(1));
    install_worker_panic_hook();

    // Capture-then-fan-out front end: one functional pass per benchmark
    // that still has pending cells, then every cell replays its trace.
    // A journal resume with nothing left to run captures nothing.
    let (traces, capture_secs) = match opts.trace_mode {
        TraceMode::Execute => (vec![None; benches.len()], 0.0),
        TraceMode::Replay => {
            let mut wanted = vec![false; benches.len()];
            for &i in &pending {
                wanted[i / configs.len()] = true;
            }
            capture_traces(
                benches,
                &wanted,
                scale,
                &opts.cpu_cfg,
                opts.trace_cache.as_deref(),
            )
        }
    };
    if opts.trace_mode == TraceMode::Replay && !pending.is_empty() {
        eprintln!(
            "trace-capture: {capture_secs:.2}s for {} trace{}",
            traces.iter().flatten().count(),
            if traces.iter().flatten().count() == 1 {
                ""
            } else {
                "s"
            }
        );
    }

    // A SIGINT that landed during the capture phase stops the run right
    // there: every capture that finished is already in the trace cache,
    // and the journal (header at minimum) is flushed, so the campaign is
    // in its resumable state without starting a single replay cell.
    // Clearing the queue lets the worker scaffolding below wind down
    // immediately; the interrupted `MatrixRun` then exits with code 130.
    // (Execute mode has no capture phase — its cells checkpoint
    // themselves through the chunked run loop instead.)
    let pending =
        if opts.trace_mode == TraceMode::Replay && journal.is_some() && interrupt::requested() {
            Vec::new()
        } else {
            pending
        };

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome, u32)>();

    let scope_result: Result<(), String> = std::thread::scope(|scope| {
        let next = &next;
        let pending = &pending;
        let traces = &traces;
        for w in 0..threads {
            let tx = tx.clone();
            let worker = std::thread::Builder::new().name(format!("{WORKER_PREFIX}-{w}"));
            let body = move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= pending.len() {
                    break;
                }
                let i = pending[k];
                let bench = &benches[i / configs.len()];
                let trace = traces[i / configs.len()].as_ref();
                let (_, port) = &configs[i % configs.len()];
                let ckpt = opts.journal.as_deref().map(|p| cell_snap_path(p, i));
                let run_once = || {
                    run_cell(CellJob {
                        bench,
                        trace,
                        scale,
                        port: *port,
                        cpu_cfg: opts.cpu_cfg,
                        timeout: opts.timeout,
                        checkpoint: ckpt.as_deref(),
                        resume: opts.resume,
                    })
                };
                let mut attempts = 1;
                let mut outcome = run_once();
                if matches!(&outcome, JobOutcome::Failed(e) if !e.starts_with("timeout")) {
                    // One retry guards against transient host conditions
                    // (simulations themselves are deterministic). Timeouts
                    // are exempt: a hung model hangs again.
                    attempts = 2;
                    outcome = run_once();
                }
                let interrupted = matches!(outcome, JobOutcome::Interrupted);
                if tx.send((i, outcome, attempts)).is_err() || interrupted {
                    // On interrupt, wind down instead of claiming more
                    // cells; the journal records where we stopped.
                    break;
                }
            };
            if let Err(e) = worker.spawn_scoped(scope, body) {
                // Could not spawn this worker (resource limits); the ones
                // already running will drain the queue.
                eprintln!("warning: failed to spawn matrix worker: {e}");
            }
        }
        drop(tx); // the receive loop ends once every worker finishes
        let mut marks = std::io::stderr().lock();
        for (i, outcome, attempts) in rx {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            let mark = match &outcome {
                JobOutcome::Done(_) => ".",
                JobOutcome::Failed(_) => "x",
                JobOutcome::Interrupted => "!",
            };
            let _ = write!(marks, "{mark}");
            attempts_by_slot[i] = attempts;
            if let Some(j) = journal.as_mut() {
                match &outcome {
                    JobOutcome::Done(r) => j.record_ok(i, attempts, r),
                    JobOutcome::Failed(e) => j.record_fail(i, attempts, e),
                    JobOutcome::Interrupted => {}
                }
                if !matches!(outcome, JobOutcome::Interrupted) {
                    j.flush()?;
                    // The cell is on the journal's books; its in-flight
                    // checkpoint (if any) is now stale.
                    let _ = std::fs::remove_file(cell_snap_path(&j.path, i));
                }
            }
            match outcome {
                JobOutcome::Done(r) => slots[i] = Some(Ok(*r)),
                JobOutcome::Failed(e) => slots[i] = Some(Err(e)),
                JobOutcome::Interrupted => {}
            }
        }
        let _ = writeln!(marks);
        Ok(())
    });
    scope_result?;

    let interrupted = journal.is_some() && interrupt::requested();
    if interrupted {
        if let Some(j) = &journal {
            eprintln!(
                "interrupted: journal and cell checkpoints flushed; \
                 rerun with --resume {} to continue",
                j.path.display()
            );
        }
    }

    let mut reports = Vec::with_capacity(benches.len());
    let mut failures = Vec::new();
    let mut it = slots.into_iter().zip(attempts_by_slot).enumerate();
    for bench in benches {
        let mut row = Vec::with_capacity(configs.len());
        for _ in 0..configs.len() {
            let (i, (result, attempts)) = it.next().expect("slots sized to the matrix");
            match result {
                Some(Ok(report)) => row.push(Some(report)),
                Some(Err(error)) => {
                    row.push(None);
                    failures.push(JobFailure {
                        bench: bench.name().to_string(),
                        config: configs[i % configs.len()].0.clone(),
                        attempts,
                        error,
                    });
                }
                // Interrupted mid-flight or never started: no report, no
                // failure record — the journal carries the resume state.
                None => row.push(None),
            }
        }
        reports.push(row);
    }
    print_sim_speed(reports.iter().flatten().flatten());
    let run = MatrixRun {
        reports,
        failures,
        quarantined: Vec::new(),
        interrupted,
        capture_secs,
    };
    run.print_failure_summary();
    Ok(run)
}

/// Summarizes simulator throughput over a set of finished reports.
/// Returns `(simulated cycles, cpu seconds, cycles per cpu-second)`.
pub fn sim_speed(
    reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>,
) -> (u64, f64, f64) {
    let (mut cycles, mut wall) = (0u64, 0f64);
    for r in reports {
        let r = r.borrow();
        cycles += r.cycles;
        wall += r.wall_secs;
    }
    let rate = if wall > 0.0 {
        cycles as f64 / wall
    } else {
        0.0
    };
    (cycles, wall, rate)
}

/// Prints the simulator-throughput (`sim-speed`) line for finished
/// reports to stderr, keeping experiment stdout machine-parseable.
pub fn print_sim_speed(reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>) {
    let (cycles, wall, rate) = sim_speed(reports);
    eprintln!("sim-speed: {rate:.0} cycles/sec ({cycles} simulated cycles in {wall:.2}s of simulator time)");
}

/// Running simulator-throughput accumulator for experiment binaries that
/// drive [`simulate`]/`Simulator` serially instead of through
/// [`simulate_matrix`]: feed it every finished report, then
/// [`print`](Self::print) the `sim-speed` line on exit.
#[derive(Debug, Default, Clone)]
pub struct SpeedTally {
    cycles: u64,
    wall: f64,
}

impl SpeedTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished report into the tally.
    pub fn add(&mut self, r: &SimReport) {
        self.cycles += r.cycles;
        self.wall += r.wall_secs;
    }

    /// Prints the `sim-speed` line for everything tallied (to stderr).
    pub fn print(&self) {
        let rate = if self.wall > 0.0 {
            self.cycles as f64 / self.wall
        } else {
            0.0
        };
        eprintln!(
            "sim-speed: {rate:.0} cycles/sec ({} simulated cycles in {:.2}s of simulator time)",
            self.cycles, self.wall
        );
    }
}

/// The port-model columns of the paper's Table 3: the single-ported
/// baseline ("~"), then True/Repl/Bank at 2, 4, 8, and 16 ports.
pub fn table3_columns() -> Vec<(String, PortConfig)> {
    let mut cols = vec![("~1".to_string(), PortConfig::Ideal { ports: 1 })];
    for p in [2usize, 4, 8, 16] {
        cols.push((format!("True-{p}"), PortConfig::Ideal { ports: p }));
        cols.push((format!("Repl-{p}"), PortConfig::Replicated { ports: p }));
        cols.push((format!("Bank-{p}"), PortConfig::banked(p as u32)));
    }
    cols
}

/// The six LBIC configurations of the paper's Table 4.
pub fn table4_columns() -> Vec<(String, PortConfig)> {
    [(2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (8, 4)]
        .into_iter()
        .map(|(m, n)| (format!("{m}x{n}"), PortConfig::lbic(m, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_workloads::by_name;

    #[test]
    fn table3_has_thirteen_columns() {
        let cols = table3_columns();
        assert_eq!(cols.len(), 13);
        assert_eq!(cols[0].0, "~1");
        assert_eq!(cols[12].0, "Bank-16");
    }

    #[test]
    fn table4_has_six_configs() {
        let cols = table4_columns();
        assert_eq!(cols.len(), 6);
        assert_eq!(cols[0].0, "2x2");
        assert_eq!(cols[5].0, "8x4");
    }

    #[test]
    fn suite_averages_compute_column_means() {
        let mut s = SuiteAverages::new();
        s.push(Suite::Int, vec![2.0, 4.0]);
        s.push(Suite::Int, vec![4.0, 8.0]);
        s.push(Suite::Fp, vec![10.0, 20.0]);
        assert_eq!(s.int_means(), vec![3.0, 6.0]);
        assert_eq!(s.fp_means(), vec![10.0, 20.0]);
    }

    #[test]
    fn simulate_matrix_matches_serial() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("a".to_string(), PortConfig::Ideal { ports: 1 }),
            ("b".to_string(), PortConfig::banked(4)),
        ];
        let matrix = simulate_matrix(&benches, Scale::Test, &configs).expect_complete();
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].len(), 2);
        for (j, (_, port)) in configs.iter().enumerate() {
            let serial = simulate(&benches[0], Scale::Test, *port).unwrap();
            assert_eq!(matrix[0][j], serial, "config {j} differs from serial");
        }
    }

    #[test]
    fn simulate_smoke() {
        let b = by_name("li").unwrap();
        let r = simulate(&b, Scale::Test, PortConfig::Ideal { ports: 4 }).unwrap();
        assert!(r.committed > 10_000);
        assert!(r.ipc() > 0.5);
    }

    #[test]
    fn matrix_survives_a_degenerate_config() {
        // banks=3 fails PortConfig validation; the cell is recorded as a
        // failure and the other cell still completes.
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("good".to_string(), PortConfig::Ideal { ports: 2 }),
            ("bad".to_string(), PortConfig::banked(3)),
        ];
        let run = simulate_matrix(&benches, Scale::Test, &configs);
        assert!(!run.is_complete());
        assert!(run.reports[0][0].is_some(), "good cell must complete");
        assert!(run.reports[0][1].is_none(), "bad cell must be None");
        assert_eq!(run.failures.len(), 1);
        let f = &run.failures[0];
        assert_eq!(f.bench, "li");
        assert_eq!(f.config, "bad");
        assert_eq!(f.attempts, 2, "failed jobs are retried once");
        assert!(f.error.contains("power of two"), "{}", f.error);
    }

    #[test]
    fn matrix_survives_a_panicking_job() {
        fn bomb(_: Scale) -> String {
            panic!("kernel generator exploded");
        }
        let benches = vec![
            Benchmark::custom("bomb", Suite::Int, bomb),
            by_name("li").unwrap(),
        ];
        let configs = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let run = simulate_matrix(&benches, Scale::Test, &configs);
        assert!(run.reports[0][0].is_none());
        assert!(run.reports[1][0].is_some(), "healthy bench still runs");
        assert_eq!(run.failures.len(), 1);
        assert!(
            run.failures[0].error.contains("kernel generator exploded"),
            "{}",
            run.failures[0].error
        );
    }

    #[test]
    fn matrix_records_cycle_limit_failures() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let run = simulate_matrix_with(
            &benches,
            Scale::Test,
            &configs,
            CpuConfig {
                max_cycles: 50,
                ..CpuConfig::default()
            },
        );
        assert!(!run.is_complete());
        assert!(
            run.failures[0].error.contains("cycle limit"),
            "{}",
            run.failures[0].error
        );
    }

    #[test]
    fn matrix_exit_codes() {
        let clean = MatrixRun {
            reports: vec![],
            failures: vec![],
            quarantined: vec![],
            interrupted: false,
            capture_secs: 0.0,
        };
        // ExitCode lacks PartialEq; compare the Debug renderings.
        assert_eq!(
            format!("{:?}", clean.exit_code()),
            format!("{:?}", std::process::ExitCode::SUCCESS)
        );
        let boom = JobFailure {
            bench: "x".into(),
            config: "y".into(),
            attempts: 2,
            error: "boom".into(),
        };
        let dirty = MatrixRun {
            reports: vec![vec![None]],
            failures: vec![boom.clone()],
            quarantined: vec![],
            interrupted: false,
            capture_secs: 0.0,
        };
        assert_eq!(
            format!("{:?}", dirty.exit_code()),
            format!("{:?}", std::process::ExitCode::from(1))
        );
        // Quarantined-only: the campaign is as complete as its attempt
        // budget allows — a distinct exit code (3), not a hard failure.
        let quarantined = MatrixRun {
            reports: vec![vec![None]],
            failures: vec![],
            quarantined: vec![boom.clone()],
            interrupted: false,
            capture_secs: 0.0,
        };
        assert!(!quarantined.is_complete());
        assert_eq!(
            format!("{:?}", quarantined.exit_code()),
            format!("{:?}", std::process::ExitCode::from(3))
        );
        // A hard failure outranks quarantine.
        let both = MatrixRun {
            reports: vec![vec![None, None]],
            failures: vec![boom.clone()],
            quarantined: vec![boom],
            interrupted: false,
            capture_secs: 0.0,
        };
        assert_eq!(
            format!("{:?}", both.exit_code()),
            format!("{:?}", std::process::ExitCode::from(1))
        );
        let interrupted = MatrixRun {
            reports: vec![vec![None]],
            failures: vec![],
            quarantined: vec![],
            interrupted: true,
            capture_secs: 0.0,
        };
        assert!(!interrupted.is_complete());
        assert_eq!(
            format!("{:?}", interrupted.exit_code()),
            format!("{:?}", std::process::ExitCode::from(130))
        );
    }

    /// A scratch directory unique to this test process.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbdc-runner-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The SIGINT latch is process-global, so tests that trigger it — or
    /// run a journaled matrix, which polls it — serialize on this lock to
    /// keep one test's Ctrl-C out of another's campaign.
    fn latch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn journaled_interrupt_and_resume_matches_uninterrupted() {
        let _guard = latch_lock();
        let dir = scratch_dir("interrupt");
        let journal = dir.join("run.journal");
        let _ = std::fs::remove_file(&journal);
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("i2".to_string(), PortConfig::Ideal { ports: 2 }),
            ("b4".to_string(), PortConfig::banked(4)),
        ];
        // Execute mode, deliberately: a pre-set latch in replay mode
        // stops at the capture phase before any cell starts (see
        // `interrupt_during_capture_phase_is_resumable`), and this test
        // is about the *cell* checkpoint path.
        let opts = MatrixOpts {
            journal: Some(journal.clone()),
            trace_mode: TraceMode::Execute,
            ..MatrixOpts::default()
        };

        // With the latch already set, every claimed cell runs exactly one
        // cycle chunk, checkpoints, and winds down — a deterministic
        // mid-run interruption.
        interrupt::reset();
        interrupt::trigger();
        let halted = simulate_matrix_opts(&benches, Scale::Test, &configs, &opts).unwrap();
        interrupt::reset();
        assert!(halted.interrupted);
        assert!(halted.failures.is_empty());
        assert!(halted.reports[0].iter().all(Option::is_none));
        assert!(
            (0..2).any(|i| cell_snap_path(&journal, i).exists()),
            "an in-flight cell checkpoint must exist after the interrupt"
        );
        assert!(journal.exists(), "the journal is flushed on interrupt");

        // Resume runs the campaign to completion from the checkpoints.
        let resume_opts = MatrixOpts {
            resume: true,
            ..opts.clone()
        };
        let resumed = simulate_matrix_opts(&benches, Scale::Test, &configs, &resume_opts)
            .unwrap()
            .expect_complete();
        assert!(
            (0..2).all(|i| !cell_snap_path(&journal, i).exists()),
            "completed cells delete their checkpoints"
        );

        // The interrupted-then-resumed campaign equals an uninterrupted
        // one, bit for bit.
        let fresh = simulate_matrix_with(&benches, Scale::Test, &configs, CpuConfig::default())
            .expect_complete();
        assert_eq!(resumed, fresh);

        // A second resume serves every cell straight from the journal
        // (exercising the record parser) and still matches.
        let replayed = simulate_matrix_opts(&benches, Scale::Test, &configs, &resume_opts)
            .unwrap()
            .expect_complete();
        assert_eq!(replayed, fresh);
    }

    #[test]
    fn interrupt_during_capture_phase_is_resumable() {
        let _guard = latch_lock();
        let dir = scratch_dir("capture-interrupt");
        let journal = dir.join("cap.journal");
        let cache = dir.join("traces");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir_all(&cache);
        let benches = vec![by_name("li").unwrap(), by_name("compress").unwrap()];
        let configs = vec![
            ("i2".to_string(), PortConfig::Ideal { ports: 2 }),
            ("b4".to_string(), PortConfig::banked(4)),
        ];
        let opts = MatrixOpts {
            journal: Some(journal.clone()),
            trace_mode: TraceMode::Replay,
            trace_cache: Some(cache.clone()),
            ..MatrixOpts::default()
        };

        // With the latch set before the run starts, the capture phase
        // itself bails (no traces, no cache files) and no replay cell is
        // ever launched — yet the journal is flushed and resumable.
        interrupt::reset();
        interrupt::trigger();
        let halted = simulate_matrix_opts(&benches, Scale::Test, &configs, &opts).unwrap();
        interrupt::reset();
        assert!(halted.interrupted, "capture-phase SIGINT must interrupt");
        assert_eq!(
            format!("{:?}", halted.exit_code()),
            format!("{:?}", std::process::ExitCode::from(130))
        );
        assert!(halted.failures.is_empty(), "an interrupt is not a failure");
        assert!(
            halted.reports.iter().flatten().all(Option::is_none),
            "no replay cell may start under a capture-phase interrupt"
        );
        assert!(journal.exists(), "the journal is flushed before capture");
        let captured = std::fs::read_dir(&cache).map(|d| d.count()).unwrap_or(0);
        assert_eq!(captured, 0, "no fresh capture may run under the latch");

        // Resuming with a clear latch captures the traces and completes;
        // the result equals an uninterrupted execute-mode run.
        let resume_opts = MatrixOpts {
            resume: true,
            ..opts
        };
        let resumed = simulate_matrix_opts(&benches, Scale::Test, &configs, &resume_opts)
            .unwrap()
            .expect_complete();
        let fresh = simulate_matrix_with(&benches, Scale::Test, &configs, CpuConfig::default())
            .expect_complete();
        assert_eq!(resumed, fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_matrix() {
        let _guard = latch_lock();
        interrupt::reset();
        let dir = scratch_dir("mismatch");
        let journal = dir.join("m.journal");
        let benches = vec![by_name("li").unwrap()];
        let configs_a = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let opts = MatrixOpts {
            journal: Some(journal.clone()),
            ..MatrixOpts::default()
        };
        simulate_matrix_opts(&benches, Scale::Test, &configs_a, &opts)
            .unwrap()
            .expect_complete();

        // Same journal, different port configuration: refused.
        let configs_b = vec![("i4".to_string(), PortConfig::Ideal { ports: 4 })];
        let resume_opts = MatrixOpts {
            resume: true,
            ..opts
        };
        let err =
            simulate_matrix_opts(&benches, Scale::Test, &configs_b, &resume_opts).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        assert!(err.contains("refusing to resume"), "{err}");

        // Garbage file: refused, with the offending path named.
        std::fs::write(&journal, "not a journal\n").unwrap();
        let err =
            simulate_matrix_opts(&benches, Scale::Test, &configs_a, &resume_opts).unwrap_err();
        assert!(err.contains("not a matrix journal"), "{err}");
        assert!(err.contains("m.journal"), "{err}");
    }

    #[test]
    fn per_job_timeout_fails_hung_cells_without_retry() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let opts = MatrixOpts {
            timeout: Some(Duration::from_nanos(1)),
            ..MatrixOpts::default()
        };
        let run = simulate_matrix_opts(&benches, Scale::Test, &configs, &opts).unwrap();
        assert!(!run.is_complete());
        assert!(!run.interrupted);
        assert_eq!(run.failures.len(), 1);
        let f = &run.failures[0];
        assert!(f.error.starts_with("timeout"), "{}", f.error);
        assert!(f.error.contains("cycle"), "{}", f.error);
        assert_eq!(f.attempts, 1, "timed-out jobs are not retried");
    }

    #[test]
    fn journal_records_failures_for_rerun() {
        let _guard = latch_lock();
        interrupt::reset();
        let dir = scratch_dir("fail-journal");
        let journal = dir.join("f.journal");
        let benches = vec![by_name("li").unwrap()];
        // banks=3 fails PortConfig validation at build time.
        let configs = vec![
            ("good".to_string(), PortConfig::Ideal { ports: 2 }),
            ("bad".to_string(), PortConfig::banked(3)),
        ];
        let opts = MatrixOpts {
            journal: Some(journal.clone()),
            ..MatrixOpts::default()
        };
        let run = simulate_matrix_opts(&benches, Scale::Test, &configs, &opts).unwrap();
        assert_eq!(run.failures.len(), 1);
        let text = std::fs::read_to_string(&journal).unwrap();
        assert!(text.starts_with(supervise::JOURNAL_HEADER), "{text}");
        assert!(text.contains("\nok 0 "), "{text}");
        assert!(text.contains("\nfail 1 "), "{text}");

        // Resuming re-runs the failed cell (and fails it again, since the
        // configuration is still degenerate) while serving the good cell
        // from the journal.
        let resumed = simulate_matrix_opts(
            &benches,
            Scale::Test,
            &configs,
            &MatrixOpts {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert!(resumed.reports[0][0].is_some());
        assert!(resumed.reports[0][1].is_none());
        assert_eq!(resumed.failures.len(), 1);
    }
}
