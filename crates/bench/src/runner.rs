//! Shared experiment machinery: simulation driving, scale parsing, and
//! suite-average bookkeeping.

use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, SimError, SimReport, Simulator};
use hbdc_mem::HierarchyConfig;
use hbdc_stats::summary::arithmetic_mean;
use hbdc_workloads::{Benchmark, Scale, Suite};

/// Runs one benchmark under one port model and returns its report.
///
/// Uses the paper's Table 1 machine and memory hierarchy. The run length
/// is whatever the kernel's `scale` dictates (kernels halt on their own).
///
/// # Errors
///
/// Propagates any [`SimError`] from configuration or the run (deadlock
/// watchdog, cycle cap, invariant auditor).
pub fn simulate(bench: &Benchmark, scale: Scale, port: PortConfig) -> Result<SimReport, SimError> {
    simulate_with(bench, scale, port, CpuConfig::default())
}

/// [`simulate`] with an explicit machine configuration (auditing on, a
/// tighter cycle cap, non-default widths).
///
/// # Errors
///
/// Propagates any [`SimError`] from configuration or the run.
pub fn simulate_with(
    bench: &Benchmark,
    scale: Scale,
    port: PortConfig,
    cpu_cfg: CpuConfig,
) -> Result<SimReport, SimError> {
    let program = bench.build(scale);
    Simulator::try_new(&program, cpu_cfg, HierarchyConfig::default(), port)?.run()
}

/// Unwraps a simulation result in an experiment binary: on failure,
/// prints the error to stderr and exits with status 2.
///
/// Experiment binaries have no meaningful partial output for a single
/// failed run (unlike [`simulate_matrix`], which completes the rest of
/// the matrix), so failing loudly and immediately is the right behavior.
pub fn sim_ok(result: Result<SimReport, SimError>) -> SimReport {
    result.unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(2);
    })
}

/// Parses a `--scale` CLI value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale `{other}` (use test|small|full)")),
    }
}

/// Reports a command-line usage problem and exits with status 2 (the
/// conventional usage-error code), without the panic machinery's
/// backtrace noise.
fn usage_bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Reads the scale from `argv` (`--scale <value>`), defaulting to `full`.
/// Prints a usage message and exits with status 2 on an invalid value.
pub fn scale_from_args() -> Scale {
    scale_from_args_or(Scale::Full)
}

/// Reads the scale from `argv` (`--scale <value>`), with an explicit
/// default for binaries whose natural scale is not `full`. Prints a
/// usage message and exits with status 2 on an invalid value.
pub fn scale_from_args_or(default: Scale) -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let v = args.get(i + 1).map(String::as_str).unwrap_or("");
            parse_scale(v).unwrap_or_else(|e| usage_bail(&e))
        }
        None => default,
    }
}

/// Reads a worker-thread count from `argv` (`--threads <N>`); `None`
/// means "use every available core". Prints a usage message and exits
/// with status 2 on a non-numeric or zero value.
pub fn threads_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--threads")?;
    let v = args.get(i + 1).map(String::as_str).unwrap_or("");
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => usage_bail(&format!("--threads needs a positive integer, got `{v}`")),
    }
}

/// Accumulates per-suite IPC rows and produces the paper's "SPECint Ave."
/// and "SPECfp Ave." rows.
#[derive(Debug, Default, Clone)]
pub struct SuiteAverages {
    int: Vec<Vec<f64>>,
    fp: Vec<Vec<f64>>,
}

impl SuiteAverages {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one benchmark's row of column values.
    pub fn push(&mut self, suite: Suite, row: Vec<f64>) {
        match suite {
            Suite::Int => self.int.push(row),
            Suite::Fp => self.fp.push(row),
        }
    }

    fn column_means(rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        let cols = rows[0].len();
        (0..cols)
            .map(|c| arithmetic_mean(&rows.iter().map(|r| r[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Per-column means over the integer suite.
    pub fn int_means(&self) -> Vec<f64> {
        Self::column_means(&self.int)
    }

    /// Per-column means over the floating-point suite.
    pub fn fp_means(&self) -> Vec<f64> {
        Self::column_means(&self.fp)
    }
}

/// One failed matrix job: which cell failed, how many attempts it got,
/// and the error (or panic payload) that killed it.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Benchmark name of the failed cell.
    pub bench: String,
    /// Config label of the failed cell.
    pub config: String,
    /// Attempts made (the runner retries a failed job once).
    pub attempts: u32,
    /// Rendered [`SimError`] or panic payload from the final attempt.
    pub error: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} under {} failed after {} attempt{}: {}",
            self.bench,
            self.config,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// The outcome of a fault-tolerant matrix run: every cell's report in
/// `[bench][config]` order (`None` where the job failed), plus a failure
/// record per dead cell.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Reports in `[bench][config]` order; `None` marks a failed job.
    pub reports: Vec<Vec<Option<SimReport>>>,
    /// One record per failed job (empty on a clean run).
    pub failures: Vec<JobFailure>,
}

impl MatrixRun {
    /// Whether every job produced a report.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints one line per failure to stderr (no-op on a clean run).
    pub fn print_failure_summary(&self) {
        if self.failures.is_empty() {
            return;
        }
        eprintln!(
            "{} of {} matrix jobs failed:",
            self.failures.len(),
            self.reports.iter().map(Vec::len).sum::<usize>()
        );
        for f in &self.failures {
            eprintln!("  {f}");
        }
    }

    /// Unwraps a run that must be complete (golden tests, callers with no
    /// partial-output story), panicking with the failure summary if any
    /// job died.
    ///
    /// # Panics
    ///
    /// Panics listing every failure if the run was not complete.
    pub fn expect_complete(self) -> Vec<Vec<SimReport>> {
        assert!(
            self.failures.is_empty(),
            "matrix run incomplete: {:?}",
            self.failures
        );
        self.reports
            .into_iter()
            .map(|row| row.into_iter().flatten().collect())
            .collect()
    }

    /// The exit code a binary should end with: 0 for a clean run, 1 if
    /// any job failed (partial results were still printed).
    pub fn exit_code(&self) -> std::process::ExitCode {
        if self.is_complete() {
            std::process::ExitCode::SUCCESS
        } else {
            std::process::ExitCode::from(1)
        }
    }
}

/// Name prefix for matrix worker threads; the panic hook uses it to keep
/// an intentionally-caught job panic from spraying stderr.
const WORKER_PREFIX: &str = "hbdc-job";

/// Silences default panic output from matrix worker threads (their
/// panics are caught, recorded as [`JobFailure`]s, and reported in the
/// failure summary); panics anywhere else keep the previous hook.
fn install_worker_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload for a [`JobFailure`] record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs the full (benchmark x port-config) matrix across OS threads,
/// returning a [`MatrixRun`] with reports in `[bench][config]` order.
///
/// Simulations are independent, so this is an embarrassingly parallel
/// work queue; on an N-core machine the full-scale Table 3 matrix runs
/// ~N times faster than the serial loop. The worker count honors
/// `--threads N` (default: every available core). Workers hand finished
/// reports to the calling thread over a channel, which fills the result
/// slots and batches the progress marks through one locked stderr handle
/// (one writer, no interleaved syscalls; `.` per success, `x` per
/// failure). A `sim-speed` summary line follows the marks.
///
/// **Fault tolerance:** a job that fails — a [`SimError`], or a panic
/// caught at the job boundary — is retried once, then recorded as a
/// [`JobFailure`]; the rest of the matrix still completes. One diverging
/// cell costs one cell, not a whole Table 3 overnight run.
pub fn simulate_matrix(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
) -> MatrixRun {
    simulate_matrix_with(benches, scale, configs, CpuConfig::default())
}

/// [`simulate_matrix`] with an explicit machine configuration.
pub fn simulate_matrix_with(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
    cpu_cfg: CpuConfig,
) -> MatrixRun {
    use std::io::Write;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let total = benches.len() * configs.len();
    let threads = threads_from_args()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(total.max(1));
    install_worker_panic_hook();

    type JobResult = Result<SimReport, String>;
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobResult, u32)>();
    let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
    let mut attempts_by_slot: Vec<u32> = vec![0; total];

    std::thread::scope(|scope| {
        let next = &next;
        for w in 0..threads {
            let tx = tx.clone();
            let worker = std::thread::Builder::new().name(format!("{WORKER_PREFIX}-{w}"));
            let body = move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let bench = &benches[i / configs.len()];
                let (_, port) = &configs[i % configs.len()];
                let run_once = || -> JobResult {
                    match catch_unwind(AssertUnwindSafe(|| {
                        simulate_with(bench, scale, *port, cpu_cfg)
                    })) {
                        Ok(Ok(report)) => Ok(report),
                        Ok(Err(e)) => Err(e.to_string()),
                        Err(payload) => Err(panic_message(payload)),
                    }
                };
                let mut attempts = 1;
                let mut result = run_once();
                if result.is_err() {
                    // One retry guards against transient host conditions
                    // (simulations themselves are deterministic).
                    attempts = 2;
                    result = run_once();
                }
                if tx.send((i, result, attempts)).is_err() {
                    break;
                }
            };
            if let Err(e) = worker.spawn_scoped(scope, body) {
                // Could not spawn this worker (resource limits); the ones
                // already running will drain the queue.
                eprintln!("warning: failed to spawn matrix worker: {e}");
            }
        }
        drop(tx); // the receive loop ends once every worker finishes
        let mut err = std::io::stderr().lock();
        for (i, result, attempts) in rx {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            let _ = write!(err, "{}", if result.is_ok() { "." } else { "x" });
            slots[i] = Some(result);
            attempts_by_slot[i] = attempts;
        }
        let _ = writeln!(err);
    });

    let mut reports = Vec::with_capacity(benches.len());
    let mut failures = Vec::new();
    let mut it = slots.into_iter().zip(attempts_by_slot).enumerate();
    for bench in benches {
        let mut row = Vec::with_capacity(configs.len());
        for _ in 0..configs.len() {
            let (i, (result, attempts)) = it.next().expect("slots sized to the matrix");
            match result.expect("every slot filled by the receive loop") {
                Ok(report) => row.push(Some(report)),
                Err(error) => {
                    row.push(None);
                    failures.push(JobFailure {
                        bench: bench.name().to_string(),
                        config: configs[i % configs.len()].0.clone(),
                        attempts,
                        error,
                    });
                }
            }
        }
        reports.push(row);
    }
    print_sim_speed(reports.iter().flatten().flatten());
    let run = MatrixRun { reports, failures };
    run.print_failure_summary();
    run
}

/// Summarizes simulator throughput over a set of finished reports.
/// Returns `(simulated cycles, cpu seconds, cycles per cpu-second)`.
pub fn sim_speed(
    reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>,
) -> (u64, f64, f64) {
    let (mut cycles, mut wall) = (0u64, 0f64);
    for r in reports {
        let r = r.borrow();
        cycles += r.cycles;
        wall += r.wall_secs;
    }
    let rate = if wall > 0.0 {
        cycles as f64 / wall
    } else {
        0.0
    };
    (cycles, wall, rate)
}

/// Prints the simulator-throughput (`sim-speed`) line for finished
/// reports to stderr, keeping experiment stdout machine-parseable.
pub fn print_sim_speed(reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>) {
    let (cycles, wall, rate) = sim_speed(reports);
    eprintln!("sim-speed: {rate:.0} cycles/sec ({cycles} simulated cycles in {wall:.2}s of simulator time)");
}

/// Running simulator-throughput accumulator for experiment binaries that
/// drive [`simulate`]/`Simulator` serially instead of through
/// [`simulate_matrix`]: feed it every finished report, then
/// [`print`](Self::print) the `sim-speed` line on exit.
#[derive(Debug, Default, Clone)]
pub struct SpeedTally {
    cycles: u64,
    wall: f64,
}

impl SpeedTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished report into the tally.
    pub fn add(&mut self, r: &SimReport) {
        self.cycles += r.cycles;
        self.wall += r.wall_secs;
    }

    /// Prints the `sim-speed` line for everything tallied (to stderr).
    pub fn print(&self) {
        let rate = if self.wall > 0.0 {
            self.cycles as f64 / self.wall
        } else {
            0.0
        };
        eprintln!(
            "sim-speed: {rate:.0} cycles/sec ({} simulated cycles in {:.2}s of simulator time)",
            self.cycles, self.wall
        );
    }
}

/// Whether `--csv` was passed (binaries then print a CSV block after the
/// human-readable table).
pub fn csv_from_args() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// The port-model columns of the paper's Table 3: the single-ported
/// baseline ("~"), then True/Repl/Bank at 2, 4, 8, and 16 ports.
pub fn table3_columns() -> Vec<(String, PortConfig)> {
    let mut cols = vec![("~1".to_string(), PortConfig::Ideal { ports: 1 })];
    for p in [2usize, 4, 8, 16] {
        cols.push((format!("True-{p}"), PortConfig::Ideal { ports: p }));
        cols.push((format!("Repl-{p}"), PortConfig::Replicated { ports: p }));
        cols.push((format!("Bank-{p}"), PortConfig::banked(p as u32)));
    }
    cols
}

/// The six LBIC configurations of the paper's Table 4.
pub fn table4_columns() -> Vec<(String, PortConfig)> {
    [(2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (8, 4)]
        .into_iter()
        .map(|(m, n)| (format!("{m}x{n}"), PortConfig::lbic(m, n)))
        .collect()
}

/// Which benchmarks to run: all, or a `--bench <name>` subset.
pub fn benches_from_args() -> Vec<Benchmark> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--bench") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            match hbdc_workloads::by_name(name) {
                Some(b) => vec![b],
                None => usage_bail(&format!("unknown benchmark `{name}`")),
            }
        }
        None => hbdc_workloads::all(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_workloads::by_name;

    #[test]
    fn parse_scale_values() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn table3_has_thirteen_columns() {
        let cols = table3_columns();
        assert_eq!(cols.len(), 13);
        assert_eq!(cols[0].0, "~1");
        assert_eq!(cols[12].0, "Bank-16");
    }

    #[test]
    fn table4_has_six_configs() {
        let cols = table4_columns();
        assert_eq!(cols.len(), 6);
        assert_eq!(cols[0].0, "2x2");
        assert_eq!(cols[5].0, "8x4");
    }

    #[test]
    fn suite_averages_compute_column_means() {
        let mut s = SuiteAverages::new();
        s.push(Suite::Int, vec![2.0, 4.0]);
        s.push(Suite::Int, vec![4.0, 8.0]);
        s.push(Suite::Fp, vec![10.0, 20.0]);
        assert_eq!(s.int_means(), vec![3.0, 6.0]);
        assert_eq!(s.fp_means(), vec![10.0, 20.0]);
    }

    #[test]
    fn simulate_matrix_matches_serial() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("a".to_string(), PortConfig::Ideal { ports: 1 }),
            ("b".to_string(), PortConfig::banked(4)),
        ];
        let matrix = simulate_matrix(&benches, Scale::Test, &configs).expect_complete();
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].len(), 2);
        for (j, (_, port)) in configs.iter().enumerate() {
            let serial = simulate(&benches[0], Scale::Test, *port).unwrap();
            assert_eq!(matrix[0][j], serial, "config {j} differs from serial");
        }
    }

    #[test]
    fn simulate_smoke() {
        let b = by_name("li").unwrap();
        let r = simulate(&b, Scale::Test, PortConfig::Ideal { ports: 4 }).unwrap();
        assert!(r.committed > 10_000);
        assert!(r.ipc() > 0.5);
    }

    #[test]
    fn matrix_survives_a_degenerate_config() {
        // banks=3 fails PortConfig validation; the cell is recorded as a
        // failure and the other cell still completes.
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("good".to_string(), PortConfig::Ideal { ports: 2 }),
            ("bad".to_string(), PortConfig::banked(3)),
        ];
        let run = simulate_matrix(&benches, Scale::Test, &configs);
        assert!(!run.is_complete());
        assert!(run.reports[0][0].is_some(), "good cell must complete");
        assert!(run.reports[0][1].is_none(), "bad cell must be None");
        assert_eq!(run.failures.len(), 1);
        let f = &run.failures[0];
        assert_eq!(f.bench, "li");
        assert_eq!(f.config, "bad");
        assert_eq!(f.attempts, 2, "failed jobs are retried once");
        assert!(f.error.contains("power of two"), "{}", f.error);
    }

    #[test]
    fn matrix_survives_a_panicking_job() {
        fn bomb(_: Scale) -> String {
            panic!("kernel generator exploded");
        }
        let benches = vec![
            Benchmark::custom("bomb", Suite::Int, bomb),
            by_name("li").unwrap(),
        ];
        let configs = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let run = simulate_matrix(&benches, Scale::Test, &configs);
        assert!(run.reports[0][0].is_none());
        assert!(run.reports[1][0].is_some(), "healthy bench still runs");
        assert_eq!(run.failures.len(), 1);
        assert!(
            run.failures[0].error.contains("kernel generator exploded"),
            "{}",
            run.failures[0].error
        );
    }

    #[test]
    fn matrix_records_cycle_limit_failures() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![("i2".to_string(), PortConfig::Ideal { ports: 2 })];
        let run = simulate_matrix_with(
            &benches,
            Scale::Test,
            &configs,
            CpuConfig {
                max_cycles: 50,
                ..CpuConfig::default()
            },
        );
        assert!(!run.is_complete());
        assert!(
            run.failures[0].error.contains("cycle limit"),
            "{}",
            run.failures[0].error
        );
    }

    #[test]
    fn matrix_exit_codes() {
        let clean = MatrixRun {
            reports: vec![],
            failures: vec![],
        };
        // ExitCode lacks PartialEq; compare the Debug renderings.
        assert_eq!(
            format!("{:?}", clean.exit_code()),
            format!("{:?}", std::process::ExitCode::SUCCESS)
        );
        let dirty = MatrixRun {
            reports: vec![vec![None]],
            failures: vec![JobFailure {
                bench: "x".into(),
                config: "y".into(),
                attempts: 2,
                error: "boom".into(),
            }],
        };
        assert_eq!(
            format!("{:?}", dirty.exit_code()),
            format!("{:?}", std::process::ExitCode::from(1))
        );
    }
}
