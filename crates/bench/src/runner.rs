//! Shared experiment machinery: simulation driving, scale parsing, and
//! suite-average bookkeeping.

use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, SimReport, Simulator};
use hbdc_mem::HierarchyConfig;
use hbdc_stats::summary::arithmetic_mean;
use hbdc_workloads::{Benchmark, Scale, Suite};

/// Runs one benchmark under one port model and returns its report.
///
/// Uses the paper's Table 1 machine and memory hierarchy. The run length
/// is whatever the kernel's `scale` dictates (kernels halt on their own).
pub fn simulate(bench: &Benchmark, scale: Scale, port: PortConfig) -> SimReport {
    let program = bench.build(scale);
    Simulator::new(
        &program,
        CpuConfig::default(),
        HierarchyConfig::default(),
        port,
    )
    .run()
}

/// Parses a `--scale` CLI value.
///
/// # Errors
///
/// Returns the offending string if it is not `test`, `small`, or `full`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale `{other}` (use test|small|full)")),
    }
}

/// Reads the scale from `argv` (`--scale <value>`), defaulting to `full`.
///
/// # Panics
///
/// Panics with a usage message on an invalid value — these are
/// experiment binaries, where failing loudly beats guessing.
pub fn scale_from_args() -> Scale {
    scale_from_args_or(Scale::Full)
}

/// Reads the scale from `argv` (`--scale <value>`), with an explicit
/// default for binaries whose natural scale is not `full`.
///
/// # Panics
///
/// Panics with a usage message on an invalid value.
pub fn scale_from_args_or(default: Scale) -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => {
            let v = args.get(i + 1).map(String::as_str).unwrap_or("");
            parse_scale(v).unwrap_or_else(|e| panic!("{e}"))
        }
        None => default,
    }
}

/// Reads a worker-thread count from `argv` (`--threads <N>`); `None`
/// means "use every available core".
///
/// # Panics
///
/// Panics on a non-numeric or zero value.
pub fn threads_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--threads")?;
    let v = args.get(i + 1).map(String::as_str).unwrap_or("");
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("--threads needs a positive integer, got `{v}`"),
    }
}

/// Accumulates per-suite IPC rows and produces the paper's "SPECint Ave."
/// and "SPECfp Ave." rows.
#[derive(Debug, Default, Clone)]
pub struct SuiteAverages {
    int: Vec<Vec<f64>>,
    fp: Vec<Vec<f64>>,
}

impl SuiteAverages {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one benchmark's row of column values.
    pub fn push(&mut self, suite: Suite, row: Vec<f64>) {
        match suite {
            Suite::Int => self.int.push(row),
            Suite::Fp => self.fp.push(row),
        }
    }

    fn column_means(rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        let cols = rows[0].len();
        (0..cols)
            .map(|c| arithmetic_mean(&rows.iter().map(|r| r[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Per-column means over the integer suite.
    pub fn int_means(&self) -> Vec<f64> {
        Self::column_means(&self.int)
    }

    /// Per-column means over the floating-point suite.
    pub fn fp_means(&self) -> Vec<f64> {
        Self::column_means(&self.fp)
    }
}

/// Runs the full (benchmark x port-config) matrix across OS threads,
/// returning reports in `[bench][config]` order.
///
/// Simulations are independent, so this is an embarrassingly parallel
/// work queue; on an N-core machine the full-scale Table 3 matrix runs
/// ~N times faster than the serial loop. The worker count honors
/// `--threads N` (default: every available core). Workers hand finished
/// reports to the calling thread over a channel, which fills the result
/// slots and batches the progress dots through one locked stderr handle
/// (one writer, no interleaved syscalls). A `sim-speed` summary line
/// follows the dots.
pub fn simulate_matrix(
    benches: &[Benchmark],
    scale: Scale,
    configs: &[(String, PortConfig)],
) -> Vec<Vec<SimReport>> {
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let total = benches.len() * configs.len();
    let threads = threads_from_args()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(total.max(1));

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
    let mut slots: Vec<Option<SimReport>> = (0..total).map(|_| None).collect();

    std::thread::scope(|scope| {
        let next = &next;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let bench = &benches[i / configs.len()];
                let (_, port) = &configs[i % configs.len()];
                let report = simulate(bench, scale, *port);
                if tx.send((i, report)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the receive loop ends once every worker finishes
        let mut err = std::io::stderr().lock();
        for (i, report) in rx {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(report);
            let _ = write!(err, ".");
        }
        let _ = writeln!(err);
    });

    let mut out = Vec::with_capacity(benches.len());
    let mut it = slots.into_iter();
    for _ in benches {
        let row: Vec<SimReport> = (0..configs.len())
            .map(|_| it.next().expect("sized above").expect("every slot filled"))
            .collect();
        out.push(row);
    }
    print_sim_speed(out.iter().flatten());
    out
}

/// Summarizes simulator throughput over a set of finished reports.
/// Returns `(simulated cycles, cpu seconds, cycles per cpu-second)`.
pub fn sim_speed(
    reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>,
) -> (u64, f64, f64) {
    let (mut cycles, mut wall) = (0u64, 0f64);
    for r in reports {
        let r = r.borrow();
        cycles += r.cycles;
        wall += r.wall_secs;
    }
    let rate = if wall > 0.0 {
        cycles as f64 / wall
    } else {
        0.0
    };
    (cycles, wall, rate)
}

/// Prints the simulator-throughput (`sim-speed`) line for finished
/// reports to stderr, keeping experiment stdout machine-parseable.
pub fn print_sim_speed(reports: impl IntoIterator<Item = impl std::borrow::Borrow<SimReport>>) {
    let (cycles, wall, rate) = sim_speed(reports);
    eprintln!("sim-speed: {rate:.0} cycles/sec ({cycles} simulated cycles in {wall:.2}s of simulator time)");
}

/// Running simulator-throughput accumulator for experiment binaries that
/// drive [`simulate`]/`Simulator` serially instead of through
/// [`simulate_matrix`]: feed it every finished report, then
/// [`print`](Self::print) the `sim-speed` line on exit.
#[derive(Debug, Default, Clone)]
pub struct SpeedTally {
    cycles: u64,
    wall: f64,
}

impl SpeedTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished report into the tally.
    pub fn add(&mut self, r: &SimReport) {
        self.cycles += r.cycles;
        self.wall += r.wall_secs;
    }

    /// Prints the `sim-speed` line for everything tallied (to stderr).
    pub fn print(&self) {
        let rate = if self.wall > 0.0 {
            self.cycles as f64 / self.wall
        } else {
            0.0
        };
        eprintln!(
            "sim-speed: {rate:.0} cycles/sec ({} simulated cycles in {:.2}s of simulator time)",
            self.cycles, self.wall
        );
    }
}

/// Whether `--csv` was passed (binaries then print a CSV block after the
/// human-readable table).
pub fn csv_from_args() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// The port-model columns of the paper's Table 3: the single-ported
/// baseline ("~"), then True/Repl/Bank at 2, 4, 8, and 16 ports.
pub fn table3_columns() -> Vec<(String, PortConfig)> {
    let mut cols = vec![("~1".to_string(), PortConfig::Ideal { ports: 1 })];
    for p in [2usize, 4, 8, 16] {
        cols.push((format!("True-{p}"), PortConfig::Ideal { ports: p }));
        cols.push((format!("Repl-{p}"), PortConfig::Replicated { ports: p }));
        cols.push((format!("Bank-{p}"), PortConfig::banked(p as u32)));
    }
    cols
}

/// The six LBIC configurations of the paper's Table 4.
pub fn table4_columns() -> Vec<(String, PortConfig)> {
    [(2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (8, 4)]
        .into_iter()
        .map(|(m, n)| (format!("{m}x{n}"), PortConfig::lbic(m, n)))
        .collect()
}

/// Which benchmarks to run: all, or a `--bench <name>` subset.
pub fn benches_from_args() -> Vec<Benchmark> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--bench") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            match hbdc_workloads::by_name(name) {
                Some(b) => vec![b],
                None => panic!("unknown benchmark `{name}`"),
            }
        }
        None => hbdc_workloads::all(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_workloads::by_name;

    #[test]
    fn parse_scale_values() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn table3_has_thirteen_columns() {
        let cols = table3_columns();
        assert_eq!(cols.len(), 13);
        assert_eq!(cols[0].0, "~1");
        assert_eq!(cols[12].0, "Bank-16");
    }

    #[test]
    fn table4_has_six_configs() {
        let cols = table4_columns();
        assert_eq!(cols.len(), 6);
        assert_eq!(cols[0].0, "2x2");
        assert_eq!(cols[5].0, "8x4");
    }

    #[test]
    fn suite_averages_compute_column_means() {
        let mut s = SuiteAverages::new();
        s.push(Suite::Int, vec![2.0, 4.0]);
        s.push(Suite::Int, vec![4.0, 8.0]);
        s.push(Suite::Fp, vec![10.0, 20.0]);
        assert_eq!(s.int_means(), vec![3.0, 6.0]);
        assert_eq!(s.fp_means(), vec![10.0, 20.0]);
    }

    #[test]
    fn simulate_matrix_matches_serial() {
        let benches = vec![by_name("li").unwrap()];
        let configs = vec![
            ("a".to_string(), PortConfig::Ideal { ports: 1 }),
            ("b".to_string(), PortConfig::banked(4)),
        ];
        let matrix = simulate_matrix(&benches, Scale::Test, &configs);
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].len(), 2);
        for (j, (_, port)) in configs.iter().enumerate() {
            let serial = simulate(&benches[0], Scale::Test, *port);
            assert_eq!(matrix[0][j], serial, "config {j} differs from serial");
        }
    }

    #[test]
    fn simulate_smoke() {
        let b = by_name("li").unwrap();
        let r = simulate(&b, Scale::Test, PortConfig::Ideal { ports: 4 });
        assert!(r.committed > 10_000);
        assert!(r.ipc() > 0.5);
    }
}
