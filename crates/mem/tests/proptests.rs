//! Property tests: the memory and tag-array models against naive
//! reference implementations.

use std::collections::HashMap;

use proptest::prelude::*;

use hbdc_mem::{BankMapper, CacheGeometry, LookupResult, Memory, MshrFile, MshrOutcome, TagArray};

proptest! {
    #[test]
    fn memory_matches_hashmap_model(
        ops in prop::collection::vec((0u64..0x4000, any::<u8>(), any::<bool>()), 1..300)
    ) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, is_write) in ops {
            if is_write {
                mem.write_u8(addr, value);
                model.insert(addr, value);
            } else {
                let expected = model.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_u8(addr), expected);
            }
        }
    }

    #[test]
    fn wide_accesses_compose_from_bytes(
        addr in 0u64..0x10000,
        value in any::<u64>(),
        n in 1usize..=8
    ) {
        let mut mem = Memory::new();
        mem.write_le(addr, value, n);
        let mask = if n == 8 { u64::MAX } else { (1u64 << (8 * n)) - 1 };
        prop_assert_eq!(mem.read_le(addr, n), value & mask);
        for i in 0..n as u64 {
            prop_assert_eq!(mem.read_u8(addr + i), (value >> (8 * i)) as u8);
        }
    }
}

/// A naive set-associative LRU cache used as the reference model.
struct NaiveCache {
    geom: CacheGeometry,
    // Per set: (tag, dirty), most-recently-used last.
    sets: Vec<Vec<(u64, bool)>>,
}

impl NaiveCache {
    fn new(geom: CacheGeometry) -> Self {
        Self {
            sets: vec![Vec::new(); geom.num_sets() as usize],
            geom,
        }
    }

    /// Returns (hit, writeback_addr).
    fn access(&mut self, addr: u64, is_store: bool) -> (bool, Option<u64>) {
        let set = self.geom.set_index(addr) as usize;
        let tag = self.geom.tag(addr);
        let assoc = self.geom.assoc() as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let (t, d) = ways.remove(pos);
            ways.push((t, d || is_store));
            return (true, None);
        }
        let mut wb = None;
        if ways.len() == assoc {
            let (vt, vd) = ways.remove(0); // LRU at the front
            if vd {
                wb = Some(self.geom.rebuild_addr(vt, set as u64));
            }
        }
        ways.push((tag, is_store));
        (false, wb)
    }
}

proptest! {
    #[test]
    fn tag_array_matches_naive_lru(
        accesses in prop::collection::vec((0u64..0x8000, any::<bool>()), 1..500),
        assoc in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        let geom = CacheGeometry::new(4096, 32, assoc);
        let mut tags = TagArray::new(geom);
        let mut naive = NaiveCache::new(geom);
        for (addr, is_store) in accesses {
            let (expected_hit, expected_wb) = naive.access(addr, is_store);
            let hit = tags.lookup(addr, is_store) == LookupResult::Hit;
            prop_assert_eq!(hit, expected_hit, "addr {:#x}", addr);
            if !hit {
                let wb = tags.fill(addr, is_store);
                prop_assert_eq!(wb, expected_wb, "victim for {:#x}", addr);
            }
        }
    }

    #[test]
    fn bank_mappers_are_total_and_line_consistent(
        addrs in prop::collection::vec(any::<u64>(), 1..200),
        banks in prop::sample::select(vec![1u32, 2, 4, 8, 16]),
    ) {
        for mapper in [
            BankMapper::bit_select(banks, 32),
            BankMapper::xor_fold(banks, 32),
            BankMapper::pseudo_random(banks, 32),
        ] {
            for &a in &addrs {
                let b = mapper.bank_of(a);
                prop_assert!(b < banks);
                // Same line => same bank.
                prop_assert_eq!(mapper.bank_of(a & !31), b);
                prop_assert_eq!(mapper.bank_of(a | 31), b);
            }
        }
    }

    #[test]
    fn mshr_outstanding_never_exceeds_capacity(
        ops in prop::collection::vec((0u64..64, 1u64..100), 1..200),
        capacity in 1usize..8,
    ) {
        let mut mshrs = MshrFile::new(capacity);
        let mut now = 0u64;
        for (line, delay) in ops {
            now += 1;
            mshrs.retire_completed(now);
            let outcome = mshrs.register(line * 32, now + delay);
            prop_assert!(mshrs.outstanding() <= capacity);
            if let MshrOutcome::Merged { ready_at } = outcome {
                prop_assert!(ready_at > now.saturating_sub(100));
            }
        }
    }
}
