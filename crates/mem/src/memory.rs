//! Sparse, paged flat memory for the functional emulator.

use std::collections::HashMap;

use hbdc_snap::{SnapError, StateReader, StateWriter};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, byte-addressable 64-bit memory backed by 4KB pages allocated
/// on first touch. Unwritten memory reads as zero.
///
/// This is the *functional* data store; it carries no timing. All cache
/// models in this workspace are tag-only and consult this memory never —
/// data correctness is the emulator's business, timing is the cache's.
///
/// # Examples
///
/// ```
/// use hbdc_mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u8(0x1000), 0x0d); // little-endian
/// assert_eq!(m.read_u32(0x9999_0000), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4KB pages currently allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &p[..])
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map(|p| p[(addr & PAGE_MASK) as usize])
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `n <= 8` bytes little-endian into a `u64`. Accesses may cross
    /// page boundaries.
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let mut v: u64 = 0;
        for i in 0..n {
            v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `value` little-endian.
    pub fn write_le(&mut self, addr: u64, value: u64, n: usize) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_le(addr, 2) as u16
    }

    /// Writes a `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_le(addr, value as u64, 2);
    }

    /// Reads a `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_le(addr, value as u64, 4);
    }

    /// Reads a `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, value, 8);
    }

    /// Reads an `f64` (IEEE bits).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` (IEEE bits).
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads an `f32` (IEEE bits).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` (IEEE bits).
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Serializes every resident page in ascending page order, so the
    /// byte stream is deterministic regardless of hash-map iteration.
    pub fn save_state(&self, w: &mut StateWriter) {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        w.put_usize(indices.len());
        for idx in indices {
            w.put_u64(idx);
            w.put_bytes(&self.pages[&idx]);
        }
    }

    /// Replaces the entire contents with pages written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a page of the wrong size, or any decode
    /// error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        self.pages.clear();
        for _ in 0..n {
            let idx = r.get_u64()?;
            let bytes = r.get_bytes()?;
            if bytes.len() != PAGE_SIZE {
                return Err(SnapError::Corrupt(format!(
                    "memory page {idx:#x} has {} bytes (pages are {PAGE_SIZE})",
                    bytes.len()
                )));
            }
            self.pages.insert(idx, bytes.into_boxed_slice());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn byte_roundtrip_allocates_page() {
        let mut m = Memory::new();
        m.write_u8(0x1234, 0xab);
        assert_eq!(m.read_u8(0x1234), 0xab);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x101), 2);
        assert_eq!(m.read_u8(0x102), 3);
        assert_eq!(m.read_u8(0x103), 4);
        assert_eq!(m.read_u16(0x100), 0x0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 4; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(0x200, -1234.5678);
        assert_eq!(m.read_f64(0x200), -1234.5678);
        m.write_f32(0x300, 2.5);
        assert_eq!(m.read_f32(0x300), 2.5);
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.write_bytes(0x400, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_u8(0x404), 5);
        assert_eq!(m.read_u32(0x400), 0x0403_0201);
    }

    #[test]
    fn state_roundtrip_preserves_contents() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        m.write_u8(0x9999_0000, 7);
        let mut w = StateWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Memory::new();
        restored.write_u64(0x5000, 1); // must be wiped by load
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        assert_eq!(restored.read_u8(0x9999_0000), 7);
        assert_eq!(restored.read_u64(0x5000), 0);
        assert_eq!(restored.resident_pages(), m.resident_pages());
    }

    #[test]
    fn overwrite_is_visible() {
        let mut m = Memory::new();
        m.write_u64(0x500, 1);
        m.write_u64(0x500, 2);
        assert_eq!(m.read_u64(0x500), 2);
    }
}
