//! Per-cache statistics.

use hbdc_snap::{SnapError, StateReader, StateWriter};
use hbdc_stats::Counter;

/// Event counters for one cache level.
///
/// # Examples
///
/// ```
/// use hbdc_mem::CacheStats;
///
/// let mut s = CacheStats::new("dl1");
/// s.record_access(true, false);
/// s.record_access(false, true);
/// assert_eq!(s.accesses(), 2);
/// assert!((s.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CacheStats {
    accesses: Counter,
    hits: Counter,
    misses: Counter,
    store_accesses: Counter,
    writebacks: Counter,
}

impl CacheStats {
    /// Creates zeroed stats labelled with the cache name (e.g. `"dl1"`).
    pub fn new(name: &str) -> Self {
        Self {
            accesses: Counter::new(format!("{name}.accesses")),
            hits: Counter::new(format!("{name}.hits")),
            misses: Counter::new(format!("{name}.misses")),
            store_accesses: Counter::new(format!("{name}.stores")),
            writebacks: Counter::new(format!("{name}.writebacks")),
        }
    }

    /// Records one access and whether it hit.
    pub fn record_access(&mut self, hit: bool, is_store: bool) {
        self.accesses.incr();
        if hit {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        if is_store {
            self.store_accesses.incr();
        }
    }

    /// Records a dirty-victim writeback.
    pub fn record_writeback(&mut self) {
        self.writebacks.incr();
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses.value()
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Total store accesses.
    pub fn stores(&self) -> u64 {
        self.store_accesses.value()
    }

    /// Total writebacks.
    pub fn writebacks(&self) -> u64 {
        self.writebacks.value()
    }

    /// Miss rate (0.0 over an empty run).
    pub fn miss_rate(&self) -> f64 {
        self.misses.rate_of(&self.accesses)
    }

    /// Serializes every counter value (names come from the constructor).
    pub fn save_state(&self, w: &mut StateWriter) {
        self.accesses.save_state(w);
        self.hits.save_state(w);
        self.misses.save_state(w);
        self.store_accesses.save_state(w);
        self.writebacks.save_state(w);
    }

    /// Restores counters written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Any decode error from the reader.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.accesses.load_state(r)?;
        self.hits.load_state(r)?;
        self.misses.load_state(r)?;
        self.store_accesses.load_state(r)?;
        self.writebacks.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_partition() {
        let mut s = CacheStats::new("l2");
        for i in 0..10 {
            s.record_access(i % 3 != 0, i % 2 == 0);
        }
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.hits() + s.misses(), 10);
        assert_eq!(s.misses(), 4);
        assert_eq!(s.stores(), 5);
    }

    #[test]
    fn empty_miss_rate_is_zero() {
        let s = CacheStats::new("dl1");
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn writebacks_counted() {
        let mut s = CacheStats::new("dl1");
        s.record_writeback();
        s.record_writeback();
        assert_eq!(s.writebacks(), 2);
    }
}
