//! Miss status holding registers (MSHRs) for the non-blocking L1.

use std::collections::HashMap;

use hbdc_snap::{SnapError, StateReader, StateWriter};

/// Outcome of registering a miss with the [`MshrFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the miss goes out to the next level.
    Allocated,
    /// The line already has an outstanding miss; this reference merged
    /// into it and will complete when the original fill returns.
    Merged {
        /// Cycle at which the outstanding fill completes.
        ready_at: u64,
    },
    /// All MSHRs are busy; the reference must retry later. (With the
    /// paper's "one outstanding miss per physical register" provisioning —
    /// 64 entries here — this is rare but must still be modelled.)
    Full,
}

/// A file of miss status holding registers keyed by line address.
///
/// Tracks outstanding fills so that (a) secondary misses to an in-flight
/// line merge instead of issuing duplicate requests, and (b) total
/// outstanding misses are bounded.
///
/// # Examples
///
/// ```
/// use hbdc_mem::{MshrFile, MshrOutcome};
///
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.register(0x100, 15), MshrOutcome::Allocated);
/// assert_eq!(mshrs.register(0x100, 15), MshrOutcome::Merged { ready_at: 15 });
/// mshrs.retire_completed(20);
/// assert_eq!(mshrs.outstanding(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // line address -> completion cycle
    entries: HashMap<u64, u64>,
    merges: u64,
    rejects: u64,
}

impl MshrFile {
    /// Creates a file with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self {
            capacity,
            entries: HashMap::new(),
            merges: 0,
            rejects: 0,
        }
    }

    /// Registers a miss on `line_addr` that will complete at `ready_at`.
    pub fn register(&mut self, line_addr: u64, ready_at: u64) -> MshrOutcome {
        if let Some(&existing) = self.entries.get(&line_addr) {
            self.merges += 1;
            return MshrOutcome::Merged { ready_at: existing };
        }
        if self.entries.len() >= self.capacity {
            self.rejects += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(line_addr, ready_at);
        MshrOutcome::Allocated
    }

    /// Completion cycle of the outstanding miss on `line_addr`, if any.
    pub fn ready_at(&self, line_addr: u64) -> Option<u64> {
        self.entries.get(&line_addr).copied()
    }

    /// Frees every MSHR whose fill has completed by cycle `now`.
    pub fn retire_completed(&mut self, now: u64) {
        self.entries.retain(|_, &mut ready| ready > now);
    }

    /// Completion cycle of the earliest outstanding fill still strictly
    /// in the future at `now`. Entries at or before `now` are already
    /// complete (they linger until the next access retires them) and are
    /// not future events.
    pub fn next_ready_after(&self, now: u64) -> Option<u64> {
        self.entries.values().copied().filter(|&r| r > now).min()
    }

    /// Number of misses currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Whether a new (non-merging) miss can be accepted.
    pub fn has_free_entry(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Total secondary misses merged into an existing entry.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total misses rejected because the file was full.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Serializes outstanding misses in ascending line order (so the byte
    /// stream is deterministic) plus the merge/reject counters.
    pub fn save_state(&self, w: &mut StateWriter) {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        w.put_usize(lines.len());
        for line in lines {
            w.put_u64(line);
            w.put_u64(self.entries[&line]);
        }
        w.put_u64(self.merges);
        w.put_u64(self.rejects);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if more entries are serialized than this
    /// file's capacity, or any decode error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "{n} outstanding misses exceed the MSHR capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let line = r.get_u64()?;
            let ready = r.get_u64()?;
            self.entries.insert(line, ready);
        }
        self.merges = r.get_u64()?;
        self.rejects = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.register(0x40, 10), MshrOutcome::Allocated);
        assert_eq!(m.register(0x40, 99), MshrOutcome::Merged { ready_at: 10 });
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(0x00, 5), MshrOutcome::Allocated);
        assert_eq!(m.register(0x40, 5), MshrOutcome::Allocated);
        assert_eq!(m.register(0x80, 5), MshrOutcome::Full);
        assert_eq!(m.rejects(), 1);
        assert!(!m.has_free_entry());
        // Merging still works when full.
        assert_eq!(m.register(0x40, 9), MshrOutcome::Merged { ready_at: 5 });
    }

    #[test]
    fn retire_frees_only_completed() {
        let mut m = MshrFile::new(4);
        m.register(0x00, 5);
        m.register(0x40, 10);
        m.retire_completed(5);
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.ready_at(0x40), Some(10));
        assert_eq!(m.ready_at(0x00), None);
    }

    #[test]
    fn next_ready_skips_already_completed_fills() {
        let mut m = MshrFile::new(4);
        m.register(0x00, 5);
        m.register(0x40, 10);
        // Entry at cycle 5 is complete by now=7 but not yet retired: it
        // must not masquerade as a future event.
        assert_eq!(m.next_ready_after(7), Some(10));
        assert_eq!(m.next_ready_after(4), Some(5));
        assert_eq!(m.next_ready_after(10), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }

    #[test]
    fn state_roundtrip_preserves_outstanding_misses() {
        let mut m = MshrFile::new(4);
        m.register(0x40, 10);
        m.register(0x80, 20);
        m.register(0x40, 99); // merge
        let mut w = StateWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = MshrFile::new(4);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.ready_at(0x40), Some(10));
        assert_eq!(restored.ready_at(0x80), Some(20));
        assert_eq!(restored.outstanding(), 2);
        assert_eq!(restored.merges(), 1);
    }

    #[test]
    fn load_rejects_overcapacity_state() {
        let mut big = MshrFile::new(8);
        for i in 0..8u64 {
            big.register(i * 0x40, 10);
        }
        let mut w = StateWriter::new();
        big.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut small = MshrFile::new(2);
        assert!(matches!(
            small.load_state(&mut StateReader::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }
}
