//! Cache size / line / associativity arithmetic.

/// Geometry of a cache: total size, line size, and associativity.
///
/// Provides the address decompositions of the paper's Figure 2c: line
/// offset, set index ("line selector"), and tag. Bank selection (the `bs`
/// field) is handled separately by [`BankMapper`](crate::BankMapper),
/// because it applies to whole cache structures, not individual arrays.
///
/// # Examples
///
/// ```
/// use hbdc_mem::CacheGeometry;
///
/// // The paper's L1: 32KB direct-mapped with 32-byte lines.
/// let g = CacheGeometry::new(32 * 1024, 32, 1);
/// assert_eq!(g.num_sets(), 1024);
/// assert_eq!(g.line_addr(0x1234), 0x1220);
/// assert_eq!(g.offset(0x1234), 0x14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size: u64,
    line_size: u64,
    assoc: u32,
    line_shift: u32,
    num_sets: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `line_size` are powers of two, `assoc >= 1`,
    /// and `size` is divisible by `line_size * assoc` into a power-of-two
    /// set count.
    pub fn new(size: u64, line_size: u64, assoc: u32) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        let lines = size / line_size;
        assert!(
            lines >= assoc as u64,
            "cache must hold at least one set ({lines} lines < {assoc}-way)"
        );
        let num_sets = lines / assoc as u64;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            size,
            line_size,
            assoc,
            line_shift: line_size.trailing_zeros(),
            num_sets,
        }
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// log2 of the line size.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }

    /// The line number of `addr` (line address shifted down).
    pub fn line_number(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The byte offset of `addr` within its line.
    pub fn offset(&self, addr: u64) -> u64 {
        addr & (self.line_size - 1)
    }

    /// The set index of `addr`.
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & (self.num_sets - 1)
    }

    /// The tag of `addr` (everything above the set index).
    pub fn tag(&self, addr: u64) -> u64 {
        addr >> (self.line_shift + self.num_sets.trailing_zeros())
    }

    /// Whether `a` and `b` fall in the same cache line.
    pub fn same_line(&self, a: u64, b: u64) -> bool {
        self.line_number(a) == self.line_number(b)
    }

    /// Reconstructs a line-aligned address from `(tag, set_index)` — the
    /// inverse of [`tag`](Self::tag)/[`set_index`](Self::set_index), used
    /// when evicting dirty victims.
    pub fn rebuild_addr(&self, tag: u64, set_index: u64) -> u64 {
        (tag << (self.line_shift + self.num_sets.trailing_zeros())) | (set_index << self.line_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 32, 1)
    }

    fn l2() -> CacheGeometry {
        CacheGeometry::new(512 * 1024, 64, 4)
    }

    #[test]
    fn paper_l1_dimensions() {
        let g = l1();
        assert_eq!(g.num_sets(), 1024);
        assert_eq!(g.line_shift(), 5);
        assert_eq!(g.assoc(), 1);
        assert_eq!(g.size(), 32768);
        assert_eq!(g.line_size(), 32);
    }

    #[test]
    fn paper_l2_dimensions() {
        let g = l2();
        assert_eq!(g.num_sets(), 2048);
        assert_eq!(g.assoc(), 4);
    }

    #[test]
    fn address_decomposition() {
        let g = l1();
        let addr = 0x0001_2345u64;
        assert_eq!(g.line_addr(addr), 0x0001_2340);
        assert_eq!(g.offset(addr), 5);
        assert_eq!(g.set_index(addr), (addr >> 5) & 1023);
        assert_eq!(g.tag(addr), addr >> 15);
    }

    #[test]
    fn rebuild_addr_inverts_decomposition() {
        let g = l1();
        for addr in [0u64, 0x1000_0020, 0x7fff_ffe0, 0xdead_bee0] {
            let rebuilt = g.rebuild_addr(g.tag(addr), g.set_index(addr));
            assert_eq!(rebuilt, g.line_addr(addr));
        }
        let g = l2();
        let addr = 0x1234_5678u64;
        assert_eq!(
            g.rebuild_addr(g.tag(addr), g.set_index(addr)),
            g.line_addr(addr)
        );
    }

    #[test]
    fn same_line_predicate() {
        let g = l1();
        assert!(g.same_line(0x100, 0x11f));
        assert!(!g.same_line(0x11f, 0x120));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        CacheGeometry::new(3000, 32, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_assoc_panics() {
        CacheGeometry::new(1024, 32, 0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn oversized_assoc_panics() {
        CacheGeometry::new(64, 32, 4);
    }

    #[test]
    fn fully_associative_is_one_set() {
        let g = CacheGeometry::new(1024, 32, 32);
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.set_index(0xabcdef), 0);
    }
}
