//! The L1 → L2 → DRAM timing model (paper Table 1).

use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::geometry::CacheGeometry;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::stats::CacheStats;
use crate::tagarray::{LookupResult, TagArray};

/// Configuration of the two-level data-memory hierarchy.
///
/// The default matches the paper's Table 1: a 32KB direct-mapped
/// write-back write-allocate L1 with 32-byte lines and a 1-cycle hit, a
/// 512KB 4-way L2 with 64-byte lines and a 4-cycle access (fully
/// pipelined, up to 64 pending), and a 10-cycle main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 capacity in bytes.
    pub l1_size: u64,
    /// L1 line size in bytes.
    pub l1_line: u64,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L2 capacity in bytes.
    pub l2_size: u64,
    /// L2 line size in bytes.
    pub l2_line: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Number of L1 MSHRs (bound on outstanding misses).
    pub mshr_entries: usize,
}

impl HierarchyConfig {
    /// Serializes every configuration field.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.l1_size);
        w.put_u64(self.l1_line);
        w.put_u32(self.l1_assoc);
        w.put_u64(self.l1_hit_latency);
        w.put_u64(self.l2_size);
        w.put_u64(self.l2_line);
        w.put_u32(self.l2_assoc);
        w.put_u64(self.l2_latency);
        w.put_u64(self.mem_latency);
        w.put_usize(self.mshr_entries);
    }

    /// Decodes a configuration written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Any decode error from the reader.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            l1_size: r.get_u64()?,
            l1_line: r.get_u64()?,
            l1_assoc: r.get_u32()?,
            l1_hit_latency: r.get_u64()?,
            l2_size: r.get_u64()?,
            l2_line: r.get_u64()?,
            l2_assoc: r.get_u32()?,
            l2_latency: r.get_u64()?,
            mem_latency: r.get_u64()?,
            mshr_entries: r.get_usize()?,
        })
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1_size: 32 * 1024,
            l1_line: 32,
            l1_assoc: 1,
            l1_hit_latency: 1,
            l2_size: 512 * 1024,
            l2_line: 64,
            l2_assoc: 4,
            l2_latency: 4,
            mem_latency: 10,
            mshr_entries: 64,
        }
    }
}

/// The timing outcome of one data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the L1 (including hits on lines whose
    /// fill is still in flight — those report `l1_hit = false` only on the
    /// access that initiated the miss).
    pub l1_hit: bool,
    /// The cycle at which the data is available (loads) or the store is
    /// absorbed.
    pub ready_at: u64,
    /// The access was rejected because every MSHR is busy; the requester
    /// must retry on a later cycle. No state was modified.
    pub rejected: bool,
}

/// A non-blocking two-level data-memory hierarchy, tag-only.
///
/// Fills update the tag arrays immediately while the [`MshrFile`] carries
/// the outstanding-miss latency, so secondary accesses to an in-flight
/// line merge (they see a tag hit whose `ready_at` is the fill completion).
/// Dirty-victim writebacks are modelled as counted, latency-free events —
/// the paper's store-queue/writeback-buffer assumption.
///
/// # Examples
///
/// ```
/// use hbdc_mem::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::default());
/// let a = h.access(0x2000_0000, false, 0);
/// assert!(!a.l1_hit);
/// assert_eq!(a.ready_at, 15); // 1 (L1) + 4 (L2 miss probe) + 10 (DRAM)
/// let b = h.access(0x2000_0008, false, 1); // merges with in-flight fill
/// assert!(b.l1_hit);
/// assert_eq!(b.ready_at, 15);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: TagArray,
    l2: TagArray,
    mshrs: MshrFile,
    l1_stats: CacheStats,
    l2_stats: CacheStats,
    mem_writebacks: u64,
}

impl Hierarchy {
    /// Creates a cold hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1: TagArray::new(CacheGeometry::new(cfg.l1_size, cfg.l1_line, cfg.l1_assoc)),
            l2: TagArray::new(CacheGeometry::new(cfg.l2_size, cfg.l2_line, cfg.l2_assoc)),
            mshrs: MshrFile::new(cfg.mshr_entries),
            cfg,
            l1_stats: CacheStats::new("dl1"),
            l2_stats: CacheStats::new("l2"),
            mem_writebacks: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// L1 geometry (used by port models for line/bank decomposition).
    pub fn l1_geometry(&self) -> &CacheGeometry {
        self.l1.geometry()
    }

    /// Performs one access at cycle `now` and returns its timing.
    pub fn access(&mut self, addr: u64, is_store: bool, now: u64) -> AccessOutcome {
        self.mshrs.retire_completed(now);
        let line = self.l1.geometry().line_addr(addr);

        if self.l1.lookup(addr, is_store) == LookupResult::Hit {
            // Present — but the fill may still be in flight.
            let ready_at = match self.mshrs.ready_at(line) {
                Some(t) => t.max(now + self.cfg.l1_hit_latency),
                None => now + self.cfg.l1_hit_latency,
            };
            self.l1_stats.record_access(true, is_store);
            return AccessOutcome {
                l1_hit: true,
                ready_at,
                rejected: false,
            };
        }

        // The line may have been evicted while its fill is still in
        // flight (a conflicting fill displaced it). Merge with the
        // outstanding miss and restore the tags.
        if let Some(ready_at) = self.mshrs.ready_at(line) {
            self.l1_stats.record_access(false, is_store);
            if let Some(victim) = self.l1.fill(addr, is_store) {
                self.writeback_to_l2(victim);
            }
            return AccessOutcome {
                l1_hit: false,
                ready_at: ready_at.max(now + self.cfg.l1_hit_latency),
                rejected: false,
            };
        }

        // Primary miss: needs an MSHR before anything else changes.
        if !self.mshrs.has_free_entry() {
            return AccessOutcome {
                l1_hit: false,
                ready_at: now,
                rejected: true,
            };
        }
        self.l1_stats.record_access(false, is_store);

        // Probe L2.
        let l2_hit = self.l2.lookup(addr, false) == LookupResult::Hit;
        let latency = if l2_hit {
            self.cfg.l1_hit_latency + self.cfg.l2_latency
        } else {
            // Fill L2 from memory (write-allocate at L2 as well).
            if let Some(_victim) = self.l2.fill(addr, false) {
                self.mem_writebacks += 1;
            }
            self.cfg.l1_hit_latency + self.cfg.l2_latency + self.cfg.mem_latency
        };
        self.l2_stats.record_access(l2_hit, false);

        let ready_at = now + latency;
        let outcome = self.mshrs.register(line, ready_at);
        debug_assert!(matches!(outcome, MshrOutcome::Allocated));

        // Fill L1 immediately; the MSHR carries the latency.
        if let Some(victim) = self.l1.fill(addr, is_store) {
            self.writeback_to_l2(victim);
        }

        AccessOutcome {
            l1_hit: false,
            ready_at,
            rejected: false,
        }
    }

    fn writeback_to_l2(&mut self, victim_line: u64) {
        self.l1_stats.record_writeback();
        if self.l2.lookup(victim_line, true) == LookupResult::Miss {
            // Write-allocate the victim's line in L2.
            if self.l2.fill(victim_line, true).is_some() {
                self.mem_writebacks += 1;
            }
            self.l2_stats.record_access(false, true);
        } else {
            self.l2_stats.record_access(true, true);
        }
    }

    /// Read-only probe: would `addr` hit in L1 right now?
    pub fn probe_l1(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }

    /// The completion cycle of the earliest outstanding fill strictly
    /// after `now`, if any — the hierarchy's contribution to the
    /// simulator's next-event calendar. Non-mutating: MSHRs whose fills
    /// are already complete (retired lazily by the next access) are not
    /// future events.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.mshrs.next_ready_after(now)
    }

    /// Number of outstanding L1 misses.
    pub fn outstanding_misses(&mut self, now: u64) -> usize {
        self.mshrs.retire_completed(now);
        self.mshrs.outstanding()
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        &self.l1_stats
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        &self.l2_stats
    }

    /// Dirty-victim writebacks that reached main memory.
    pub fn mem_writebacks(&self) -> u64 {
        self.mem_writebacks
    }

    /// Serializes both tag arrays, the MSHR file, and all statistics.
    /// The configuration is *not* serialized here — callers persist it
    /// separately (see [`HierarchyConfig::save_state`]) and rebuild via
    /// [`Hierarchy::new`] before loading.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.l1.save_state(w);
        self.l2.save_state(w);
        self.mshrs.save_state(w);
        self.l1_stats.save_state(w);
        self.l2_stats.save_state(w);
        w.put_u64(self.mem_writebacks);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// hierarchy built with the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a geometry or capacity mismatch, or any
    /// decode error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.l1.load_state(r)?;
        self.l2.load_state(r)?;
        self.mshrs.load_state(r)?;
        self.l1_stats.load_state(r)?;
        self.l2_stats.load_state(r)?;
        self.mem_writebacks = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_latency_is_l1_l2_mem() {
        let mut h = hier();
        let a = h.access(0x1000_0000, false, 100);
        assert!(!a.l1_hit);
        assert!(!a.rejected);
        assert_eq!(a.ready_at, 100 + 1 + 4 + 10);
    }

    #[test]
    fn l2_hit_latency_after_l1_eviction() {
        let mut h = hier();
        h.access(0x0000_0000, false, 0); // fills L1+L2
        h.access(0x0000_8000, false, 100); // evicts L1 line (same DM set), fills L2
        let back = h.access(0x0000_0000, false, 200); // L1 miss, L2 hit
        assert!(!back.l1_hit);
        assert_eq!(back.ready_at, 200 + 1 + 4);
    }

    #[test]
    fn hit_latency_is_one_cycle() {
        let mut h = hier();
        h.access(0x4000, false, 0);
        let a = h.access(0x4010, false, 50);
        assert!(a.l1_hit);
        assert_eq!(a.ready_at, 51);
    }

    #[test]
    fn secondary_miss_merges_with_inflight_fill() {
        let mut h = hier();
        let first = h.access(0x6000, false, 0);
        let second = h.access(0x6008, false, 1);
        assert!(second.l1_hit);
        assert_eq!(second.ready_at, first.ready_at);
        // After the fill completes, same line is a plain 1-cycle hit.
        let third = h.access(0x6010, false, first.ready_at);
        assert_eq!(third.ready_at, first.ready_at + 1);
    }

    #[test]
    fn mshr_exhaustion_rejects_without_side_effects() {
        let mut h = Hierarchy::new(HierarchyConfig {
            mshr_entries: 1,
            ..HierarchyConfig::default()
        });
        h.access(0x0000, false, 0);
        let rejected = h.access(0x10_0000, false, 0);
        assert!(rejected.rejected);
        assert!(!h.probe_l1(0x10_0000));
        // After the first fill completes, the line can be requested.
        let ok = h.access(0x10_0000, false, 20);
        assert!(!ok.rejected);
    }

    #[test]
    fn next_event_reports_earliest_outstanding_fill() {
        let mut h = hier();
        assert_eq!(h.next_event(0), None);
        let a = h.access(0x1000_0000, false, 0); // miss, fills at 15
        let b = h.access(0x2000_0000, false, 3); // miss, fills at 18
        assert_eq!(h.next_event(3), Some(a.ready_at));
        assert_eq!(h.next_event(a.ready_at), Some(b.ready_at));
        assert_eq!(h.next_event(b.ready_at), None);
    }

    #[test]
    fn store_miss_write_allocates_and_dirties() {
        let mut h = hier();
        h.access(0x0000, true, 0); // store miss: allocate dirty
        assert!(h.probe_l1(0x0000));
        // Evict it: the dirty victim must be written back to L2.
        h.access(0x8000, false, 100);
        assert_eq!(h.l1_stats().writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut h = hier();
        h.access(0x0000, false, 0);
        h.access(0x8000, false, 100);
        assert_eq!(h.l1_stats().writebacks(), 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut h = hier();
        h.access(0x100, false, 0);
        h.access(0x104, false, 20);
        h.access(0x108, true, 40);
        assert_eq!(h.l1_stats().accesses(), 3);
        assert_eq!(h.l1_stats().misses(), 1);
        assert_eq!(h.l1_stats().hits(), 2);
        assert!((h.l1_stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merged_store_dirties_inflight_line() {
        let mut h = hier();
        h.access(0x0000, false, 0); // clean load miss in flight
        h.access(0x0008, true, 1); // merged store must dirty the line
        h.access(0x8000, false, 100); // evict → writeback expected
        assert_eq!(h.l1_stats().writebacks(), 1);
    }

    #[test]
    fn state_roundtrip_continues_bit_identically() {
        let mut h = hier();
        for i in 0..32u64 {
            h.access(i * 0x340, i % 3 == 0, i * 7);
        }
        let mut w = StateWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = hier();
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        // Identical accesses from here on produce identical outcomes.
        for i in 0..16u64 {
            let a = h.access(i * 0x2340, i % 2 == 0, 400 + i * 3);
            let b = restored.access(i * 0x2340, i % 2 == 0, 400 + i * 3);
            assert_eq!(a, b);
        }
        assert_eq!(restored.l1_stats().accesses(), h.l1_stats().accesses());
        assert_eq!(restored.l2_stats().misses(), h.l2_stats().misses());
        assert_eq!(restored.mem_writebacks(), h.mem_writebacks());
    }

    #[test]
    fn config_codec_roundtrip() {
        let cfg = HierarchyConfig::default();
        let mut w = StateWriter::new();
        cfg.save_state(&mut w);
        let bytes = w.into_bytes();
        let back = HierarchyConfig::load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn l2_capacity_eviction_reaches_memory() {
        // Tiny L2 to force dirty L2 victims out to memory.
        let mut h = Hierarchy::new(HierarchyConfig {
            l1_size: 64,
            l1_line: 32,
            l1_assoc: 1,
            l2_size: 128,
            l2_line: 64,
            l2_assoc: 1,
            ..HierarchyConfig::default()
        });
        // Store to many distinct lines; L1 (2 lines) and L2 (2 lines)
        // thrash, forcing dirty victims down the hierarchy.
        for i in 0..16u64 {
            h.access(i * 0x1000, true, i * 100);
        }
        assert!(h.l1_stats().writebacks() > 0);
        assert!(h.mem_writebacks() > 0);
    }
}
