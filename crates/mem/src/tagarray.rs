//! Tag store with true-LRU replacement and dirty bits.

use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::geometry::CacheGeometry;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64, // larger = more recently used
}

/// The result of a [`TagArray::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line is present; the access updated LRU (and the dirty bit for
    /// stores).
    Hit,
    /// The line is absent. No state was changed; call
    /// [`TagArray::fill`] to bring it in.
    Miss,
}

/// A tag-only cache array: per-set ways with valid/dirty bits and true-LRU
/// replacement. Used for both the direct-mapped L1 (where LRU degenerates
/// to trivial) and the 4-way L2 of the paper's memory system.
///
/// This models *presence* only — data contents live in the functional
/// [`Memory`](crate::Memory).
///
/// # Examples
///
/// ```
/// use hbdc_mem::{CacheGeometry, LookupResult, TagArray};
///
/// let mut tags = TagArray::new(CacheGeometry::new(1024, 32, 2));
/// assert_eq!(tags.lookup(0x40, false), LookupResult::Miss);
/// assert_eq!(tags.fill(0x40, false), None); // no victim: set had room
/// assert_eq!(tags.lookup(0x40, false), LookupResult::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    geom: CacheGeometry,
    ways: Vec<Way>, // num_sets * assoc, set-major
    clock: u64,
}

impl TagArray {
    /// Creates an empty (all-invalid) tag array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let n = (geom.num_sets() * geom.assoc() as u64) as usize;
        Self {
            geom,
            ways: vec![Way::default(); n],
            clock: 0,
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.geom.set_index(addr) as usize;
        let assoc = self.geom.assoc() as usize;
        set * assoc..(set + 1) * assoc
    }

    /// Probes for `addr`'s line. On a hit, refreshes LRU and, if
    /// `is_store`, marks the line dirty. On a miss, leaves all state
    /// untouched.
    pub fn lookup(&mut self, addr: u64, is_store: bool) -> LookupResult {
        let tag = self.geom.tag(addr);
        let range = self.set_range(addr);
        self.clock += 1;
        let clock = self.clock;
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.lru = clock;
                if is_store {
                    way.dirty = true;
                }
                return LookupResult::Hit;
            }
        }
        LookupResult::Miss
    }

    /// Read-only probe: whether `addr`'s line is present. Does not touch
    /// LRU or dirty state.
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.geom.tag(addr);
        self.ways[self.set_range(addr)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Fills `addr`'s line, evicting the LRU way if the set is full.
    ///
    /// Returns the line-aligned address of a *dirty* victim that must be
    /// written back, or `None` if no writeback is needed. The new line is
    /// marked dirty when `is_store` (write-allocate semantics).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line is already present — callers
    /// must only fill after a miss.
    pub fn fill(&mut self, addr: u64, is_store: bool) -> Option<u64> {
        debug_assert!(!self.probe(addr), "fill of already-present line");
        let tag = self.geom.tag(addr);
        let set = self.geom.set_index(addr);
        let range = self.set_range(addr);
        self.clock += 1;
        let clock = self.clock;

        let ways = &mut self.ways[range];
        let victim_idx = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                // Evict true-LRU.
                let (i, _) = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .expect("associativity >= 1");
                i
            }
        };
        let victim = ways[victim_idx];
        let writeback =
            (victim.valid && victim.dirty).then(|| self.geom.rebuild_addr(victim.tag, set));
        ways[victim_idx] = Way {
            valid: true,
            dirty: is_store,
            tag,
            lru: clock,
        };
        writeback
    }

    /// Invalidates `addr`'s line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let tag = self.geom.tag(addr);
        let range = self.set_range(addr);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return way.dirty;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Serializes every way (valid/dirty/tag/LRU) plus the LRU clock.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.ways.len());
        for way in &self.ways {
            w.put_bool(way.valid);
            w.put_bool(way.dirty);
            w.put_u64(way.tag);
            w.put_u64(way.lru);
        }
        w.put_u64(self.clock);
    }

    /// Restores ways written by [`save_state`](Self::save_state) into an
    /// array built with the same geometry.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the way count does not match this
    /// geometry, or any decode error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.ways.len() {
            return Err(SnapError::Corrupt(format!(
                "tag array has {} ways, snapshot carries {n}",
                self.ways.len()
            )));
        }
        for way in &mut self.ways {
            way.valid = r.get_bool()?;
            way.dirty = r.get_bool()?;
            way.tag = r.get_u64()?;
            way.lru = r.get_u64()?;
        }
        self.clock = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm() -> TagArray {
        TagArray::new(CacheGeometry::new(32 * 1024, 32, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = dm();
        assert_eq!(t.lookup(0x1000, false), LookupResult::Miss);
        assert_eq!(t.fill(0x1000, false), None);
        assert_eq!(t.lookup(0x1000, false), LookupResult::Hit);
        assert_eq!(t.lookup(0x101f, false), LookupResult::Hit); // same line
        assert_eq!(t.lookup(0x1020, false), LookupResult::Miss); // next line
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut t = dm();
        t.fill(0x0000, false);
        // 32KB direct-mapped: address + 32K maps to the same set.
        assert_eq!(t.lookup(0x8000, false), LookupResult::Miss);
        assert_eq!(t.fill(0x8000, false), None); // victim was clean
        assert_eq!(t.lookup(0x0000, false), LookupResult::Miss); // evicted
    }

    #[test]
    fn dirty_victim_reports_writeback_address() {
        let mut t = dm();
        t.fill(0x0040, true); // dirty fill (write-allocate store)
        let wb = t.fill(0x8040, false);
        assert_eq!(wb, Some(0x0040));
    }

    #[test]
    fn store_hit_sets_dirty() {
        let mut t = dm();
        t.fill(0x0040, false);
        assert_eq!(t.lookup(0x0048, true), LookupResult::Hit);
        let wb = t.fill(0x8040, false);
        assert_eq!(wb, Some(0x0040));
    }

    #[test]
    fn lru_evicts_least_recent_in_set() {
        // 2-way, 2 sets, 32B lines: set stride is 64B.
        let mut t = TagArray::new(CacheGeometry::new(128, 32, 2));
        t.fill(0x000, false); // set 0, way A
        t.fill(0x040, false); // set 0, way B  (0x40 >> 5 = 2, set = 0)
        t.lookup(0x000, false); // touch A: B is now LRU
        t.fill(0x080, false); // set 0 again: evicts B
        assert!(t.probe(0x000));
        assert!(!t.probe(0x040));
        assert!(t.probe(0x080));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut t = TagArray::new(CacheGeometry::new(128, 32, 2));
        t.fill(0x000, false);
        t.fill(0x040, false);
        t.probe(0x000); // must NOT refresh LRU
        t.fill(0x080, false); // evicts 0x000 (the true LRU)
        assert!(!t.probe(0x000));
        assert!(t.probe(0x040));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut t = dm();
        t.fill(0x0040, true);
        assert!(t.invalidate(0x0040));
        assert!(!t.probe(0x0040));
        assert!(!t.invalidate(0x0040)); // already gone
    }

    #[test]
    fn resident_lines_counts_fills() {
        let mut t = dm();
        assert_eq!(t.resident_lines(), 0);
        t.fill(0x0000, false);
        t.fill(0x0020, false);
        assert_eq!(t.resident_lines(), 2);
    }

    #[test]
    fn state_roundtrip_preserves_lru_and_dirty() {
        let mut t = TagArray::new(CacheGeometry::new(128, 32, 2));
        t.fill(0x000, true);
        t.fill(0x040, false);
        t.lookup(0x000, false); // refresh LRU of way A
        let mut w = StateWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = TagArray::new(CacheGeometry::new(128, 32, 2));
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        // Same fill now evicts the same victim in both arrays.
        assert_eq!(restored.fill(0x080, false), t.fill(0x080, false));
        assert_eq!(restored.resident_lines(), t.resident_lines());
    }

    #[test]
    fn fill_into_4way_set_uses_free_ways_first() {
        let mut t = TagArray::new(CacheGeometry::new(512 * 1024, 64, 4));
        let stride = 512 * 1024 / 4; // same set, different tags
        for i in 0..4u64 {
            assert_eq!(t.fill(i * stride, false), None);
        }
        for i in 0..4u64 {
            assert!(t.probe(i * stride));
        }
        // Fifth fill evicts exactly one (the LRU = first filled).
        t.fill(4 * stride, false);
        assert!(!t.probe(0));
        assert!(t.probe(stride));
    }
}
