//! `hbdc-mem`: the memory substrate for the cache-bandwidth study.
//!
//! This crate provides everything below the port-arbitration layer:
//!
//! * [`Memory`] — a sparse, paged, byte-addressable flat memory used by the
//!   functional emulator for program data.
//! * [`CacheGeometry`] — size/line/associativity arithmetic (index, tag,
//!   line address, offset extraction).
//! * [`TagArray`] — a tag store with true-LRU replacement and dirty bits;
//!   the building block for both cache levels.
//! * [`BankMapper`] — bank-selection functions for interleaved caches: the
//!   paper's bit selection (Figure 2c), plus XOR-fold and pseudo-random
//!   mappings as ablations (paper §3.2 discusses the tradeoff).
//! * [`MshrFile`] — miss status holding registers for the non-blocking L1.
//! * [`Hierarchy`] — the L1 → L2 → DRAM timing model of the paper's
//!   Table 1 (32KB direct-mapped write-back L1, 512KB 4-way L2 at 4
//!   cycles, 10-cycle main memory).
//!
//! # Examples
//!
//! ```
//! use hbdc_mem::{CacheGeometry, Hierarchy, HierarchyConfig};
//!
//! let geom = CacheGeometry::new(32 * 1024, 32, 1); // the paper's L1
//! assert_eq!(geom.num_sets(), 1024);
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::default());
//! let miss = hier.access(0x1000_0000, false, 0); // cold miss
//! assert!(!miss.l1_hit);
//! let hit = hier.access(0x1000_0004, false, 1); // same line: hit
//! assert!(hit.l1_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bankmap;
mod geometry;
mod hierarchy;
mod memory;
mod mshr;
mod stats;
mod tagarray;

pub use bankmap::{BankMapper, BankSelect};
pub use geometry::CacheGeometry;
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig};
pub use memory::Memory;
pub use mshr::{MshrFile, MshrOutcome};
pub use stats::CacheStats;
pub use tagarray::{LookupResult, TagArray};
