//! Bank-selection functions for interleaved caches.
//!
//! The paper (§3.2, Figure 2c) uses *bit selection* — the low bits of the
//! cache-line number choose the bank, giving a line-interleaved layout.
//! It notes that "many bank selection functions have been proposed"
//! ([10][11]) but argues complex functions are unattractive for caches and
//! that the choice "may not be as critical as we thought since much of the
//! loss of bandwidth due to same bank collisions map to the same cache
//! line." The alternatives here exist to test exactly that claim
//! (ablation A in DESIGN.md).

/// A bank-selection function: maps an address to a bank index.
///
/// All variants operate on the *line number* (address shifted down by the
/// line size), so the data layout is always line-interleaved — the paper's
/// requirement for avoiding tag replication (§5.1).
///
/// # Examples
///
/// ```
/// use hbdc_mem::BankMapper;
///
/// let m = BankMapper::bit_select(4, 32);
/// assert_eq!(m.bank_of(0x00), 0);
/// assert_eq!(m.bank_of(0x20), 1); // next line, next bank
/// assert_eq!(m.bank_of(0x80), 0); // wraps around 4 banks
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankMapper {
    kind: BankSelect,
    banks: u32,
    line_shift: u32,
}

/// Which bank-selection function an interleaved cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankSelect {
    /// Bit selection on the line number (the paper's choice, Figure 2c).
    #[default]
    BitSelect,
    /// XOR-fold of successive bank-width fields of the line number.
    XorFold,
    /// Pseudo-random multiplicative hash (Rau, ISCA-18 1991).
    PseudoRandom,
}

impl BankMapper {
    /// Creates a mapper with an explicit selection function.
    pub fn with_select(kind: BankSelect, banks: u32, line_size: u64) -> Self {
        assert!(
            banks >= 1 && banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            kind,
            banks,
            line_shift: line_size.trailing_zeros(),
        }
    }

    /// Bit selection (the paper's choice): bank = low bits of line number.
    pub fn bit_select(banks: u32, line_size: u64) -> Self {
        Self::with_select(BankSelect::BitSelect, banks, line_size)
    }

    /// XOR-fold: XORs successive bank-width fields of the line number.
    /// Spreads strided streams whose stride is a multiple of
    /// `banks * line_size` (which defeats bit selection).
    pub fn xor_fold(banks: u32, line_size: u64) -> Self {
        Self::with_select(BankSelect::XorFold, banks, line_size)
    }

    /// Pseudo-random interleaving in the spirit of Rau [ISCA-18, 1991]:
    /// hashes the line number with a fixed multiplicative mix so that any
    /// fixed stride distributes near-uniformly.
    pub fn pseudo_random(banks: u32, line_size: u64) -> Self {
        Self::with_select(BankSelect::PseudoRandom, banks, line_size)
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Maps an address to its bank index in `0..banks`.
    pub fn bank_of(&self, addr: u64) -> u32 {
        let line = addr >> self.line_shift;
        let mask = (self.banks - 1) as u64;
        let bank = match self.kind {
            BankSelect::BitSelect => line & mask,
            BankSelect::XorFold => {
                let w = self.banks.trailing_zeros().max(1);
                let mut acc = 0u64;
                let mut v = line;
                while v != 0 {
                    acc ^= v & mask;
                    v >>= w;
                }
                acc & mask
            }
            BankSelect::PseudoRandom => {
                // Fibonacci-style multiplicative hash; the constant is the
                // 64-bit golden-ratio multiplier.
                (line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) & mask
            }
        };
        bank as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_select_is_line_interleaved() {
        let m = BankMapper::bit_select(4, 32);
        for line in 0u64..16 {
            assert_eq!(m.bank_of(line * 32), (line % 4) as u32);
            // Every byte of a line maps to the same bank.
            assert_eq!(m.bank_of(line * 32 + 31), (line % 4) as u32);
        }
    }

    #[test]
    fn single_bank_always_zero() {
        for m in [
            BankMapper::bit_select(1, 32),
            BankMapper::xor_fold(1, 32),
            BankMapper::pseudo_random(1, 32),
        ] {
            assert_eq!(m.bank_of(0xdead_beef), 0);
            assert_eq!(m.banks(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_banks_panics() {
        BankMapper::bit_select(3, 32);
    }

    #[test]
    fn all_mappers_stay_in_range() {
        for m in [
            BankMapper::bit_select(8, 32),
            BankMapper::xor_fold(8, 32),
            BankMapper::pseudo_random(8, 32),
        ] {
            for i in 0..1000u64 {
                assert!(m.bank_of(i * 13 + 7) < 8);
            }
        }
    }

    #[test]
    fn all_mappers_are_line_consistent() {
        // Two addresses in the same line must always hit the same bank —
        // otherwise a single access would span banks.
        for m in [
            BankMapper::bit_select(4, 32),
            BankMapper::xor_fold(4, 32),
            BankMapper::pseudo_random(4, 32),
        ] {
            for line in 0u64..200 {
                let base = line * 32;
                let b = m.bank_of(base);
                for off in [1u64, 8, 16, 31] {
                    assert_eq!(m.bank_of(base + off), b);
                }
            }
        }
    }

    #[test]
    fn xor_fold_spreads_power_of_two_strides() {
        // Stride of banks*line_size defeats bit selection entirely (all
        // references land in bank 0) but xor-fold must spread them.
        let bits = BankMapper::bit_select(4, 32);
        let fold = BankMapper::xor_fold(4, 32);
        let stride = 4 * 32u64;
        let bit_banks: Vec<u32> = (0..64).map(|i| bits.bank_of(i * stride)).collect();
        assert!(bit_banks.iter().all(|&b| b == 0));
        let fold_banks: std::collections::HashSet<u32> =
            (0..64).map(|i| fold.bank_of(i * stride)).collect();
        assert!(fold_banks.len() > 1);
    }

    #[test]
    fn pseudo_random_is_roughly_uniform_on_sequential_lines() {
        let m = BankMapper::pseudo_random(4, 32);
        let mut counts = [0u32; 4];
        for line in 0..4000u64 {
            counts[m.bank_of(line * 32) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed distribution: {counts:?}");
        }
    }
}
