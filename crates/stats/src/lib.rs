//! Statistics and reporting utilities for the `hbdc` simulator family.
//!
//! Every experiment harness in this workspace reports through the small set
//! of primitives defined here:
//!
//! * [`Counter`] — a named monotonic event counter.
//! * [`Histogram`] — a bounded integer histogram with overflow bucket.
//! * [`RunningStats`] — single-pass mean/variance/min/max.
//! * [`summary`] — arithmetic and geometric means over slices.
//! * [`Table`] — a plain-text table renderer used to print the paper's
//!   tables (Table 2, Table 3, Table 4) and figure data series.
//!
//! # Examples
//!
//! ```
//! use hbdc_stats::{Counter, Table};
//!
//! let mut hits = Counter::new("dl1.hits");
//! hits.add(3);
//! assert_eq!(hits.value(), 3);
//!
//! let mut t = Table::new(vec!["program".into(), "ipc".into()]);
//! t.row(vec!["swim".into(), "6.36".into()]);
//! assert!(t.render().contains("swim"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod running;
pub mod summary;
mod table;

pub use counter::Counter;
pub use histogram::Histogram;
pub use running::RunningStats;
pub use table::{Align, Table};

/// Formats a ratio as a percentage string with two decimals, e.g. `12.34%`.
///
/// # Examples
///
/// ```
/// assert_eq!(hbdc_stats::percent(0.5), "50.00%");
/// ```
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with three decimals, the precision the paper uses for IPC.
///
/// # Examples
///
/// ```
/// assert_eq!(hbdc_stats::ipc(6.2019), "6.202");
/// ```
pub fn ipc(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats_two_decimals() {
        assert_eq!(percent(0.123456), "12.35%");
        assert_eq!(percent(0.0), "0.00%");
        assert_eq!(percent(1.0), "100.00%");
    }

    #[test]
    fn ipc_formats_three_decimals() {
        assert_eq!(ipc(0.0), "0.000");
        assert_eq!(ipc(18.6), "18.600");
    }
}
