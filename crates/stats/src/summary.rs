//! Aggregate summaries over slices: arithmetic and geometric means.
//!
//! The paper reports "SPECint Ave." and "SPECfp Ave." rows as arithmetic
//! means of per-benchmark IPC; [`arithmetic_mean`] regenerates those rows.
//! [`geometric_mean`] is provided for speedup-style summaries used by the
//! ablation harnesses.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(hbdc_stats::summary::arithmetic_mean(&[1.0, 3.0]), 2.0);
/// ```
pub fn arithmetic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice; `0.0` for an empty slice.
///
/// Computed in log space for numerical robustness.
///
/// # Panics
///
/// Panics if any element is not strictly positive — a geometric mean over
/// non-positive ratios is meaningless and always indicates a harness bug.
///
/// # Examples
///
/// ```
/// let g = hbdc_stats::summary::geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires strictly positive inputs"
    );
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Relative improvement of `new` over `old`, as a fraction.
///
/// Returns `0.0` when `old` is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(hbdc_stats::summary::improvement(2.0, 3.0), 0.5);
/// ```
pub fn improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_mean_empty_is_zero() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert!((arithmetic_mean(&[2.0, 4.0, 9.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_empty_is_zero() {
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn improvement_basic() {
        assert!((improvement(4.0, 6.0) - 0.5).abs() < 1e-12);
        assert_eq!(improvement(0.0, 5.0), 0.0);
        assert!((improvement(4.0, 2.0) + 0.5).abs() < 1e-12);
    }
}
