//! Plain-text table rendering for experiment reports.

use std::fmt;

/// Column alignment within a rendered [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-align cell contents (default; used for program names).
    #[default]
    Left,
    /// Right-align cell contents (used for numeric columns).
    Right,
}

/// A simple monospace table renderer.
///
/// The experiment binaries print the paper's tables through this type so
/// every report in `EXPERIMENTS.md` has a uniform, diff-friendly format.
///
/// # Examples
///
/// ```
/// use hbdc_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["program".into(), "ipc".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["compress".into(), "2.66".into()]);
/// t.row(vec!["gcc".into(), "2.65".into()]);
/// let s = t.render();
/// assert!(s.contains("compress"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first. The common layout for
    /// the paper's tables: a program-name column followed by numbers.
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a horizontal separator row (rendered as a rule).
    pub fn rule(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators excluded).
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the table as CSV (separator rows omitted; cells containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut emit = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers);
        for row in &self.rows {
            if !row.is_empty() {
                emit(row);
            }
        }
        out
    }

    /// Renders the table to a `String`.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };

        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&render_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
            } else {
                out.push_str(&render_row(row, &widths, &self.aligns));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.numeric();
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "22.5".into()]);
        t
    }

    #[test]
    fn render_pads_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows end aligned at the same column for the
        // right-aligned numeric field.
        let col_end = |l: &str| l.len();
        assert_eq!(col_end(lines[2]), col_end(lines[3]));
    }

    #[test]
    fn numeric_right_aligns_all_but_first() {
        let s = sample().render();
        // "1.0" should be right-aligned under "22.5".
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn rule_renders_dashes() {
        let mut t = sample();
        t.rule();
        t.row(vec!["avg".into(), "11.75".into()]);
        let s = t.render();
        let dash_lines = s.lines().filter(|l| l.chars().all(|c| c == '-')).count();
        assert_eq!(dash_lines, 2); // header rule + explicit rule
    }

    #[test]
    fn len_ignores_rules() {
        let mut t = sample();
        t.rule();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_skips_rules_and_quotes_commas() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "1".into()]);
        t.rule();
        t.row(vec!["plain".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",1\nplain,2\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["say \"hi\",ok".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\",ok\""));
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
    }
}
