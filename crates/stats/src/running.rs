//! Single-pass running statistics (Welford's algorithm).

/// Single-pass mean / variance / min / max over a stream of `f64` samples.
///
/// Uses Welford's online algorithm, so it is numerically stable even over
/// billions of samples.
///
/// # Examples
///
/// ```
/// use hbdc_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStats::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_extremes() {
        let mut s = RunningStats::new();
        for x in [3.0, -1.0, 10.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn single_sample_variance_is_zero() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
