//! Bounded integer histograms with an overflow bucket.

use std::fmt;

use hbdc_snap::{SnapError, StateReader, StateWriter};

/// A histogram over small non-negative integer samples with a fixed number
/// of direct buckets and a single overflow bucket.
///
/// Used throughout the workspace for distributions such as "memory accesses
/// granted per cycle" or "combined references per line-buffer fill", where
/// the interesting domain is `0..=N` for small `N`.
///
/// # Examples
///
/// ```
/// use hbdc_stats::Histogram;
///
/// let mut h = Histogram::new("grants/cycle", 4);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// h.record(99); // overflow
/// assert_eq!(h.count(2), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: String,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with direct buckets for values `0..=max_value`.
    ///
    /// # Panics
    ///
    /// Panics if `max_value` exceeds `1 << 20`, a guard against accidentally
    /// allocating an enormous bucket array from an unvalidated config value.
    pub fn new(name: impl Into<String>, max_value: usize) -> Self {
        assert!(max_value <= 1 << 20, "histogram bucket range too large");
        Self {
            name: name.into(),
            buckets: vec![0; max_value + 1],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        if let Some(b) = self.buckets.get_mut(value) {
            *b += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value as u64;
    }

    /// Records `count` identical samples of `value` in O(1), exactly
    /// equivalent to calling [`record`](Self::record) `count` times.
    /// Counts saturate instead of wrapping so bulk accounting over very
    /// long spans can never corrupt the histogram.
    pub fn record_n(&mut self, value: usize, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(b) = self.buckets.get_mut(value) {
            *b = b.saturating_add(count);
        } else {
            self.overflow = self.overflow.saturating_add(count);
        }
        self.total = self.total.saturating_add(count);
        self.sum = self
            .sum
            .saturating_add((value as u64).saturating_mul(count));
    }

    /// Number of samples recorded exactly at `value` (0 if out of range).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Number of samples that exceeded the direct bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded samples; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of samples recorded at exactly `value`; `0.0` if empty.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Iterates over `(value, count)` pairs for the direct buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate()
    }

    /// The smallest direct-bucket value `v` such that at least
    /// `q * total` samples are `<= v`. Overflow samples count as larger
    /// than every direct bucket. Returns `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]");
        if self.total == 0 {
            return None;
        }
        let threshold = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, c) in self.iter() {
            seen += c;
            if seen >= threshold {
                return Some(v);
            }
        }
        // Quantile falls in the overflow bucket: report the last direct
        // bucket as a floor.
        Some(self.buckets.len() - 1)
    }

    /// Serializes the counts (the name and bucket range come from the
    /// constructor and are not written).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.overflow);
        w.put_u64(self.total);
        w.put_u64(self.sum);
    }

    /// Restores counts written by [`save_state`](Self::save_state) into a
    /// histogram constructed with the same bucket range.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the serialized bucket count does not
    /// match this histogram's range, or any decode error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.buckets.len() {
            return Err(SnapError::Corrupt(format!(
                "histogram `{}`: {} serialized buckets, {} configured",
                self.name,
                n,
                self.buckets.len()
            )));
        }
        for b in &mut self.buckets {
            *b = r.get_u64()?;
        }
        self.overflow = r.get_u64()?;
        self.total = r.get_u64()?;
        self.sum = r.get_u64()?;
        Ok(())
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (n={}, mean={:.3})",
            self.name,
            self.total,
            self.mean()
        )?;
        for (v, c) in self.iter() {
            if c > 0 {
                writeln!(f, "  {v:>4}: {c}")?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  >{}: {}", self.buckets.len() - 1, self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_range() {
        let mut h = Histogram::new("h", 3);
        for v in [0, 1, 1, 3] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn overflow_counts_out_of_range() {
        let mut h = Histogram::new("h", 1);
        h.record(2);
        h.record(100);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn mean_includes_overflow_values() {
        let mut h = Histogram::new("h", 1);
        h.record(0);
        h.record(4); // overflow bucket, but sum still tracks true value
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_mean_and_fraction_are_zero() {
        let h = Histogram::new("h", 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction(0), 0.0);
    }

    #[test]
    fn fraction_is_normalized() {
        let mut h = Histogram::new("h", 4);
        h.record(1);
        h.record(1);
        h.record(2);
        assert!((h.fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new("h", 10);
        for v in [1, 2, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.8), Some(3));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(Histogram::new("e", 4).quantile(0.5), None);
    }

    #[test]
    fn quantile_with_overflow_reports_last_bucket() {
        let mut h = Histogram::new("h", 2);
        h.record(0);
        h.record(50);
        h.record(60);
        assert_eq!(h.quantile(1.0), Some(2));
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn quantile_rejects_bad_q() {
        Histogram::new("h", 2).quantile(1.5);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new("h", 4);
        let mut ticked = Histogram::new("h", 4);
        for (v, n) in [(0, 3), (2, 5), (4, 1), (9, 2)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                ticked.record(v);
            }
        }
        assert_eq!(bulk, ticked);
        assert!((bulk.mean() - ticked.mean()).abs() < 1e-12);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(bulk.quantile(q), ticked.quantile(q));
        }
    }

    #[test]
    fn record_n_zero_count_is_a_no_op() {
        let mut h = Histogram::new("h", 4);
        h.record_n(2, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(2), 0);
    }

    #[test]
    fn record_n_saturates_instead_of_wrapping() {
        let mut h = Histogram::new("h", 2);
        h.record_n(1, u64::MAX);
        h.record_n(1, 5); // would wrap without saturation
        assert_eq!(h.count(1), u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        h.record_n(50, u64::MAX); // overflow bucket saturates too
        assert_eq!(h.overflow(), u64::MAX);
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut h = Histogram::new("h", 4);
        for v in [0, 1, 1, 3, 99] {
            h.record(v);
        }
        let mut w = StateWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Histogram::new("h", 4);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored, h);
    }

    #[test]
    fn load_rejects_mismatched_range() {
        let h = Histogram::new("h", 4);
        let mut w = StateWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = Histogram::new("h", 8);
        assert!(matches!(
            wrong.load_state(&mut StateReader::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn display_lists_nonzero_buckets() {
        let mut h = Histogram::new("h", 2);
        h.record(1);
        h.record(9);
        let s = h.to_string();
        assert!(s.contains("1:"));
        assert!(s.contains(">2: 1"));
    }
}
