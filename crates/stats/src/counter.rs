//! Named monotonic event counters.

use std::fmt;

use hbdc_snap::{SnapError, StateReader, StateWriter};

/// A named, monotonically increasing event counter.
///
/// Counters are the basic accounting primitive of every simulator in this
/// workspace: committed instructions, cache hits, bank conflicts, combined
/// accesses, and so on.
///
/// # Examples
///
/// ```
/// use hbdc_stats::Counter;
///
/// let mut conflicts = Counter::new("bank.conflicts");
/// conflicts.incr();
/// conflicts.add(4);
/// assert_eq!(conflicts.value(), 5);
/// assert_eq!(conflicts.name(), "bank.conflicts");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a new counter with the given name, starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Resets the counter to zero, keeping its name.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Serializes the count (the name comes from the constructor and is
    /// not written).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.value);
    }

    /// Restores a count written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Any decode error from the reader.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.value = r.get_u64()?;
        Ok(())
    }

    /// This counter's value as a fraction of `denominator`'s value.
    ///
    /// Returns `0.0` when the denominator is zero, which is the convention
    /// every report in this workspace wants (an event rate over an empty run
    /// is reported as zero, not NaN).
    pub fn rate_of(&self, denominator: &Counter) -> f64 {
        if denominator.value == 0 {
            0.0
        } else {
            self.value as f64 / denominator.value as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counter_is_zero() {
        let c = Counter::new("x");
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn incr_and_add_accumulate() {
        let mut c = Counter::new("x");
        c.incr();
        c.incr();
        c.add(10);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn reset_zeroes_but_keeps_name() {
        let mut c = Counter::new("x");
        c.add(7);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn rate_of_handles_zero_denominator() {
        let a = Counter::new("a");
        let b = Counter::new("b");
        assert_eq!(a.rate_of(&b), 0.0);
    }

    #[test]
    fn rate_of_computes_fraction() {
        let mut a = Counter::new("a");
        let mut b = Counter::new("b");
        a.add(1);
        b.add(4);
        assert!((a.rate_of(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut c = Counter::new("hits");
        c.add(17);
        let mut w = StateWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Counter::new("hits");
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored, c);
    }

    #[test]
    fn display_contains_name_and_value() {
        let mut c = Counter::new("hits");
        c.add(3);
        assert_eq!(c.to_string(), "hits = 3");
    }
}
