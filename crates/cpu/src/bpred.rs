//! Branch predictors and front-end configuration.
//!
//! The paper deliberately runs a *perfect* front end ("we assume a
//! perfect branch predictor", §2.1) so that data supply is the only
//! bottleneck, while acknowledging (§2.2) that real speculative machines
//! put extra pressure on the memory system. This module relaxes that
//! assumption: pluggable direction predictors with a misprediction
//! redirect penalty, so the sensitivity of the bandwidth results to the
//! perfect-front-end idealization can be measured (the
//! `frontend_sensitivity` experiment binary).
//!
//! Modeling scope: a mispredicted branch stalls fetch until the branch
//! resolves (plus a fixed redirect penalty). Wrong-path instructions are
//! not executed — with a functional-first emulator the wrong-path
//! register state is unavailable — so wrong-path cache *pollution* is out
//! of scope; the modeled cost is fetch starvation, which is the
//! first-order IPC effect.

use hbdc_snap::{SnapError, StateReader, StateWriter};

/// A branch direction predictor.
///
/// Implementations are table-based hardware models: they are *consulted*
/// at fetch with the branch's PC and *trained* with the actual outcome.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u32) -> bool;

    /// Trains the predictor with the branch's resolved direction.
    fn train(&mut self, pc: u32, taken: bool);

    /// A short label for reports.
    fn label(&self) -> String;

    /// Serializes the predictor's learned state (counters, history) for a
    /// checkpoint. Stateless predictors write nothing (the default).
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// predictor of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated stream or a geometry mismatch.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Front-end configuration: perfect (the paper's assumption) or a real
/// predictor with a redirect penalty in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// Perfect branch prediction — the paper's Table 1 machine.
    #[default]
    Perfect,
    /// A real direction predictor; mispredictions stall fetch until the
    /// branch resolves, plus `redirect_penalty` cycles.
    Predicted {
        /// Which predictor.
        kind: PredictorKind,
        /// Extra cycles after branch resolution before fetch resumes.
        redirect_penalty: u32,
    },
}

/// Table-based predictor families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Static always-taken.
    AlwaysTaken,
    /// Per-PC two-bit saturating counters (bimodal), `entries` slots.
    Bimodal {
        /// Table entries (power of two).
        entries: usize,
    },
    /// Global-history XOR PC indexed two-bit counters (gshare).
    Gshare {
        /// Table entries (power of two).
        entries: usize,
        /// Global history bits.
        history_bits: u32,
    },
}

impl PredictorKind {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics if a table size is not a power of two.
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorKind::Bimodal { entries } => Box::new(Bimodal::new(entries)),
            PredictorKind::Gshare {
                entries,
                history_bits,
            } => Box::new(Gshare::new(entries, history_bits)),
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        match *self {
            PredictorKind::AlwaysTaken => w.put_u8(0),
            PredictorKind::Bimodal { entries } => {
                w.put_u8(1);
                w.put_usize(entries);
            }
            PredictorKind::Gshare {
                entries,
                history_bits,
            } => {
                w.put_u8(2);
                w.put_usize(entries);
                w.put_u32(history_bits);
            }
        }
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(PredictorKind::AlwaysTaken),
            1 => Ok(PredictorKind::Bimodal {
                entries: r.get_usize()?,
            }),
            2 => Ok(PredictorKind::Gshare {
                entries: r.get_usize()?,
                history_bits: r.get_u32()?,
            }),
            other => Err(SnapError::Corrupt(format!(
                "unknown predictor kind tag {other}"
            ))),
        }
    }
}

impl FrontEnd {
    /// Serializes the front-end configuration with stable tags (perfect =
    /// 0, predicted = 1).
    pub fn save_state(&self, w: &mut StateWriter) {
        match *self {
            FrontEnd::Perfect => w.put_u8(0),
            FrontEnd::Predicted {
                kind,
                redirect_penalty,
            } => {
                w.put_u8(1);
                kind.save_state(w);
                w.put_u32(redirect_penalty);
            }
        }
    }

    /// Reads a front-end configuration written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Corrupt`] on an unknown tag.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(FrontEnd::Perfect),
            1 => Ok(FrontEnd::Predicted {
                kind: PredictorKind::load_state(r)?,
                redirect_penalty: r.get_u32()?,
            }),
            other => Err(SnapError::Corrupt(format!("unknown front-end tag {other}"))),
        }
    }
}

/// Static always-taken prediction.
#[derive(Debug, Default)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u32) -> bool {
        true
    }

    fn train(&mut self, _pc: u32, _taken: bool) {}

    fn label(&self) -> String {
        "always-taken".into()
    }
}

/// Two-bit saturating counter, the classic state machine.
#[derive(Debug, Clone, Copy, Default)]
struct TwoBit(u8); // 0,1 predict not-taken; 2,3 predict taken

impl TwoBit {
    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Bimodal predictor: a PC-indexed table of two-bit counters.
#[derive(Debug)]
pub struct Bimodal {
    table: Vec<TwoBit>,
    mask: usize,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            table: vec![TwoBit(1); entries], // weakly not-taken
            mask: entries - 1,
        }
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: u32) -> bool {
        self.table[pc as usize & self.mask].predict()
    }

    fn train(&mut self, pc: u32, taken: bool) {
        self.table[pc as usize & self.mask].train(taken);
    }

    fn label(&self) -> String {
        format!("bimodal-{}", self.table.len())
    }

    fn save_state(&self, w: &mut StateWriter) {
        save_counters(&self.table, w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        load_counters(&mut self.table, r)
    }
}

/// Gshare: global branch history XORed with the PC indexes the counters.
#[derive(Debug)]
pub struct Gshare {
    table: Vec<TwoBit>,
    mask: usize,
    history: u32,
    history_mask: u32,
}

impl Gshare {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two or if `history_bits`
    /// exceeds 20.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(history_bits <= 20, "history too long");
        Self {
            table: vec![TwoBit(1); entries],
            mask: entries - 1,
            history: 0,
            history_mask: (1u32 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc ^ self.history) as usize) & self.mask
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u32) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn train(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | taken as u32) & self.history_mask;
    }

    fn label(&self) -> String {
        format!("gshare-{}", self.table.len())
    }

    fn save_state(&self, w: &mut StateWriter) {
        save_counters(&self.table, w);
        w.put_u32(self.history);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        load_counters(&mut self.table, r)?;
        self.history = r.get_u32()? & self.history_mask;
        Ok(())
    }
}

fn save_counters(table: &[TwoBit], w: &mut StateWriter) {
    w.put_usize(table.len());
    for c in table {
        w.put_u8(c.0);
    }
}

fn load_counters(table: &mut [TwoBit], r: &mut StateReader<'_>) -> Result<(), SnapError> {
    let n = r.get_usize()?;
    if n != table.len() {
        return Err(SnapError::Corrupt(format!(
            "predictor snapshot has {n} counters, expected {}",
            table.len()
        )));
    }
    for c in table.iter_mut() {
        c.0 = r.get_u8()?.min(3);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut c = TwoBit(1);
        assert!(!c.predict());
        c.train(true);
        assert!(c.predict()); // 2
        c.train(false);
        assert!(!c.predict()); // back to 1
        c.train(true);
        c.train(true); // 3 (saturated)
        c.train(true);
        c.train(false);
        assert!(c.predict()); // one not-taken doesn't flip a strong state
    }

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            let pred = p.predict(12);
            p.train(12, true);
            let _ = pred;
        }
        assert!(p.predict(12));
        // An independent PC is unaffected.
        assert!(!p.predict(13));
    }

    #[test]
    fn bimodal_aliasing_uses_low_bits() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            p.train(0, true);
        }
        assert!(p.predict(16)); // aliases to the same entry
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        // taken, not-taken, taken, … is unlearnable for bimodal but easy
        // for gshare with 1+ history bits.
        let mut g = Gshare::new(256, 4);
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let actual = i % 2 == 0;
            if g.predict(7) == actual {
                correct += 1;
            }
            g.train(7, actual);
        }
        assert!(
            correct > total * 8 / 10,
            "gshare only got {correct}/{total} on an alternating branch"
        );
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut b = Bimodal::new(256);
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let actual = i % 2 == 0;
            if b.predict(7) == actual {
                correct += 1;
            }
            b.train(7, actual);
        }
        assert!(
            correct < total * 7 / 10,
            "bimodal implausibly got {correct}/{total} on alternation"
        );
    }

    #[test]
    fn kinds_build_with_labels() {
        assert_eq!(PredictorKind::AlwaysTaken.build().label(), "always-taken");
        assert_eq!(
            PredictorKind::Bimodal { entries: 512 }.build().label(),
            "bimodal-512"
        );
        assert_eq!(
            PredictorKind::Gshare {
                entries: 1024,
                history_bits: 8
            }
            .build()
            .label(),
            "gshare-1024"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_panics() {
        Bimodal::new(100);
    }
}
