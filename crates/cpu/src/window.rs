//! The register update unit (RUU): a unified instruction window with
//! dataflow wakeup.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hbdc_isa::{ArchReg, Inst};
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::dynamic::DynInst;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for source operands.
    Waiting,
    /// All operands available; eligible for issue.
    Ready,
    /// Issued; result pending at `complete_at` (or an unknown future cycle
    /// for loads awaiting a cache grant).
    Issued,
    /// Result produced; dependents woken.
    Done,
}

impl State {
    fn tag(self) -> u8 {
        match self {
            State::Waiting => 0,
            State::Ready => 1,
            State::Issued => 2,
            State::Done => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapError> {
        match tag {
            0 => Ok(State::Waiting),
            1 => Ok(State::Ready),
            2 => Ok(State::Issued),
            3 => Ok(State::Done),
            other => Err(SnapError::Corrupt(format!(
                "unknown window entry state tag {other}"
            ))),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Dependent {
    seq: u64,
    /// Whether this edge gates the consumer's *address* (store base
    /// register) rather than only its execution.
    addr: bool,
}

#[derive(Debug)]
struct Entry {
    di: DynInst,
    /// Issue/commit-relevant instruction facts, decoded once at
    /// dispatch so the per-cycle loops read a few cached bytes instead
    /// of re-matching (and copying) the full record.
    meta: InstMeta,
    state: State,
    remaining_deps: u32,
    /// Outstanding producers of the store's base register; when this
    /// reaches zero the store's effective address is architecturally
    /// known, which unblocks younger loads in the LSQ.
    addr_deps: u32,
    dependents: Vec<Dependent>,
    access_done: bool, // stores: cache access performed (commit gate)
}

/// Pre-decoded instruction facts the issue and commit stages consult
/// every cycle. Derived (not stored) state: snapshots persist only the
/// instruction record and rebuild this on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstMeta {
    /// Load or store.
    pub mem: bool,
    /// Store (implies `mem`).
    pub store: bool,
    /// The `halt` instruction (ends the run at commit).
    pub halt: bool,
    /// Functional-unit class for non-memory issue.
    pub class: hbdc_isa::FuClass,
}

impl InstMeta {
    fn of(inst: &Inst) -> Self {
        Self {
            mem: inst.is_mem(),
            store: inst.is_store(),
            halt: matches!(inst, Inst::Halt),
            class: inst.fu_class(),
        }
    }
}

/// A retired entry as yielded by
/// [`commit_compact_into`](Window::commit_compact_into): the sequence
/// number plus the cached instruction facts commit bookkeeping needs,
/// in place of a copy of the full instruction record.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// Program-order sequence number.
    pub seq: u64,
    /// Pre-decoded instruction facts.
    pub meta: InstMeta,
}

fn reg_slot(r: ArchReg) -> usize {
    match r {
        ArchReg::Int(r) => r.index(),
        ArchReg::Fp(f) => 32 + f.index(),
    }
}

/// The register update unit (Sohi \[21], as used by SimpleScalar): a
/// program-ordered instruction window that tracks register dependences,
/// wakes consumers as producers complete, and retires from the front in
/// order.
///
/// The window is purely a *timing* structure — values live in the
/// functional emulator. Dependences are derived from each instruction's
/// architectural defs/uses at dispatch (equivalent to renaming, since the
/// latest producer of each register is tracked).
///
/// # Examples
///
/// ```
/// use hbdc_cpu::{DynInst, Window};
/// use hbdc_isa::{AluOp, Inst, Reg};
///
/// let mut w = Window::new(8);
/// let producer = DynInst {
///     seq: 0, pc: 0, addr: None, taken: None,
///     inst: Inst::AluImm { op: AluOp::Or, rd: Reg::new(1), rs: Reg::ZERO, imm: 5 },
/// };
/// let consumer = DynInst {
///     seq: 1, pc: 1, addr: None, taken: None,
///     inst: Inst::Alu { op: AluOp::Add, rd: Reg::new(2), rs: Reg::new(1), rt: Reg::new(1) },
/// };
/// w.dispatch(producer);
/// w.dispatch(consumer);
/// assert_eq!(w.ready_seqs(), vec![0]); // consumer waits on r1
/// w.mark_issued(0, Some(1));
/// w.advance_completions(1);
/// assert_eq!(w.ready_seqs(), vec![1]); // woken
/// ```
#[derive(Debug)]
pub struct Window {
    entries: VecDeque<Entry>,
    base_seq: u64,
    capacity: usize,
    producer: [Option<u64>; 64],
    // Ready set as a bitmap keyed by `seq % capacity`: live sequence
    // numbers span less than `capacity`, so slots are unique. Scanning in
    // ring order from `base_seq` recovers oldest-first iteration without
    // the per-cycle allocation (or node churn) of an ordered set. Packed
    // 64 slots to a word so the scan skips empty regions via
    // `trailing_zeros` instead of testing every slot.
    ready: Vec<u64>,
    ready_count: usize,
    completions: BinaryHeap<Reverse<(u64, u64)>>, // (complete_at, seq)
    // Stores whose address became known since the last drain.
    addr_ready: Vec<u64>,
    // Recycled `dependents` vectors: entries draw from this pool at
    // dispatch and return their vector once their dependents are woken,
    // so the steady-state hot loop performs no edge-list allocation.
    dep_pool: Vec<Vec<Dependent>>,
    // Monotone cache for `oldest_not_done` — the Done prefix only grows.
    frontier_hint: Cell<u64>,
}

impl Window {
    /// Creates an empty window with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            base_seq: 0,
            capacity,
            producer: [None; 64],
            ready: vec![0; capacity.div_ceil(64)],
            ready_count: 0,
            completions: BinaryHeap::new(),
            addr_ready: Vec::new(),
            dep_pool: Vec::new(),
            frontier_hint: Cell::new(0),
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the window has room for another instruction.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    fn idx(&self, seq: u64) -> usize {
        debug_assert!(seq >= self.base_seq, "seq already committed");
        (seq - self.base_seq) as usize
    }

    fn entry(&self, seq: u64) -> &Entry {
        &self.entries[self.idx(seq)]
    }

    fn entry_mut(&mut self, seq: u64) -> &mut Entry {
        let i = self.idx(seq);
        &mut self.entries[i]
    }

    fn ready_slot(&self, seq: u64) -> usize {
        (seq % self.capacity as u64) as usize
    }

    fn set_ready(&mut self, seq: u64) {
        let s = self.ready_slot(seq);
        debug_assert_eq!(
            self.ready[s >> 6] >> (s & 63) & 1,
            0,
            "ready slot already set"
        );
        self.ready[s >> 6] |= 1 << (s & 63);
        self.ready_count += 1;
    }

    /// Dispatches the next instruction in program order.
    ///
    /// # Panics
    ///
    /// Panics if the window is full or `di.seq` is out of order.
    pub fn dispatch(&mut self, di: DynInst) {
        assert!(self.has_space(), "dispatch into full window");
        let expected = self.base_seq + self.entries.len() as u64;
        assert_eq!(di.seq, expected, "dispatch out of program order");

        let meta = InstMeta::of(&di.inst);
        let is_store = meta.store;
        let base = di.inst.mem_base().map(hbdc_isa::ArchReg::Int);
        let mut remaining = 0u32;
        let mut addr_deps = 0u32;
        di.inst.for_each_use(|u| {
            if let Some(prod_seq) = self.producer[reg_slot(u)] {
                if prod_seq >= self.base_seq {
                    let prod = self.entry_mut(prod_seq);
                    if prod.state != State::Done {
                        let addr = is_store && Some(u) == base;
                        prod.dependents.push(Dependent { seq: di.seq, addr });
                        remaining += 1;
                        if addr {
                            addr_deps += 1;
                        }
                    }
                }
            }
        });
        if let Some(d) = di.inst.def() {
            self.producer[reg_slot(d)] = Some(di.seq);
        }
        if is_store && addr_deps == 0 {
            // Base register already available: address known at dispatch.
            self.addr_ready.push(di.seq);
        }
        let state = if remaining == 0 {
            self.set_ready(di.seq);
            State::Ready
        } else {
            State::Waiting
        };
        self.entries.push_back(Entry {
            di,
            meta,
            state,
            remaining_deps: remaining,
            addr_deps,
            dependents: self.dep_pool.pop().unwrap_or_default(),
            access_done: false,
        });
    }

    /// Drains the stores whose effective address has become
    /// architecturally known since the last call (so the LSQ can unblock
    /// younger loads). The backing buffer's capacity is retained.
    pub fn drain_addr_ready(&mut self) -> std::vec::Drain<'_, u64> {
        self.addr_ready.drain(..)
    }

    /// Scans bitmap slots `[a, a + len)`, appending the sequence number
    /// `seq0 + (slot - a)` for each set bit in slot order. Returns `false`
    /// once `max` entries are collected (the caller's signal to stop).
    fn scan_ready_span(
        &self,
        a: usize,
        len: usize,
        seq0: u64,
        max: usize,
        out: &mut Vec<u64>,
    ) -> bool {
        let b = a + len;
        let mut w = a >> 6;
        while (w << 6) < b {
            let mut bits = self.ready[w];
            if (w << 6) < a {
                bits &= !0 << (a & 63);
            }
            if (w << 6) + 64 > b {
                bits &= !0 >> (64 - (b - (w << 6)));
            }
            while bits != 0 {
                let slot = (w << 6) + bits.trailing_zeros() as usize;
                out.push(seq0 + (slot - a) as u64);
                if out.len() == max {
                    return false;
                }
                bits &= bits - 1;
            }
            w += 1;
        }
        true
    }

    /// Fills `out` with up to `max` ready-to-issue sequence numbers,
    /// oldest first. Clears `out` first; never allocates once `out` has
    /// warmed up.
    pub fn fill_ready(&self, max: usize, out: &mut Vec<u64>) {
        out.clear();
        if self.ready_count == 0 || max == 0 {
            return;
        }
        let max = max.min(self.ready_count);
        // The live window occupies `entries.len()` ring slots starting at
        // the base sequence's slot; a wrap splits it into two linear spans.
        let start = self.ready_slot(self.base_seq);
        let span1 = (self.capacity - start).min(self.entries.len());
        let span2 = self.entries.len() - span1;
        if self.scan_ready_span(start, span1, self.base_seq, max, out) && span2 > 0 {
            self.scan_ready_span(0, span2, self.base_seq + span1 as u64, max, out);
        }
    }

    /// Number of entries currently ready to issue.
    pub fn ready_count(&self) -> usize {
        self.ready_count
    }

    /// Sequence numbers currently ready to issue, oldest first.
    /// Allocates; the hot path uses [`fill_ready`](Self::fill_ready).
    pub fn ready_seqs(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.ready_count);
        self.fill_ready(usize::MAX, &mut out);
        out
    }

    /// The instruction record at `seq`.
    pub fn inst(&self, seq: u64) -> &DynInst {
        &self.entry(seq).di
    }

    /// The cached instruction facts for `seq` — what the issue stage
    /// reads each cycle instead of copying the record out and
    /// re-matching the opcode.
    pub fn meta(&self, seq: u64) -> InstMeta {
        self.entry(seq).meta
    }

    /// Marks `seq` issued. `complete_at` is the cycle its result appears,
    /// or `None` for loads whose completion awaits a cache grant (set
    /// later with [`set_complete_at`](Self::set_complete_at)).
    ///
    /// # Panics
    ///
    /// Panics if the entry is not ready.
    pub fn mark_issued(&mut self, seq: u64, complete_at: Option<u64>) {
        let s = self.ready_slot(seq);
        assert!(
            self.ready[s >> 6] >> (s & 63) & 1 == 1,
            "issue of non-ready entry"
        );
        self.ready[s >> 6] &= !(1 << (s & 63));
        self.ready_count -= 1;
        self.entry_mut(seq).state = State::Issued;
        if let Some(at) = complete_at {
            self.completions.push(Reverse((at, seq)));
        }
    }

    /// Schedules the completion of an already-issued entry (loads, once
    /// the cache grants their access and the fill latency is known).
    pub fn set_complete_at(&mut self, seq: u64, at: u64) {
        debug_assert_eq!(self.entry(seq).state, State::Issued);
        self.completions.push(Reverse((at, seq)));
    }

    /// Marks Done every issued entry whose completion time has arrived,
    /// waking its dependents. Returns the number of entries completed
    /// (the simulator's idle detector treats any completion as activity).
    pub fn advance_completions(&mut self, now: u64) -> usize {
        let mut completed = 0usize;
        while let Some(&Reverse((at, seq))) = self.completions.peek() {
            if at > now {
                break;
            }
            self.completions.pop();
            if seq < self.base_seq {
                continue; // already committed (defensive)
            }
            completed += 1;
            let mut dependents = {
                let e = self.entry_mut(seq);
                debug_assert_eq!(e.state, State::Issued);
                e.state = State::Done;
                std::mem::take(&mut e.dependents)
            };
            for &dep in &dependents {
                if dep.seq < self.base_seq {
                    continue;
                }
                let e = self.entry_mut(dep.seq);
                e.remaining_deps -= 1;
                let addr_now_known = if dep.addr {
                    e.addr_deps -= 1;
                    e.addr_deps == 0
                } else {
                    false
                };
                let woken = e.remaining_deps == 0 && e.state == State::Waiting;
                if woken {
                    e.state = State::Ready;
                }
                if addr_now_known {
                    self.addr_ready.push(dep.seq);
                }
                if woken {
                    self.set_ready(dep.seq);
                }
            }
            dependents.clear();
            self.dep_pool.push(dependents);
        }
        completed
    }

    /// The cycle of the earliest pending completion event, if any.
    /// After [`advance_completions`](Self::advance_completions)`(now)`
    /// this is always strictly greater than `now`.
    pub fn next_completion_at(&self) -> Option<u64> {
        self.completions.peek().map(|&Reverse((at, _))| at)
    }

    /// Whether `seq` has produced its result.
    pub fn is_done(&self, seq: u64) -> bool {
        self.entry(seq).state == State::Done
    }

    /// Whether `seq` has produced its result *or already committed* —
    /// safe to call for sequence numbers that may have left the window.
    pub fn resolved(&self, seq: u64) -> bool {
        seq < self.base_seq || self.is_done(seq)
    }

    /// Records that a store's commit-time cache access has been performed.
    pub fn mark_access_done(&mut self, seq: u64) {
        self.entry_mut(seq).access_done = true;
    }

    /// Whether a store's cache access has been performed.
    pub fn access_done(&self, seq: u64) -> bool {
        self.entry(seq).access_done
    }

    /// Sequence number of the oldest entry that is not yet Done; all
    /// entries older than this are complete. Returns one past the youngest
    /// entry when everything is Done (or the window is empty).
    pub fn oldest_not_done(&self) -> u64 {
        let start = self.frontier_hint.get().max(self.base_seq);
        let mut i = (start - self.base_seq) as usize;
        while i < self.entries.len() && self.entries[i].state == State::Done {
            i += 1;
        }
        let frontier = self.base_seq + i as u64;
        self.frontier_hint.set(frontier);
        frontier
    }

    /// Counts entries by state: (waiting, ready, issued, done).
    #[doc(hidden)]
    pub fn state_census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for e in &self.entries {
            match e.state {
                State::Waiting => c.0 += 1,
                State::Ready => c.1 += 1,
                State::Issued => c.2 += 1,
                State::Done => c.3 += 1,
            }
        }
        c
    }

    /// Shared retirement walk: pops up to `max` front entries that are
    /// Done (and, for stores, access-performed), pushing `f(&entry)`
    /// into `out` (cleared first) for each.
    fn commit_with<T>(&mut self, max: u32, out: &mut Vec<T>, f: impl Fn(&Entry) -> T) {
        out.clear();
        while out.len() < max as usize {
            match self.entries.front() {
                Some(e) if e.state == State::Done => {
                    if e.meta.store && !e.access_done {
                        break;
                    }
                    let e = self.entries.pop_front().expect("front checked");
                    self.base_seq += 1;
                    out.push(f(&e));
                    if e.dependents.capacity() > 0 {
                        let mut deps = e.dependents;
                        deps.clear();
                        self.dep_pool.push(deps);
                    }
                }
                _ => break,
            }
        }
    }

    /// Retires up to `max` instructions from the front, in order, into
    /// `out` (cleared first). An entry retires if it is Done and, for
    /// stores, its cache access has been performed.
    pub fn commit_into(&mut self, max: u32, out: &mut Vec<DynInst>) {
        self.commit_with(max, out, |e| e.di);
    }

    /// Like [`commit_into`](Self::commit_into), but yields only each
    /// retired entry's sequence number and cached instruction facts —
    /// the simulator's hot path, which never needs the full record.
    pub fn commit_compact_into(&mut self, max: u32, out: &mut Vec<Retired>) {
        self.commit_with(max, out, |e| Retired {
            seq: e.di.seq,
            meta: e.meta,
        });
    }

    /// Retires up to `max` instructions from the front, in order,
    /// returning them. Allocates; the hot path uses
    /// [`commit_into`](Self::commit_into).
    pub fn commit(&mut self, max: u32) -> Vec<DynInst> {
        let mut out = Vec::new();
        self.commit_into(max, &mut out);
        out
    }

    /// The instruction record at `seq`, or `None` if it is not live in
    /// the window (diagnostics; [`inst`](Self::inst) panics instead).
    pub fn get(&self, seq: u64) -> Option<&DynInst> {
        if seq < self.base_seq {
            return None;
        }
        self.entries
            .get((seq - self.base_seq) as usize)
            .map(|e| &e.di)
    }

    /// Serializes the window's architectural timing state: every live
    /// entry (as a slim dynamic record plus its dependence bookkeeping),
    /// the per-register producer map, the pending completion events, and
    /// the address-ready event queue. The ready bitmap is derivable from
    /// entry states and is rebuilt on load; scratch (the dependent-vector
    /// pool, the frontier hint) is not persisted.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.base_seq);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            e.di.save_slim(w);
            w.put_u8(e.state.tag());
            w.put_u32(e.remaining_deps);
            w.put_u32(e.addr_deps);
            w.put_usize(e.dependents.len());
            for d in &e.dependents {
                w.put_u64(d.seq);
                w.put_bool(d.addr);
            }
            w.put_bool(e.access_done);
        }
        for p in &self.producer {
            w.put_opt_u64(*p);
        }
        // BinaryHeap iteration order is unspecified: emit completion
        // events sorted so identical states always produce identical bytes.
        let mut completions: Vec<(u64, u64)> =
            self.completions.iter().map(|Reverse(p)| *p).collect();
        completions.sort_unstable();
        w.put_usize(completions.len());
        for (at, seq) in completions {
            w.put_u64(at);
            w.put_u64(seq);
        }
        w.put_usize(self.addr_ready.len());
        for &seq in &self.addr_ready {
            w.put_u64(seq);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// window of the same capacity, re-deriving each entry's instruction
    /// from `text` and rebuilding the ready bitmap.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Corrupt`] if the stream holds more entries
    /// than this window's capacity, names a PC outside `text`, or carries
    /// an unknown state tag.
    pub fn load_state(&mut self, r: &mut StateReader<'_>, text: &[Inst]) -> Result<(), SnapError> {
        let base_seq = r.get_u64()?;
        let n = r.get_usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "window snapshot holds {n} entries but capacity is {}",
                self.capacity
            )));
        }
        self.base_seq = base_seq;
        self.entries.clear();
        for _ in 0..n {
            let di = DynInst::load_slim(r, text)?;
            let state = State::from_tag(r.get_u8()?)?;
            let remaining_deps = r.get_u32()?;
            let addr_deps = r.get_u32()?;
            let deps = r.get_usize()?;
            let mut dependents = self.dep_pool.pop().unwrap_or_default();
            dependents.clear();
            for _ in 0..deps {
                let seq = r.get_u64()?;
                let addr = r.get_bool()?;
                dependents.push(Dependent { seq, addr });
            }
            let access_done = r.get_bool()?;
            self.entries.push_back(Entry {
                meta: InstMeta::of(&di.inst),
                di,
                state,
                remaining_deps,
                addr_deps,
                dependents,
                access_done,
            });
        }
        for p in &mut self.producer {
            *p = r.get_opt_u64()?;
        }
        self.completions.clear();
        let completions = r.get_usize()?;
        for _ in 0..completions {
            let at = r.get_u64()?;
            let seq = r.get_u64()?;
            self.completions.push(Reverse((at, seq)));
        }
        self.addr_ready.clear();
        let addr_ready = r.get_usize()?;
        for _ in 0..addr_ready {
            self.addr_ready.push(r.get_u64()?);
        }
        // Rebuild the ready bitmap from the restored entry states.
        self.ready.iter_mut().for_each(|word| *word = 0);
        self.ready_count = 0;
        let ready_seqs: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.state == State::Ready)
            .map(|e| e.di.seq)
            .collect();
        for seq in ready_seqs {
            self.set_ready(seq);
        }
        self.frontier_hint.set(self.base_seq);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_isa::{AluOp, Inst, Reg, Width};

    fn alu(seq: u64, rd: u8, rs: u8, rt: u8) -> DynInst {
        DynInst {
            seq,
            pc: seq as u32,
            addr: None,
            taken: None,
            inst: Inst::Alu {
                op: AluOp::Add,
                rd: Reg::new(rd),
                rs: Reg::new(rs),
                rt: Reg::new(rt),
            },
        }
    }

    fn store(seq: u64, addr: u64) -> DynInst {
        DynInst {
            seq,
            pc: seq as u32,
            addr: Some(addr),
            taken: None,
            inst: Inst::Store {
                width: Width::Word,
                rs: Reg::new(1),
                base: Reg::new(2),
                offset: 0,
            },
        }
    }

    #[test]
    fn independent_instructions_all_ready() {
        let mut w = Window::new(4);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 0, 0));
        assert_eq!(w.ready_seqs(), vec![0, 1]);
    }

    #[test]
    fn dependent_wakes_after_producer_completes() {
        let mut w = Window::new(4);
        w.dispatch(alu(0, 1, 0, 0)); // r1 = ...
        w.dispatch(alu(1, 2, 1, 0)); // r2 = r1 + ...
        assert_eq!(w.ready_seqs(), vec![0]);
        w.mark_issued(0, Some(3));
        w.advance_completions(2);
        assert_eq!(w.ready_seqs(), Vec::<u64>::new());
        w.advance_completions(3);
        assert_eq!(w.ready_seqs(), vec![1]);
    }

    #[test]
    fn chain_of_three() {
        let mut w = Window::new(8);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 1, 0));
        w.dispatch(alu(2, 3, 2, 1)); // depends on both r2 and r1
        w.mark_issued(0, Some(1));
        w.advance_completions(1);
        assert_eq!(w.ready_seqs(), vec![1]);
        w.mark_issued(1, Some(2));
        w.advance_completions(2);
        assert_eq!(w.ready_seqs(), vec![2]);
    }

    #[test]
    fn anti_dependence_does_not_block() {
        // Write-after-read: consumer of old r1 dispatched after a new
        // producer of r1 must depend on the *latest prior* producer only.
        let mut w = Window::new(8);
        w.dispatch(alu(0, 1, 0, 0)); // r1 = v0
        w.dispatch(alu(1, 1, 0, 0)); // r1 = v1 (overwrites)
        w.dispatch(alu(2, 3, 1, 0)); // reads r1 → depends on seq 1 only
        w.mark_issued(1, Some(1));
        w.mark_issued(0, Some(99)); // old producer finishes late
        w.advance_completions(1);
        assert_eq!(w.ready_seqs(), vec![2]);
    }

    #[test]
    fn commit_is_in_order_and_gated() {
        let mut w = Window::new(8);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 0, 0));
        w.mark_issued(1, Some(1));
        w.advance_completions(1);
        // Younger is done, older is not: nothing commits.
        assert!(w.commit(4).is_empty());
        w.mark_issued(0, Some(2));
        w.advance_completions(2);
        let retired = w.commit(4);
        assert_eq!(retired.len(), 2);
        assert_eq!(retired[0].seq, 0);
        assert_eq!(retired[1].seq, 1);
        assert!(w.is_empty());
    }

    #[test]
    fn store_commit_requires_access_done() {
        let mut w = Window::new(8);
        w.dispatch(store(0, 0x100));
        w.mark_issued(0, Some(1));
        w.advance_completions(1);
        assert!(w.commit(1).is_empty()); // access not yet performed
        w.mark_access_done(0);
        assert_eq!(w.commit(1).len(), 1);
    }

    #[test]
    fn oldest_not_done_tracks_frontier() {
        let mut w = Window::new(8);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 0, 0));
        assert_eq!(w.oldest_not_done(), 0);
        w.mark_issued(0, Some(1));
        w.advance_completions(1);
        assert_eq!(w.oldest_not_done(), 1);
        w.mark_issued(1, Some(2));
        w.advance_completions(2);
        assert_eq!(w.oldest_not_done(), 2);
    }

    #[test]
    fn commit_width_respected() {
        let mut w = Window::new(8);
        for s in 0..4 {
            w.dispatch(alu(s, 1 + (s as u8 % 3), 0, 0));
        }
        for s in 0..4 {
            w.mark_issued(s, Some(1));
        }
        w.advance_completions(1);
        assert_eq!(w.commit(2).len(), 2);
        assert_eq!(w.commit(2).len(), 2);
    }

    #[test]
    fn load_pending_completion_via_set_complete_at() {
        let mut w = Window::new(8);
        let ld = DynInst {
            seq: 0,
            pc: 0,
            addr: Some(0x40),
            taken: None,
            inst: Inst::Load {
                width: Width::Word,
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 0,
            },
        };
        w.dispatch(ld);
        w.dispatch(alu(1, 2, 1, 0)); // uses the loaded r1
        w.mark_issued(0, None); // completion unknown until grant
        w.advance_completions(100);
        assert!(!w.is_done(0));
        w.set_complete_at(0, 101);
        w.advance_completions(101);
        assert!(w.is_done(0));
        assert_eq!(w.ready_seqs(), vec![1]);
    }

    #[test]
    fn next_completion_peeks_earliest_event() {
        let mut w = Window::new(8);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 0, 0));
        assert_eq!(w.next_completion_at(), None);
        w.mark_issued(0, Some(7));
        w.mark_issued(1, Some(3));
        assert_eq!(w.next_completion_at(), Some(3));
        assert_eq!(w.advance_completions(3), 1);
        assert_eq!(w.next_completion_at(), Some(7));
        assert_eq!(w.advance_completions(7), 1);
        assert_eq!(w.next_completion_at(), None);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn overfull_dispatch_panics() {
        let mut w = Window::new(1);
        w.dispatch(alu(0, 1, 0, 0));
        w.dispatch(alu(1, 2, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of program order")]
    fn out_of_order_dispatch_panics() {
        let mut w = Window::new(4);
        w.dispatch(alu(1, 1, 0, 0));
    }
}
