//! Dynamic instruction records produced by the functional emulator.

use hbdc_isa::Inst;
use hbdc_snap::{SnapError, StateReader, StateWriter};

/// One committed dynamic instruction: the static instruction plus the
/// run-time facts the timing model needs (sequence number and, for memory
/// operations, the effective address).
///
/// Because the simulated machine has perfect branch prediction and "does
/// not speculate" (paper §2.2), the timing model consumes exactly this
/// committed stream — there is no wrong-path work to model.
///
/// # Examples
///
/// ```
/// use hbdc_cpu::DynInst;
/// use hbdc_isa::{Inst, Reg, Width};
///
/// let di = DynInst {
///     seq: 0,
///     pc: 4,
///     inst: Inst::Load { width: Width::Word, rd: Reg::new(1), base: Reg::new(2), offset: 0 },
///     addr: Some(0x1000_0000),
///     taken: None,
/// };
/// assert!(di.inst.is_load());
/// assert_eq!(di.addr, Some(0x1000_0000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Global dynamic sequence number (0-based, program order).
    pub seq: u64,
    /// The static instruction's index in the program text.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Effective address for loads/stores, `None` otherwise.
    pub addr: Option<u64>,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
}

impl DynInst {
    /// The effective address of a memory instruction.
    ///
    /// # Panics
    ///
    /// Panics if this is not a memory instruction.
    pub fn mem_addr(&self) -> u64 {
        self.addr.expect("mem_addr on non-memory instruction")
    }

    /// Serializes the run-time facts only (seq, pc, address, direction);
    /// the static instruction is re-derived from the program text on load,
    /// so snapshots never duplicate the decoded text section.
    pub(crate) fn save_slim(&self, w: &mut StateWriter) {
        w.put_u64(self.seq);
        w.put_u32(self.pc);
        w.put_opt_u64(self.addr);
        w.put_opt_bool(self.taken);
    }

    /// Reads a slim record back, re-deriving the instruction from `text`.
    pub(crate) fn load_slim(r: &mut StateReader<'_>, text: &[Inst]) -> Result<Self, SnapError> {
        let seq = r.get_u64()?;
        let pc = r.get_u32()?;
        let addr = r.get_opt_u64()?;
        let taken = r.get_opt_bool()?;
        let inst = *text.get(pc as usize).ok_or_else(|| {
            SnapError::Corrupt(format!(
                "dynamic instruction pc {pc} out of range for a {}-instruction text section",
                text.len()
            ))
        })?;
        Ok(Self {
            seq,
            pc,
            inst,
            addr,
            taken,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_isa::Inst;

    #[test]
    #[should_panic(expected = "non-memory")]
    fn mem_addr_panics_on_alu() {
        let di = DynInst {
            seq: 0,
            pc: 0,
            inst: Inst::Nop,
            addr: None,
            taken: None,
        };
        di.mem_addr();
    }
}
