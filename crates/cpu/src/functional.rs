//! Functional-first emulator for the micro-ISA.

use hbdc_isa::{AluOp, BranchCond, Inst, Program, Width, STACK_TOP};
use hbdc_mem::Memory;
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::dynamic::DynInst;

/// A functional emulator that executes a [`Program`] and yields the
/// committed dynamic instruction stream one [`DynInst`] at a time.
///
/// The emulator owns architectural state (integer and FP register files
/// and a flat [`Memory`]); the timing simulator consumes its output stream
/// and never touches data. The stack pointer is initialized to
/// [`STACK_TOP`] and the data image is loaded at the program's data base.
///
/// # Examples
///
/// ```
/// use hbdc_cpu::Emulator;
/// use hbdc_isa::asm::assemble;
///
/// let p = assemble("main: li r8, 2\n add r9, r8, r8\n halt\n")?;
/// let mut emu = Emulator::new(&p);
/// assert_eq!(emu.by_ref().count(), 3); // li, add, halt
/// assert_eq!(emu.reg(9), 4);
/// # Ok::<(), hbdc_isa::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Emulator {
    text: Vec<Inst>,
    pc: u32,
    regs: [i64; 32],
    fregs: [f64; 32],
    mem: Memory,
    seq: u64,
    halted: bool,
}

impl Emulator {
    /// Creates an emulator for `program`, with the data image loaded and
    /// `sp` pointing at the top of the stack.
    pub fn new(program: &Program) -> Self {
        let mut mem = Memory::new();
        mem.write_bytes(program.data_base(), program.data());
        let mut regs = [0i64; 32];
        regs[29] = STACK_TOP as i64; // sp
        Self {
            text: program.text().to_vec(),
            pc: program.entry(),
            regs,
            fregs: [0.0; 32],
            mem,
            seq: 0,
            halted: false,
        }
    }

    /// Reads an integer register (r0 reads as 0).
    pub fn reg(&self, index: usize) -> i64 {
        if index == 0 {
            0
        } else {
            self.regs[index]
        }
    }

    /// Reads an FP register.
    pub fn freg(&self, index: usize) -> f64 {
        self.fregs[index]
    }

    /// Immutable view of memory (for assertions in tests and harnesses).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable view of memory (for pre-initializing workload data that is
    /// too large for `.data` directives).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Whether the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.seq
    }

    /// Restarts sequence numbering at zero (used after a functional
    /// fast-forward so the timing model sees a contiguous stream).
    pub fn rebase_seq(&mut self) {
        self.seq = 0;
    }

    /// The current program counter (an index into the text section).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Serializes the architectural state: PC, register files, memory,
    /// sequence counter, and halt flag. The text section is not written —
    /// it is constructor state, rebuilt from the program image.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u32(self.pc);
        for &r in &self.regs {
            w.put_i64(r);
        }
        for &f in &self.fregs {
            w.put_f64(f);
        }
        self.mem.save_state(w);
        w.put_u64(self.seq);
        w.put_bool(self.halted);
    }

    /// Restores state written by [`save_state`](Self::save_state); the
    /// restored memory image fully replaces the current one.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated or corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.pc = r.get_u32()?;
        for reg in &mut self.regs {
            *reg = r.get_i64()?;
        }
        for freg in &mut self.fregs {
            *freg = r.get_f64()?;
        }
        self.mem.load_state(r)?;
        self.seq = r.get_u64()?;
        self.halted = r.get_bool()?;
        Ok(())
    }

    fn set_reg(&mut self, index: usize, value: i64) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    fn alu(op: AluOp, a: i64, b: i64) -> i64 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => (a < b) as i64,
            AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
        }
    }

    fn load(&self, addr: u64, width: Width) -> i64 {
        match width {
            Width::Byte => self.mem.read_u8(addr) as i8 as i64,
            Width::Half => self.mem.read_u16(addr) as i16 as i64,
            Width::Word => self.mem.read_u32(addr) as i32 as i64,
            Width::Double => self.mem.read_u64(addr) as i64,
        }
    }

    fn store(&mut self, addr: u64, width: Width, value: i64) {
        self.mem
            .write_le(addr, value as u64, width.bytes() as usize);
    }

    /// Executes one instruction; returns its dynamic record, or `None`
    /// after `halt` (or if the PC ran off the end of the text).
    pub fn step(&mut self) -> Option<DynInst> {
        if self.halted || self.pc as usize >= self.text.len() {
            self.halted = true;
            return None;
        }
        let pc = self.pc;
        let inst = self.text[pc as usize];
        let mut next_pc = pc + 1;
        let mut addr = None;
        let mut taken = None;

        match inst {
            Inst::Alu { op, rd, rs, rt } => {
                let v = Self::alu(op, self.reg(rs.index()), self.reg(rt.index()));
                self.set_reg(rd.index(), v);
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = Self::alu(op, self.reg(rs.index()), imm);
                self.set_reg(rd.index(), v);
            }
            Inst::Fpu { op, fd, fs, ft } => {
                let a = self.fregs[fs.index()];
                let b = self.fregs[ft.index()];
                self.fregs[fd.index()] = match op {
                    hbdc_isa::FpuOp::Add => a + b,
                    hbdc_isa::FpuOp::Sub => a - b,
                    hbdc_isa::FpuOp::Mul => a * b,
                    hbdc_isa::FpuOp::Div => a / b,
                };
            }
            Inst::FpCmp { cond, rd, fs, ft } => {
                let a = self.fregs[fs.index()];
                let b = self.fregs[ft.index()];
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => a < b,
                    BranchCond::Ge => a >= b,
                    BranchCond::Le => a <= b,
                    BranchCond::Gt => a > b,
                };
                self.set_reg(rd.index(), taken as i64);
            }
            Inst::MovToFp { fd, rs } => {
                self.fregs[fd.index()] = self.reg(rs.index()) as f64;
            }
            Inst::MovFromFp { rd, fs } => {
                self.set_reg(rd.index(), self.fregs[fs.index()] as i64);
            }
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let a = (self.reg(base.index()) as u64).wrapping_add(offset as u64);
                addr = Some(a);
                let v = self.load(a, width);
                self.set_reg(rd.index(), v);
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let a = (self.reg(base.index()) as u64).wrapping_add(offset as u64);
                addr = Some(a);
                let v = self.reg(rs.index());
                self.store(a, width, v);
            }
            Inst::FLoad {
                width,
                fd,
                base,
                offset,
            } => {
                let a = (self.reg(base.index()) as u64).wrapping_add(offset as u64);
                addr = Some(a);
                self.fregs[fd.index()] = match width {
                    Width::Word => self.mem.read_f32(a) as f64,
                    _ => self.mem.read_f64(a),
                };
            }
            Inst::FStore {
                width,
                fs,
                base,
                offset,
            } => {
                let a = (self.reg(base.index()) as u64).wrapping_add(offset as u64);
                addr = Some(a);
                let v = self.fregs[fs.index()];
                match width {
                    Width::Word => self.mem.write_f32(a, v as f32),
                    _ => self.mem.write_f64(a, v),
                }
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let t = cond.eval(self.reg(rs.index()), self.reg(rt.index()));
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::JumpAndLink { rd, target } => {
                self.set_reg(rd.index(), (pc + 1) as i64);
                next_pc = target;
            }
            Inst::JumpReg { rs } => {
                next_pc = self.reg(rs.index()) as u32;
            }
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
            }
        }

        let di = DynInst {
            seq: self.seq,
            pc,
            inst,
            addr,
            taken,
        };
        self.seq += 1;
        self.pc = next_pc;
        Some(di)
    }
}

impl Iterator for Emulator {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_isa::asm::assemble;

    fn run(src: &str) -> Emulator {
        let p = assemble(src).unwrap();
        let mut e = Emulator::new(&p);
        while e.step().is_some() {
            assert!(e.executed() < 1_000_000, "runaway program");
        }
        e
    }

    #[test]
    fn arithmetic_loop_sums() {
        let e = run(
            "main: li r8, 10\n li r9, 0\nloop: add r9, r9, r8\n addi r8, r8, -1\n bnez r8, loop\n halt\n",
        );
        assert_eq!(e.reg(9), 55);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let e = run(
            ".data\nv: .word 7, 8\n.text\nmain:\n la r8, v\n lw r9, 0(r8)\n lw r10, 4(r8)\n add r11, r9, r10\n sw r11, 0(r8)\n lw r12, 0(r8)\n halt\n",
        );
        assert_eq!(e.reg(12), 15);
    }

    #[test]
    fn sign_extension_on_narrow_loads() {
        let e = run(
            ".data\nb: .byte -1\n.align 1\nh: .half -2\n.text\nmain:\n lb r8, b\n lh r9, h\n halt\n",
        );
        assert_eq!(e.reg(8), -1);
        assert_eq!(e.reg(9), -2);
    }

    #[test]
    fn fp_pipeline() {
        let e = run(
            ".data\nx: .double 1.5\ny: .double 2.5\n.text\nmain:\n fld f1, x\n fld f2, y\n fadd.d f3, f1, f2\n fmul.d f4, f3, f3\n halt\n",
        );
        assert_eq!(e.freg(3), 4.0);
        assert_eq!(e.freg(4), 16.0);
    }

    #[test]
    fn fp_compare_and_convert() {
        let e = run(
            "main: li r8, 3\n itof f1, r8\n li r9, 4\n itof f2, r9\n fcmp.lt r10, f1, f2\n fdiv.d f3, f2, f1\n ftoi r11, f3\n halt\n",
        );
        assert_eq!(e.reg(10), 1);
        assert_eq!(e.reg(11), 1); // 4/3 truncated
    }

    #[test]
    fn call_and_return() {
        let e = run("main:\n jal fun\n li r9, 5\n halt\nfun:\n li r8, 7\n jr ra\n");
        assert_eq!(e.reg(8), 7);
        assert_eq!(e.reg(9), 5);
    }

    #[test]
    fn stack_pointer_initialized() {
        let e = run("main: sd r0, -8(sp)\n halt\n");
        assert_eq!(e.reg(29), STACK_TOP as i64);
    }

    #[test]
    fn r0_is_immutable() {
        let e = run("main: li r0, 99\n add r0, r0, r0\n halt\n");
        assert_eq!(e.reg(0), 0);
    }

    #[test]
    fn div_by_zero_is_zero() {
        let e = run("main: li r8, 5\n li r9, 0\n div r10, r8, r9\n rem r11, r8, r9\n halt\n");
        assert_eq!(e.reg(10), 0);
        assert_eq!(e.reg(11), 0);
    }

    #[test]
    fn dyn_inst_stream_has_addresses() {
        let p = assemble(".data\nv: .word 1\n.text\nmain: lw r8, v\n halt\n").unwrap();
        let mut e = Emulator::new(&p);
        let first = e.step().unwrap();
        assert_eq!(first.seq, 0);
        assert!(first.inst.is_load());
        assert!(first.addr.is_some());
        let second = e.step().unwrap();
        assert_eq!(second.inst, Inst::Halt);
        assert!(e.step().is_none());
        assert!(e.halted());
    }

    #[test]
    fn iterator_yields_whole_stream() {
        let p = assemble("main: nop\n nop\n halt\n").unwrap();
        let e = Emulator::new(&p);
        let seqs: Vec<u64> = e.map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn determinism() {
        let src = "main: li r8, 3\nloop: addi r8, r8, -1\n bnez r8, loop\n halt\n";
        let p = assemble(src).unwrap();
        let a: Vec<DynInst> = Emulator::new(&p).collect();
        let b: Vec<DynInst> = Emulator::new(&p).collect();
        assert_eq!(a, b);
    }
}
