//! `hbdc-cpu`: a dynamic superscalar out-of-order timing simulator.
//!
//! This crate rebuilds the paper's evaluation vehicle — "an extended
//! version of the SimpleScalar `sim-outorder` simulator" — from scratch:
//!
//! * [`Emulator`] — a functional-first emulator for the
//!   [`hbdc-isa`](hbdc_isa) micro-ISA that produces the committed dynamic
//!   instruction stream (the paper's machine has a perfect front end and
//!   never mis-speculates, so the committed stream *is* the fetched
//!   stream).
//! * [`Window`] — the register update unit (RUU): a 1024-entry unified
//!   instruction window with dataflow wakeup.
//! * [`Lsq`] — the 512-entry load/store queue: loads execute when all
//!   prior store addresses are known, same-address loads forward from
//!   earlier stores with zero latency, stores access the cache at commit.
//! * [`FuPools`] — the functional-unit pools with Table 1 latencies.
//! * [`Simulator`] — the cycle-by-cycle pipeline binding all of the above
//!   to a [`PortModel`](hbdc_core::PortModel) and a
//!   [`Hierarchy`](hbdc_mem::Hierarchy), reporting IPC.
//!
//! Simulation failures — pipeline deadlock (caught by a forward-progress
//! watchdog), cycle-budget exhaustion, invariant violations found by the
//! per-cycle auditor ([`CpuConfig::audit`]), malformed instructions —
//! surface as typed [`SimError`]s with cycle/PC/unit context rather than
//! panics.
//!
//! # Examples
//!
//! ```
//! use hbdc_cpu::{CpuConfig, Simulator};
//! use hbdc_core::PortConfig;
//! use hbdc_isa::asm::assemble;
//! use hbdc_mem::HierarchyConfig;
//!
//! let program = assemble(
//!     ".data\nv: .space 256\n.text\nmain:\n  la r8, v\n  li r9, 32\n\
//!      loop:\n  lw r10, 0(r8)\n  addi r8, r8, 8\n  addi r9, r9, -1\n\
//!      bnez r9, loop\n  halt\n",
//! )?;
//! let mut sim = Simulator::new(
//!     &program,
//!     CpuConfig::default(),
//!     HierarchyConfig::default(),
//!     PortConfig::lbic(4, 2),
//! );
//! let report = sim.run()?;
//! assert!(report.committed > 0);
//! assert!(report.ipc() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod config;
mod dynamic;
mod error;
mod fu;
mod functional;
mod lsq;
mod report;
mod sim;
mod snapshot;
mod trace;
mod window;

pub use bpred::{AlwaysTaken, Bimodal, BranchPredictor, FrontEnd, Gshare, PredictorKind};
pub use config::CpuConfig;
pub use dynamic::DynInst;
pub use error::SimError;
pub use fu::FuPools;
pub use functional::Emulator;
pub use lsq::{Lsq, LsqStalls};
pub use report::SimReport;
pub use sim::{PipeStats, Simulator};
pub use snapshot::{SimSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use trace::{CacheLookup, CommittedTrace, TracePlayer, TRACE_MAGIC, TRACE_VERSION};
pub use window::{InstMeta, Retired, Window};
