//! HBTR v1: the committed-stream trace format behind execute-once /
//! replay-many campaigns.
//!
//! The paper's methodology (and both trace-driven reference simulators in
//! the related work) evaluates every port configuration against the *same*
//! dynamic reference stream. This module makes that stream a first-class
//! artifact: [`CommittedTrace::capture`] runs the functional model once
//! and records the committed [`DynInst`] stream; [`TracePlayer`] streams
//! it back into the timing simulator with no register-file emulation, no
//! data memory, and no branch re-resolution on the hot path.
//!
//! # Container layout
//!
//! An HBTR file is an [`hbdc_snap::seal`]ed container (magic `HBTR`,
//! version 1, FNV-1a checksum) whose payload is, in order:
//!
//! | field           | encoding                                  |
//! |-----------------|-------------------------------------------|
//! | `program_fp`    | `u64` — FNV-1a of the program object image |
//! | `warmup_insts`  | `u64` — functionally skipped before rec 0  |
//! | `records`       | `u64` — committed records that follow      |
//! | `loads`/`stores`| `u64` each — memory-op census              |
//! | `complete`      | `bool` — stream reached the program's halt |
//! | program image   | length-prefixed object bytes               |
//! | records section | length-prefixed delta-encoded records      |
//!
//! The records section is one contiguous byte range, so replay streams it
//! through a cursor without materializing decoded instructions.
//!
//! # Record encoding
//!
//! One tag byte, then zero, one, or two zigzag varints:
//!
//! ```text
//! tag 0x01  instruction carries an effective address (loads/stores)
//! tag 0x02  instruction is a conditional branch (direction recorded)
//! tag 0x04  the branch was taken (only with 0x02)
//! tag 0x08  sequential control flow: pc == previous pc + 1 (no pc varint)
//! ```
//!
//! Without `0x08` the tag is followed by `zigzag(pc - (prev_pc + 1))`;
//! with `0x01` it is followed by `zigzag(addr - prev_addr)` (wrapping,
//! against the previous *memory* record's address). Sequence numbers are
//! implicit — records are the committed stream in order, numbered from 0
//! at the measurement point — and the static instruction is re-derived
//! from the embedded program text by `pc`, exactly like slim snapshot
//! records. A straight-line ALU instruction therefore costs one byte.

use std::path::Path;
use std::sync::{Arc, OnceLock};

use hbdc_isa::Program;
use hbdc_snap::{fnv1a64, open, seal, write_atomic, SnapError, StateReader, StateWriter};

use crate::dynamic::DynInst;
use crate::functional::Emulator;

/// Magic bytes identifying an HBTR trace container.
pub const TRACE_MAGIC: [u8; 4] = *b"HBTR";

/// Current HBTR format version.
///
/// Version history:
/// * 1 — initial layout (header, embedded program image, delta-encoded
///   committed records).
pub const TRACE_VERSION: u32 = 1;

const TAG_ADDR: u8 = 0x01;
const TAG_BRANCH: u8 = 0x02;
const TAG_TAKEN: u8 = 0x04;
const TAG_PC_SEQ: u8 = 0x08;
const TAG_KNOWN: u8 = TAG_ADDR | TAG_BRANCH | TAG_TAKEN | TAG_PC_SEQ;

/// Outcome of [`CommittedTrace::read_cached`]: the three-way answer a
/// self-healing trace cache needs (use it, capture fresh, or evict the
/// file *then* capture fresh).
#[derive(Debug)]
pub enum CacheLookup {
    /// A valid trace matching the requested program and warmup.
    Hit(Box<CommittedTrace>),
    /// No usable entry: the file is absent, or intact but for a
    /// different program, warmup, or an incomplete capture.
    Miss,
    /// The file exists but is corrupt or truncated; the caller should
    /// evict it (e.g. via `hbdc_snap::lock::evict_corrupt`) so the next
    /// run sees a clean miss.
    Corrupt(SnapError),
}

/// A captured committed-instruction stream: the program it came from plus
/// the delta-encoded dynamic records, validated and ready to replay.
///
/// The encoded bytes live behind [`Arc`]s, so cloning a trace (to fan one
/// capture out across the 13 port configurations of a matrix row) shares
/// the encoded stream instead of duplicating it.
///
/// # Examples
///
/// ```
/// use hbdc_cpu::CommittedTrace;
/// use hbdc_isa::asm::assemble;
///
/// let p = assemble("main: li r1, 1\n li r2, 2\n add r3, r1, r2\n halt\n")?;
/// let trace = CommittedTrace::capture(&p, 0, None)?;
/// assert_eq!(trace.records(), 4);
/// assert!(trace.is_complete());
/// let replayed: Vec<_> = std::iter::from_fn({
///     let mut player = trace.player();
///     move || player.step()
/// })
/// .collect();
/// assert_eq!(replayed.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CommittedTrace {
    sealed: Arc<Vec<u8>>,
    program: Arc<Program>,
    rec: Arc<Vec<u8>>,
    // Lazily predecoded record stream (see [`Decoded`]), shared by every
    // player of this trace and by every clone made after the first
    // player was built.
    decoded: OnceLock<Option<Arc<Decoded>>>,
    program_fp: u64,
    warmup_insts: u64,
    records: u64,
    loads: u64,
    stores: u64,
    complete: bool,
}

/// Streams at most this many records are predecoded into memory; longer
/// ones stay on the streaming varint path. At roughly 50 bytes per
/// expanded record this bounds the per-trace side table to ~100 MB —
/// paid once per benchmark, not once per matrix cell.
const PREDECODE_MAX_RECORDS: u64 = 2_000_000;

/// The records section expanded into ready-to-dispatch instruction
/// records, built once per trace when the stream is small enough
/// ([`PREDECODE_MAX_RECORDS`]). Replay's hot path then reads an array
/// element per step instead of running the varint decoder and the text
/// lookup in every one of the 13 matrix cells that share the capture.
#[derive(Debug)]
struct Decoded {
    insts: Vec<DynInst>,
    /// Byte offset just past each record in the encoded section, so the
    /// fast path keeps the streaming cursor fields — and therefore the
    /// snapshot byte format — exactly in sync with the streaming path.
    ends: Vec<u32>,
}

impl CommittedTrace {
    /// Runs `program` functionally once and captures its committed stream.
    ///
    /// The first `warmup_insts` instructions are executed but not
    /// recorded, and sequence numbering restarts at the measurement point
    /// — mirroring the timing simulator's own functional fast-forward, so
    /// a replay under the same `warmup_insts` setting is bit-identical to
    /// execute mode.
    ///
    /// `cap`, when given, bounds the recorded stream (a runaway-program
    /// guard for diagnostics); a capture that hits the cap is marked
    /// incomplete and refused by the replay constructor, because a
    /// truncated stream would starve fetch earlier than execute mode.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the assembled program image fails to
    /// round-trip (never for programs built by this workspace's
    /// assembler).
    pub fn capture(
        program: &Program,
        warmup_insts: u64,
        cap: Option<u64>,
    ) -> Result<Self, SnapError> {
        let mut emu = Emulator::new(program);
        for _ in 0..warmup_insts {
            if emu.step().is_none() {
                break;
            }
        }
        emu.rebase_seq();

        let mut rec = StateWriter::new();
        let mut records = 0u64;
        let (mut loads, mut stores) = (0u64, 0u64);
        let mut prev_pc = -1i64;
        let mut prev_addr = 0u64;
        let mut complete = true;
        while let Some(di) = emu.step() {
            let mut tag = 0u8;
            if di.addr.is_some() {
                tag |= TAG_ADDR;
                if di.inst.is_store() {
                    stores += 1;
                } else {
                    loads += 1;
                }
            }
            if let Some(t) = di.taken {
                tag |= TAG_BRANCH;
                if t {
                    tag |= TAG_TAKEN;
                }
            }
            let pc_delta = i64::from(di.pc) - (prev_pc + 1);
            if pc_delta == 0 {
                tag |= TAG_PC_SEQ;
            }
            rec.put_u8(tag);
            if pc_delta != 0 {
                rec.put_varint_i64(pc_delta);
            }
            if let Some(a) = di.addr {
                rec.put_varint_i64(a.wrapping_sub(prev_addr) as i64);
                prev_addr = a;
            }
            prev_pc = i64::from(di.pc);
            records += 1;
            if Some(records) == cap && !emu.halted() {
                complete = false;
                break;
            }
        }

        let image = hbdc_isa::object::to_bytes(program);
        let program_fp = fnv1a64(&image);
        let mut w = StateWriter::new();
        w.put_u64(program_fp);
        w.put_u64(warmup_insts);
        w.put_u64(records);
        w.put_u64(loads);
        w.put_u64(stores);
        w.put_bool(complete);
        w.put_bytes(&image);
        let rec = rec.into_bytes();
        w.put_bytes(&rec);
        let sealed = seal(TRACE_MAGIC, TRACE_VERSION, &w.into_bytes());
        Ok(Self {
            sealed: Arc::new(sealed),
            program: Arc::new(program.clone()),
            rec: Arc::new(rec),
            decoded: OnceLock::new(),
            program_fp,
            warmup_insts,
            records,
            loads,
            stores,
            complete,
        })
    }

    /// Parses and validates a sealed HBTR container.
    ///
    /// Beyond the container checksum, this walks the entire records
    /// section once, checking that every record decodes, lands on a PC
    /// inside the embedded text section, and is self-consistent (memory
    /// instructions carry addresses, branch directions sit on conditional
    /// branches, nothing else does). After this pass the replay cursor
    /// never needs to re-validate on the hot path.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`]: bad magic/version/checksum from the container
    /// envelope, [`SnapError::Truncated`] or [`SnapError::Corrupt`] for a
    /// records section that does not decode to exactly the advertised
    /// stream.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        let payload = open(&bytes, TRACE_MAGIC, TRACE_VERSION)?;
        let mut r = StateReader::new(payload);
        let program_fp = r.get_u64()?;
        let warmup_insts = r.get_u64()?;
        let records = r.get_u64()?;
        let loads = r.get_u64()?;
        let stores = r.get_u64()?;
        let complete = r.get_bool()?;
        let image = r.get_bytes()?;
        let rec = r.get_bytes()?;
        r.expect_end()?;
        let computed_fp = fnv1a64(&image);
        if computed_fp != program_fp {
            return Err(SnapError::Corrupt(format!(
                "program fingerprint mismatch: header says {program_fp:#018x}, \
                 image hashes to {computed_fp:#018x}"
            )));
        }
        let program = hbdc_isa::object::from_bytes(&image)
            .map_err(|e| SnapError::Corrupt(format!("embedded program image: {e}")))?;

        let trace = Self {
            sealed: Arc::new(bytes),
            program: Arc::new(program),
            rec: Arc::new(rec),
            decoded: OnceLock::new(),
            program_fp,
            warmup_insts,
            records,
            loads,
            stores,
            complete,
        };
        trace.validate_records()?;
        Ok(trace)
    }

    /// One full decode pass over the records section (see
    /// [`from_bytes`](Self::from_bytes)).
    fn validate_records(&self) -> Result<(), SnapError> {
        let text = self.program.text();
        let mut r = StateReader::new(&self.rec);
        let mut prev_pc = -1i64;
        let (mut loads, mut stores) = (0u64, 0u64);
        for n in 0..self.records {
            let tag = r.get_u8()?;
            if tag & !TAG_KNOWN != 0 {
                return Err(SnapError::Corrupt(format!(
                    "record {n}: unknown tag bits {tag:#04x}"
                )));
            }
            let pc = if tag & TAG_PC_SEQ != 0 {
                prev_pc + 1
            } else {
                let delta = r.get_varint_i64()?;
                if delta == 0 {
                    return Err(SnapError::Corrupt(format!(
                        "record {n}: explicit zero pc delta (must use the sequential tag)"
                    )));
                }
                prev_pc + 1 + delta
            };
            let inst = u32::try_from(pc)
                .ok()
                .and_then(|pc| text.get(pc as usize))
                .ok_or_else(|| {
                    SnapError::Corrupt(format!(
                        "record {n}: pc {pc} out of range for a {}-instruction text section",
                        text.len()
                    ))
                })?;
            if tag & TAG_ADDR != 0 {
                r.get_varint_i64()?;
                if inst.is_store() {
                    stores += 1;
                } else {
                    loads += 1;
                }
            }
            if (tag & TAG_ADDR != 0) != inst.is_mem() {
                return Err(SnapError::Corrupt(format!(
                    "record {n}: address flag disagrees with instruction {inst:?} at pc {pc}"
                )));
            }
            if tag & TAG_BRANCH == 0 && tag & TAG_TAKEN != 0 {
                return Err(SnapError::Corrupt(format!(
                    "record {n}: taken flag without a branch flag"
                )));
            }
            if (tag & TAG_BRANCH != 0) != matches!(inst, hbdc_isa::Inst::Branch { .. }) {
                return Err(SnapError::Corrupt(format!(
                    "record {n}: branch flag disagrees with instruction {inst:?} at pc {pc}"
                )));
            }
            prev_pc = pc;
        }
        r.expect_end()?;
        if loads != self.loads || stores != self.stores {
            return Err(SnapError::Corrupt(format!(
                "memory census mismatch: header says {}/{} loads/stores, records hold {loads}/{stores}",
                self.loads, self.stores
            )));
        }
        Ok(())
    }

    /// Reads and validates a trace file.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on read failure, otherwise the same validation
    /// failures as [`from_bytes`](Self::from_bytes).
    pub fn read_from_path(path: &Path) -> Result<Self, SnapError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapError::Io(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(bytes)
    }

    /// Looks a trace up in an on-disk cache, classifying the outcome so
    /// callers can self-heal: a [`Miss`](CacheLookup::Miss) (no file, or
    /// a valid trace that does not match this program/warmup — a stale
    /// but intact entry) means "capture fresh", while
    /// [`Corrupt`](CacheLookup::Corrupt) (the file exists but fails the
    /// seal, checksum, or record validation) means "evict this file,
    /// then capture fresh" — re-parsing the same bad bytes on every run
    /// would otherwise re-pay the capture forever without saying why.
    pub fn read_cached(path: &Path, program_fp: u64, warmup: u64) -> CacheLookup {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => {
                return CacheLookup::Corrupt(SnapError::Io(format!("read {}: {e}", path.display())))
            }
        };
        match Self::from_bytes(bytes) {
            // The fingerprint is normally in the file name, but a renamed
            // or hand-edited file must still never drive a replay.
            Ok(t)
                if t.program_fingerprint() == program_fp
                    && t.warmup_insts() == warmup
                    && t.is_complete() =>
            {
                CacheLookup::Hit(Box::new(t))
            }
            Ok(_) => CacheLookup::Miss,
            Err(e) => CacheLookup::Corrupt(e),
        }
    }

    /// Writes the sealed container crash-safely (temp-then-rename).
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on write failure.
    pub fn write_to_path(&self, path: &Path) -> Result<(), SnapError> {
        write_atomic(path, &self.sealed)
    }

    /// The sealed container image (what [`write_to_path`](Self::write_to_path)
    /// writes; snapshots of replaying simulators embed exactly these bytes).
    pub fn as_bytes(&self) -> &[u8] {
        &self.sealed
    }

    /// The program the stream was captured from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// FNV-1a fingerprint of the program object image (the cache key).
    pub fn program_fingerprint(&self) -> u64 {
        self.program_fp
    }

    /// Instructions functionally skipped before record 0.
    pub fn warmup_insts(&self) -> u64 {
        self.warmup_insts
    }

    /// Committed records in the stream.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Loads recorded in the stream.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores recorded in the stream.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Whether the capture ran to the program's own halt (as opposed to
    /// hitting a capture cap).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// A fresh replay cursor positioned at record 0. Small streams
    /// (≤ [`PREDECODE_MAX_RECORDS`]) are predecoded — once, shared by
    /// every player — so stepping is an array read; larger ones decode
    /// incrementally from the encoded bytes. Both paths yield identical
    /// records and identical cursor state.
    pub fn player(&self) -> TracePlayer {
        let mut p = self.streaming_player();
        p.decoded = self.decoded().cloned();
        p
    }

    /// A cursor pinned to the incremental-decode path (the predecode
    /// fast path must be observationally indistinguishable from this).
    fn streaming_player(&self) -> TracePlayer {
        TracePlayer {
            rec: Arc::clone(&self.rec),
            program: Arc::clone(&self.program),
            decoded: None,
            pos: 0,
            next_seq: 0,
            prev_pc: -1,
            prev_addr: 0,
            total: self.records,
        }
    }

    /// The shared predecoded stream, built on first use; `None` when the
    /// stream exceeds the predecode threshold.
    fn decoded(&self) -> Option<&Arc<Decoded>> {
        self.decoded
            .get_or_init(|| {
                if self.records > PREDECODE_MAX_RECORDS || self.rec.len() > u32::MAX as usize {
                    return None;
                }
                let mut insts = Vec::with_capacity(self.records as usize);
                let mut ends = Vec::with_capacity(self.records as usize);
                let mut p = self.streaming_player();
                while let Some(di) = p.step() {
                    insts.push(di);
                    ends.push(p.pos as u32);
                }
                Some(Arc::new(Decoded { insts, ends }))
            })
            .as_ref()
    }
}

/// A streaming replay cursor over a [`CommittedTrace`]'s records section.
///
/// Decodes one record per [`step`](Self::step) in O(1) memory, sharing
/// the encoded bytes with the trace (and with every other player of the
/// same trace). The records were fully validated when the trace was
/// parsed, so stepping is infallible: the cursor yields `None` exactly
/// once the recorded stream ends, just like [`Emulator::step`] at halt.
#[derive(Debug, Clone)]
pub struct TracePlayer {
    rec: Arc<Vec<u8>>,
    program: Arc<Program>,
    // Fast path: the trace's shared predecoded stream, indexed by
    // `next_seq`. The streaming cursor fields below stay maintained
    // either way, so snapshots are byte-identical across paths.
    decoded: Option<Arc<Decoded>>,
    pos: usize,
    next_seq: u64,
    prev_pc: i64,
    prev_addr: u64,
    total: u64,
}

impl TracePlayer {
    /// Decodes the record at `pos` without committing the cursor.
    /// Returns `None` at end of stream (or, defensively, on bytes that
    /// fail to decode — unreachable after parse-time validation).
    fn decode_at(&self) -> Option<(DynInst, usize)> {
        if self.next_seq >= self.total {
            return None;
        }
        let mut r = StateReader::new(self.rec.get(self.pos..)?);
        let tag = r.get_u8().ok()?;
        let pc64 = if tag & TAG_PC_SEQ != 0 {
            self.prev_pc + 1
        } else {
            self.prev_pc + 1 + r.get_varint_i64().ok()?
        };
        let pc = u32::try_from(pc64).ok()?;
        let inst = *self.program.text().get(pc as usize)?;
        let addr = if tag & TAG_ADDR != 0 {
            Some(self.prev_addr.wrapping_add(r.get_varint_i64().ok()? as u64))
        } else {
            None
        };
        let taken = if tag & TAG_BRANCH != 0 {
            Some(tag & TAG_TAKEN != 0)
        } else {
            None
        };
        let di = DynInst {
            seq: self.next_seq,
            pc,
            inst,
            addr,
            taken,
        };
        Some((di, self.rec.len() - r.remaining()))
    }

    /// Yields the next committed instruction, or `None` at end of stream.
    pub fn step(&mut self) -> Option<DynInst> {
        let (di, next_pos) = match &self.decoded {
            Some(d) => {
                let i = usize::try_from(self.next_seq).ok()?;
                (*d.insts.get(i)?, *d.ends.get(i)? as usize)
            }
            None => self.decode_at()?,
        };
        self.pos = next_pos;
        self.next_seq += 1;
        self.prev_pc = i64::from(di.pc);
        if let Some(a) = di.addr {
            self.prev_addr = a;
        }
        Some(di)
    }

    /// The PC of the next undelivered record (diagnostics; mirrors
    /// [`Emulator::pc`] pointing at the next instruction). Falls back to
    /// one past the last delivered PC at end of stream.
    pub fn peek_pc(&self) -> u32 {
        let next = match &self.decoded {
            Some(d) => usize::try_from(self.next_seq)
                .ok()
                .and_then(|i| d.insts.get(i))
                .map(|di| di.pc),
            None => self.decode_at().map(|(di, _)| di.pc),
        };
        next.unwrap_or_else(|| u32::try_from(self.prev_pc + 1).unwrap_or(u32::MAX))
    }

    /// Records delivered so far (the next record's sequence number).
    pub fn delivered(&self) -> u64 {
        self.next_seq
    }

    /// Whether every record has been delivered.
    pub fn exhausted(&self) -> bool {
        self.next_seq >= self.total
    }

    /// Serializes the cursor (not the trace bytes — the snapshot layer
    /// embeds those separately, once).
    pub(crate) fn save_cursor(&self, w: &mut StateWriter) {
        w.put_usize(self.pos);
        w.put_u64(self.next_seq);
        w.put_i64(self.prev_pc);
        w.put_u64(self.prev_addr);
    }

    /// Restores a cursor written by [`save_cursor`](Self::save_cursor).
    pub(crate) fn load_cursor(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let pos = r.get_usize()?;
        let next_seq = r.get_u64()?;
        let prev_pc = r.get_i64()?;
        let prev_addr = r.get_u64()?;
        if pos > self.rec.len() {
            return Err(SnapError::Corrupt(format!(
                "trace cursor offset {pos} beyond a {}-byte records section",
                self.rec.len()
            )));
        }
        if next_seq > self.total {
            return Err(SnapError::Corrupt(format!(
                "trace cursor seq {next_seq} beyond a {}-record stream",
                self.total
            )));
        }
        self.pos = pos;
        self.next_seq = next_seq;
        self.prev_pc = prev_pc;
        self.prev_addr = prev_addr;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_isa::asm::assemble;

    fn program(src: &str) -> Program {
        assemble(src).expect("test program assembles")
    }

    const KERNEL: &str = ".data
v: .word 3, 5, 7, 9
.text
main:
    la r8, v
    li r9, 4
    li r10, 0
loop:
    lw r11, 0(r8)
    add r10, r10, r11
    sw r10, 0(r8)
    addi r8, r8, 4
    addi r9, r9, -1
    bnez r9, loop
    halt
";

    fn emulated(p: &Program, warmup: u64) -> Vec<DynInst> {
        let mut emu = Emulator::new(p);
        for _ in 0..warmup {
            if emu.step().is_none() {
                break;
            }
        }
        emu.rebase_seq();
        std::iter::from_fn(move || emu.step()).collect()
    }

    #[test]
    fn replay_matches_emulation_record_for_record() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let mut player = trace.player();
        let replayed: Vec<DynInst> = std::iter::from_fn(|| player.step()).collect();
        assert_eq!(replayed, emulated(&p, 0));
        assert!(player.exhausted());
        assert!(player.step().is_none());
    }

    #[test]
    fn warmup_offsets_the_measurement_point() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 5, None).unwrap();
        assert_eq!(trace.warmup_insts(), 5);
        let mut player = trace.player();
        let replayed: Vec<DynInst> = std::iter::from_fn(|| player.step()).collect();
        assert_eq!(replayed, emulated(&p, 5));
    }

    #[test]
    fn file_roundtrip_preserves_everything() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 2, None).unwrap();
        let reparsed = CommittedTrace::from_bytes(trace.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.records(), trace.records());
        assert_eq!(reparsed.warmup_insts(), 2);
        assert_eq!(reparsed.loads(), trace.loads());
        assert_eq!(reparsed.stores(), trace.stores());
        assert_eq!(reparsed.program_fingerprint(), trace.program_fingerprint());
        assert!(reparsed.is_complete());
        let mut a = trace.player();
        let mut b = reparsed.player();
        loop {
            match (a.step(), b.step()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn census_counts_loads_and_stores() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        assert_eq!(trace.loads(), 4);
        assert_eq!(trace.stores(), 4);
    }

    #[test]
    fn encoding_is_compact_for_straightline_code() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        // Sequential non-mem records are 1 byte, memory and
        // branch records a handful. Far below the 48-byte in-memory record.
        let rec_len = {
            // records section length = sealed - header - fixed fields - image.
            trace.as_bytes().len()
        };
        assert!(
            rec_len < trace.records() as usize * 8 + 512,
            "trace unexpectedly large: {rec_len} bytes for {} records",
            trace.records()
        );
    }

    #[test]
    fn capture_cap_marks_incomplete() {
        let p = program(KERNEL);
        let capped = CommittedTrace::capture(&p, 0, Some(5)).unwrap();
        assert_eq!(capped.records(), 5);
        assert!(!capped.is_complete());
        // A cap past the natural end changes nothing.
        let roomy = CommittedTrace::capture(&p, 0, Some(1_000_000)).unwrap();
        assert!(roomy.is_complete());
        assert_eq!(
            roomy.records(),
            CommittedTrace::capture(&p, 0, None).unwrap().records()
        );
    }

    #[test]
    fn corrupted_bytes_are_typed_errors_not_panics() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let sealed = trace.as_bytes().to_vec();

        // Flipping a payload bit fails the container checksum.
        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            CommittedTrace::from_bytes(flipped),
            Err(SnapError::ChecksumMismatch { .. })
        ));

        // Truncation fails before any record decodes.
        assert!(CommittedTrace::from_bytes(sealed[..sealed.len() / 2].to_vec()).is_err());

        // Wrong magic is rejected as not-a-trace.
        let mut wrong = sealed.clone();
        wrong[..4].copy_from_slice(b"HBSN");
        assert!(matches!(
            CommittedTrace::from_bytes(wrong),
            Err(SnapError::BadMagic { .. })
        ));

        // A record stream that decodes but contradicts the embedded text
        // (here: one record too few) is Corrupt, caught by validation.
        let payload = open(&sealed, TRACE_MAGIC, TRACE_VERSION).unwrap();
        let mut r = StateReader::new(payload);
        let fp = r.get_u64().unwrap();
        let warm = r.get_u64().unwrap();
        let n = r.get_u64().unwrap();
        let loads = r.get_u64().unwrap();
        let stores = r.get_u64().unwrap();
        let complete = r.get_bool().unwrap();
        let image = r.get_bytes().unwrap();
        let rec = r.get_bytes().unwrap();
        let mut w = StateWriter::new();
        w.put_u64(fp);
        w.put_u64(warm);
        w.put_u64(n + 1); // advertise one more record than exists
        w.put_u64(loads);
        w.put_u64(stores);
        w.put_bool(complete);
        w.put_bytes(&image);
        w.put_bytes(&rec);
        let forged = seal(TRACE_MAGIC, TRACE_VERSION, &w.into_bytes());
        assert!(CommittedTrace::from_bytes(forged).is_err());
    }

    #[test]
    fn cursor_roundtrips_mid_stream() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let mut player = trace.player();
        for _ in 0..10 {
            player.step();
        }
        let mut w = StateWriter::new();
        player.save_cursor(&mut w);
        let bytes = w.into_bytes();

        let mut restored = trace.player();
        let mut r = StateReader::new(&bytes);
        restored.load_cursor(&mut r).unwrap();
        assert_eq!(restored.delivered(), 10);
        loop {
            match (player.step(), restored.step()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn bogus_cursor_is_rejected() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let mut w = StateWriter::new();
        w.put_usize(usize::MAX); // offset far beyond the records section
        w.put_u64(0);
        w.put_i64(-1);
        w.put_u64(0);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(
            trace.player().load_cursor(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    /// The predecoded fast path must be observationally identical to the
    /// streaming decoder: same records, same peeked PCs, and the same
    /// serialized cursor bytes after every step (snapshots must not
    /// depend on which path a player used).
    #[test]
    fn predecoded_and_streaming_players_are_indistinguishable() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let mut fast = trace.player();
        assert!(fast.decoded.is_some(), "small stream should predecode");
        let mut slow = trace.streaming_player();
        loop {
            assert_eq!(fast.peek_pc(), slow.peek_pc());
            let (a, b) = (fast.step(), slow.step());
            assert_eq!(a, b);
            let (mut wa, mut wb) = (StateWriter::new(), StateWriter::new());
            fast.save_cursor(&mut wa);
            slow.save_cursor(&mut wb);
            assert_eq!(wa.into_bytes(), wb.into_bytes(), "cursor bytes diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_pc_tracks_the_next_record() {
        let p = program(KERNEL);
        let trace = CommittedTrace::capture(&p, 0, None).unwrap();
        let mut player = trace.player();
        let mut emu = Emulator::new(&p);
        loop {
            assert_eq!(player.peek_pc(), emu.pc());
            let (a, b) = (player.step(), emu.step());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
