//! Typed simulation failures.
//!
//! Everything that can go wrong on the simulate path — malformed
//! instructions, pipeline deadlock, cycle-budget exhaustion, invariant
//! violations, degenerate configurations — surfaces as a [`SimError`]
//! carrying the cycle, program counter, and unit context needed to
//! diagnose it, instead of a panic that takes down a whole experiment
//! matrix.

use hbdc_core::Violation;

/// A simulation failure, with enough context to pinpoint the cycle and
/// unit at fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The dynamic instruction stream handed the pipeline an instruction
    /// it cannot dispatch (e.g. a memory instruction without a width).
    Malformed {
        /// Cycle at which the instruction was fetched.
        cycle: u64,
        /// RUU sequence number of the offending instruction.
        seq: u64,
        /// Program counter of the offending instruction.
        pc: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// The forward-progress watchdog fired: no instruction committed for
    /// the configured number of consecutive cycles. Always a model bug,
    /// never a property of the workload.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed before the pipeline wedged.
        committed: u64,
        /// Cycles since the last commit when the watchdog fired.
        stalled_for: u64,
        /// Diagnostic dump: window census, LSQ state, port-model state.
        dump: String,
    },
    /// The run exceeded the configured hard cap on simulated cycles
    /// without finishing.
    CycleLimit {
        /// The configured cap that was hit.
        max_cycles: u64,
        /// Instructions committed within the budget.
        committed: u64,
        /// Diagnostic dump: cycle/PC progress, window census, LSQ state,
        /// port-model state.
        dump: String,
    },
    /// The per-cycle invariant auditor found the arbitration or LSQ state
    /// structurally illegal.
    Invariant {
        /// Cycle whose arbitration round was illegal.
        cycle: u64,
        /// Every rule violated this cycle.
        violations: Vec<Violation>,
    },
    /// The simulator was constructed from a degenerate configuration.
    Config {
        /// What was wrong with the configuration.
        detail: String,
    },
    /// A checkpoint could not be written, read, or restored (I/O failure,
    /// checksum mismatch, version skew, or internally inconsistent state).
    Snapshot {
        /// What was wrong with the snapshot.
        detail: String,
    },
    /// A committed-stream trace could not be read, or does not fit the
    /// requested replay (corrupt file, warmup mismatch, incomplete
    /// capture).
    Trace {
        /// What was wrong with the trace.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Malformed {
                cycle,
                seq,
                pc,
                detail,
            } => write!(
                f,
                "malformed instruction at pc {pc:#x} (seq {seq}, cycle {cycle}): {detail}"
            ),
            SimError::Deadlock {
                cycle,
                committed,
                stalled_for,
                dump,
            } => write!(
                f,
                "pipeline deadlock at cycle {cycle}: no commit for {stalled_for} cycles \
                 ({committed} committed)\n{dump}"
            ),
            SimError::CycleLimit {
                max_cycles,
                committed,
                dump,
            } => write!(
                f,
                "cycle limit exceeded: {max_cycles} cycles simulated without finishing \
                 ({committed} committed)\n{dump}"
            ),
            SimError::Invariant { cycle, violations } => {
                write!(f, "invariant violation at cycle {cycle}:")?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            SimError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            SimError::Snapshot { detail } => write!(f, "snapshot failure: {detail}"),
            SimError::Trace { detail } => write!(f, "trace failure: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<hbdc_snap::SnapError> for SimError {
    fn from(e: hbdc_snap::SnapError) -> Self {
        SimError::Snapshot {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::Malformed {
            cycle: 7,
            seq: 3,
            pc: 0x40,
            detail: "memory instruction without a width".into(),
        };
        let s = e.to_string();
        assert!(s.contains("0x40") && s.contains("cycle 7"), "{s}");

        let e = SimError::Invariant {
            cycle: 12,
            violations: vec![Violation::new("banked-double-grant", "bank 0 twice")],
        };
        let s = e.to_string();
        assert!(
            s.contains("cycle 12") && s.contains("banked-double-grant"),
            "{s}"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<SimError>();
    }
}
