//! End-of-run simulation report.

/// The measurements produced by one [`Simulator`](crate::Simulator) run —
/// a passive record of everything the paper's tables report.
///
/// # Examples
///
/// ```
/// let r = hbdc_cpu::SimReport {
///     committed: 300,
///     cycles: 100,
///     loads: 80,
///     stores: 20,
///     forwards: 5,
///     l1_accesses: 95,
///     l1_misses: 3,
///     l1_writebacks: 1,
///     l2_accesses: 4,
///     l2_misses: 4,
///     arb_offered: 120,
///     arb_granted: 95,
///     bank_conflicts: 10,
///     combined: 15,
///     store_serializations: 0,
///     port_label: "LBIC-4x2".into(),
///     skipped_cycles: 0,
///     wall_secs: 0.0,
///     cycles_per_sec: 0.0,
///     events_per_sec: 0.0,
/// };
/// assert_eq!(r.ipc(), 3.0);
/// assert!((r.mem_fraction() - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(r.store_to_load_ratio(), 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Loads serviced by store-to-load forwarding (never reached the cache).
    pub forwards: u64,
    /// L1 data-cache accesses.
    pub l1_accesses: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L1 dirty-victim writebacks.
    pub l1_writebacks: u64,
    /// L2 accesses (L1 miss traffic).
    pub l2_accesses: u64,
    /// L2 misses (DRAM traffic).
    pub l2_misses: u64,
    /// References offered to the port model across all cycles.
    pub arb_offered: u64,
    /// References granted by the port model.
    pub arb_granted: u64,
    /// Bank conflicts (banked and LBIC models; 0 otherwise).
    pub bank_conflicts: u64,
    /// Same-line combined accesses (LBIC only; 0 otherwise).
    pub combined: u64,
    /// Cycles monopolized by a broadcast store (replicated model only).
    pub store_serializations: u64,
    /// Label of the port model under test, e.g. `"Bank-8"`.
    pub port_label: String,
    /// Cycles the run loop fast-forwarded over instead of executing
    /// (see [`cycle_skip`](crate::CpuConfig::cycle_skip)). A property of
    /// how the simulator ran, not of the simulated machine: a ticked run
    /// reports 0 here and identical everything else.
    pub skipped_cycles: u64,
    /// Wall-clock seconds spent inside [`run`](crate::Simulator::run) —
    /// a measurement of the *simulator*, not the simulated machine.
    pub wall_secs: f64,
    /// Simulated cycles per wall-clock second (simulator throughput).
    pub cycles_per_sec: f64,
    /// Executed (non-skipped) cycles per wall-clock second — the rate at
    /// which the simulator retires actual work, independent of how much
    /// idle time the event calendar let it skip.
    pub events_per_sec: f64,
}

/// Equality covers only the simulated-machine measurements:
/// `skipped_cycles`, `wall_secs`, `cycles_per_sec`, and
/// `events_per_sec` describe how the host ran the simulation and are
/// excluded, so bit-identical simulations compare equal regardless of
/// host timing or whether idle spans were skipped or ticked through.
impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        let SimReport {
            committed,
            cycles,
            loads,
            stores,
            forwards,
            l1_accesses,
            l1_misses,
            l1_writebacks,
            l2_accesses,
            l2_misses,
            arb_offered,
            arb_granted,
            bank_conflicts,
            combined,
            store_serializations,
            port_label,
            skipped_cycles: _,
            wall_secs: _,
            cycles_per_sec: _,
            events_per_sec: _,
        } = self;
        *committed == other.committed
            && *cycles == other.cycles
            && *loads == other.loads
            && *stores == other.stores
            && *forwards == other.forwards
            && *l1_accesses == other.l1_accesses
            && *l1_misses == other.l1_misses
            && *l1_writebacks == other.l1_writebacks
            && *l2_accesses == other.l2_accesses
            && *l2_misses == other.l2_misses
            && *arb_offered == other.arb_offered
            && *arb_granted == other.arb_granted
            && *bank_conflicts == other.bank_conflicts
            && *combined == other.combined
            && *store_serializations == other.store_serializations
            && *port_label == other.port_label
    }
}

impl SimReport {
    /// Instructions per cycle — the paper's headline metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that are memory operations
    /// (paper Table 2, "Mem Instr. %").
    pub fn mem_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.committed as f64
        }
    }

    /// Stores per load (paper Table 2, "Store-to-Load Ratio").
    pub fn store_to_load_ratio(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.stores as f64 / self.loads as f64
        }
    }

    /// L1 miss rate over actual cache accesses (paper Table 2, "L1 Miss
    /// Rate").
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Number of tab-separated fields in a [`to_record`](Self::to_record)
    /// line: the fifteen simulated counters plus the port label.
    const RECORD_FIELDS: usize = 16;

    /// Renders the simulated-machine measurements as one tab-separated
    /// record line (no trailing newline) for the matrix run journal.
    ///
    /// The host-run fields (`skipped_cycles`, `wall_secs`,
    /// `cycles_per_sec`, `events_per_sec`) describe a run that already
    /// happened and are deliberately not persisted; they parse back as
    /// zero, which [`PartialEq`] already ignores.
    pub fn to_record(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.committed,
            self.cycles,
            self.loads,
            self.stores,
            self.forwards,
            self.l1_accesses,
            self.l1_misses,
            self.l1_writebacks,
            self.l2_accesses,
            self.l2_misses,
            self.arb_offered,
            self.arb_granted,
            self.bank_conflicts,
            self.combined,
            self.store_serializations,
            self.port_label,
        )
    }

    /// Parses a record line written by [`to_record`](Self::to_record).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed or missing field.
    pub fn from_record(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.splitn(Self::RECORD_FIELDS, '\t').collect();
        if fields.len() != Self::RECORD_FIELDS {
            return Err(format!(
                "report record has {} fields, expected {}",
                fields.len(),
                Self::RECORD_FIELDS
            ));
        }
        let mut it = fields.iter();
        let mut num = |name: &str| -> Result<u64, String> {
            let raw = it.next().ok_or_else(|| format!("missing field {name}"))?;
            raw.parse::<u64>()
                .map_err(|e| format!("field {name} is not a count (`{raw}`): {e}"))
        };
        Ok(SimReport {
            committed: num("committed")?,
            cycles: num("cycles")?,
            loads: num("loads")?,
            stores: num("stores")?,
            forwards: num("forwards")?,
            l1_accesses: num("l1_accesses")?,
            l1_misses: num("l1_misses")?,
            l1_writebacks: num("l1_writebacks")?,
            l2_accesses: num("l2_accesses")?,
            l2_misses: num("l2_misses")?,
            arb_offered: num("arb_offered")?,
            arb_granted: num("arb_granted")?,
            bank_conflicts: num("bank_conflicts")?,
            combined: num("combined")?,
            store_serializations: num("store_serializations")?,
            port_label: fields[Self::RECORD_FIELDS - 1].to_string(),
            skipped_cycles: 0,
            wall_secs: 0.0,
            cycles_per_sec: 0.0,
            events_per_sec: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            committed: 1000,
            cycles: 250,
            loads: 200,
            stores: 100,
            forwards: 20,
            l1_accesses: 280,
            l1_misses: 14,
            l1_writebacks: 3,
            l2_accesses: 14,
            l2_misses: 7,
            arb_offered: 400,
            arb_granted: 280,
            bank_conflicts: 50,
            combined: 30,
            store_serializations: 0,
            port_label: "Bank-4".into(),
            skipped_cycles: 0,
            wall_secs: 0.0,
            cycles_per_sec: 0.0,
            events_per_sec: 0.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert_eq!(r.ipc(), 4.0);
        assert!((r.mem_fraction() - 0.3).abs() < 1e-12);
        assert!((r.store_to_load_ratio() - 0.5).abs() < 1e-12);
        assert!((r.l1_miss_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let r = SimReport {
            committed: 0,
            cycles: 0,
            loads: 0,
            stores: 0,
            forwards: 0,
            l1_accesses: 0,
            l1_misses: 0,
            l1_writebacks: 0,
            l2_accesses: 0,
            l2_misses: 0,
            arb_offered: 0,
            arb_granted: 0,
            bank_conflicts: 0,
            combined: 0,
            store_serializations: 0,
            port_label: String::new(),
            skipped_cycles: 0,
            wall_secs: 0.0,
            cycles_per_sec: 0.0,
            events_per_sec: 0.0,
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mem_fraction(), 0.0);
        assert_eq!(r.store_to_load_ratio(), 0.0);
        assert_eq!(r.l1_miss_rate(), 0.0);
    }

    #[test]
    fn record_roundtrip_preserves_simulated_fields() {
        let r = SimReport {
            wall_secs: 9.0,
            cycles_per_sec: 1e6,
            ..sample()
        };
        let parsed = SimReport::from_record(&r.to_record()).unwrap();
        assert_eq!(parsed, r, "PartialEq ignores the host-timing fields");
        assert_eq!(parsed.wall_secs, 0.0, "host timing is not persisted");
        assert_eq!(parsed.port_label, "Bank-4");
    }

    #[test]
    fn malformed_records_are_rejected_with_context() {
        let err = SimReport::from_record("1\t2\t3").unwrap_err();
        assert!(err.contains("3 fields"), "{err}");
        let mut bad = sample().to_record();
        bad = bad.replacen("250", "x250", 1);
        let err = SimReport::from_record(&bad).unwrap_err();
        assert!(err.contains("cycles") && err.contains("x250"), "{err}");
    }

    #[test]
    fn equality_ignores_host_timing() {
        let a = sample();
        let b = SimReport {
            skipped_cycles: 7,
            wall_secs: 123.0,
            cycles_per_sec: 456.0,
            events_per_sec: 78.0,
            ..sample()
        };
        assert_eq!(a, b);
        let c = SimReport {
            cycles: a.cycles + 1,
            ..sample()
        };
        assert_ne!(a, c);
    }
}
