//! Processor configuration (paper Table 1).

use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::bpred::FrontEnd;

/// Configuration of the dynamic superscalar machine.
///
/// The default matches the paper's Table 1: fetch and out-of-order issue
/// of up to 64 operations per cycle, a 1024-entry register update unit, a
/// 512-entry load/store queue, perfect instruction supply and branch
/// prediction, and 64 functional units of every class.
///
/// # Examples
///
/// ```
/// let cfg = hbdc_cpu::CpuConfig::default();
/// assert_eq!(cfg.fetch_width, 64);
/// assert_eq!(cfg.ruu_size, 1024);
/// assert_eq!(cfg.lsq_size, 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched (in program order) per cycle.
    pub fetch_width: u32,
    /// Operations issued out of order per cycle.
    pub issue_width: u32,
    /// Instructions committed in order per cycle.
    pub commit_width: u32,
    /// Register update unit (instruction window / reorder buffer) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Number of integer ALUs.
    pub int_alu_units: u32,
    /// Number of integer multipliers.
    pub int_mult_units: u32,
    /// Number of integer dividers.
    pub int_div_units: u32,
    /// Number of FP adders.
    pub fp_add_units: u32,
    /// Number of FP multipliers.
    pub fp_mult_units: u32,
    /// Number of FP dividers.
    pub fp_div_units: u32,
    /// Number of load/store units — the address-generation throughput cap
    /// per cycle (paper Table 1: "varying # of L/S units"). The *cache*
    /// bandwidth is governed by the port model; this bounds how many
    /// memory instructions can begin address generation per cycle.
    pub ls_units: u32,
    /// Functionally fast-forward this many instructions before timing
    /// begins (skips warm-up phases such as workload data initialization;
    /// the cache starts cold at the measurement point, as in sampled
    /// simulation).
    pub warmup_insts: u64,
    /// Stop after this many committed instructions (`u64::MAX` = run to
    /// `halt`).
    pub max_insts: u64,
    /// Front-end model: perfect branch prediction (the paper's Table 1)
    /// or a real predictor with misprediction stalls.
    pub front_end: FrontEnd,
    /// Forward-progress watchdog: cycles without a commit after which the
    /// run fails with [`SimError::Deadlock`](crate::SimError::Deadlock).
    /// The longest legitimate stall is a full MSHR file of DRAM misses —
    /// thousands of cycles at most — so the default of 100 000 only trips
    /// on model bugs.
    pub watchdog_cycles: u64,
    /// Hard cap on simulated cycles: exceeding it fails the run with
    /// [`SimError::CycleLimit`](crate::SimError::CycleLimit) (`u64::MAX`
    /// = unlimited). Catches livelocks that keep committing — a runaway
    /// trace, a misconfigured `max_insts` — where the watchdog cannot.
    pub max_cycles: u64,
    /// Run the per-cycle invariant auditor (LSQ ordering, port-model
    /// grant legality). A pure observer: audited runs are bit-identical
    /// to unaudited ones, at some simulation-speed cost. Defaults to off,
    /// or on when the crate is built with the `audit` feature (which is
    /// how `cargo test --features audit` sweeps the whole suite under
    /// auditing).
    pub audit: bool,
    /// Fast-forward the run loop over provably idle cycle spans (cache
    /// fills in flight, unpipelined dividers grinding, redirect
    /// penalties elapsing). Skipped runs are bit-identical to ticked
    /// ones — every counter, statistic, error, and pause point matches —
    /// so this defaults to on; turn it off to force cycle-by-cycle
    /// execution. Audited runs always tick regardless of this flag,
    /// which makes `audit` double as a skip-equivalence cross-check.
    pub cycle_skip: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 64,
            issue_width: 64,
            commit_width: 64,
            ruu_size: 1024,
            lsq_size: 512,
            int_alu_units: 64,
            int_mult_units: 64,
            int_div_units: 64,
            fp_add_units: 64,
            fp_mult_units: 64,
            fp_div_units: 64,
            ls_units: 64,
            warmup_insts: 0,
            max_insts: u64::MAX,
            front_end: FrontEnd::Perfect,
            watchdog_cycles: 100_000,
            max_cycles: u64::MAX,
            audit: cfg!(feature = "audit"),
            cycle_skip: true,
        }
    }
}

impl CpuConfig {
    /// A configuration capped at `max_insts` committed instructions,
    /// otherwise Table-1 defaults. Every experiment harness uses this to
    /// scale run length.
    pub fn with_max_insts(max_insts: u64) -> Self {
        Self {
            max_insts,
            ..Self::default()
        }
    }

    /// Checks the configuration for degenerate values that would wedge or
    /// crash the pipeline (zero widths, empty window or queue, a zero
    /// watchdog budget).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("fetch/issue/commit widths must all be at least 1".into());
        }
        if self.ruu_size == 0 {
            return Err("RUU needs at least one entry".into());
        }
        if self.lsq_size == 0 {
            return Err("LSQ needs at least one entry".into());
        }
        if self.ls_units == 0 {
            return Err("need at least one load/store unit".into());
        }
        if self.watchdog_cycles == 0 {
            return Err("watchdog budget must be at least one cycle".into());
        }
        if self.max_cycles == 0 {
            return Err("cycle cap must be at least one cycle".into());
        }
        Ok(())
    }

    /// Serializes every configuration field (checkpoints embed the full
    /// machine description so a resumed run needs no external config).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u32(self.fetch_width);
        w.put_u32(self.issue_width);
        w.put_u32(self.commit_width);
        w.put_usize(self.ruu_size);
        w.put_usize(self.lsq_size);
        w.put_u32(self.int_alu_units);
        w.put_u32(self.int_mult_units);
        w.put_u32(self.int_div_units);
        w.put_u32(self.fp_add_units);
        w.put_u32(self.fp_mult_units);
        w.put_u32(self.fp_div_units);
        w.put_u32(self.ls_units);
        w.put_u64(self.warmup_insts);
        w.put_u64(self.max_insts);
        self.front_end.save_state(w);
        w.put_u64(self.watchdog_cycles);
        w.put_u64(self.max_cycles);
        w.put_bool(self.audit);
        w.put_bool(self.cycle_skip);
    }

    /// Reads a configuration written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated stream or an unknown
    /// front-end tag.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            fetch_width: r.get_u32()?,
            issue_width: r.get_u32()?,
            commit_width: r.get_u32()?,
            ruu_size: r.get_usize()?,
            lsq_size: r.get_usize()?,
            int_alu_units: r.get_u32()?,
            int_mult_units: r.get_u32()?,
            int_div_units: r.get_u32()?,
            fp_add_units: r.get_u32()?,
            fp_mult_units: r.get_u32()?,
            fp_div_units: r.get_u32()?,
            ls_units: r.get_u32()?,
            warmup_insts: r.get_u64()?,
            max_insts: r.get_u64()?,
            front_end: FrontEnd::load_state(r)?,
            watchdog_cycles: r.get_u64()?,
            max_cycles: r.get_u64()?,
            audit: r.get_bool()?,
            cycle_skip: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.issue_width, 64);
        assert_eq!(c.commit_width, 64);
        assert_eq!(c.int_alu_units, 64);
        assert_eq!(c.fp_div_units, 64);
        assert_eq!(c.ls_units, 64);
        assert_eq!(c.max_insts, u64::MAX);
        assert_eq!(c.front_end, FrontEnd::Perfect);
    }

    #[test]
    fn with_max_insts_caps_run() {
        let c = CpuConfig::with_max_insts(1000);
        assert_eq!(c.max_insts, 1000);
        assert_eq!(c.ruu_size, 1024);
    }

    #[test]
    fn default_validates() {
        assert!(CpuConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let bad = [
            CpuConfig {
                issue_width: 0,
                ..CpuConfig::default()
            },
            CpuConfig {
                ruu_size: 0,
                ..CpuConfig::default()
            },
            CpuConfig {
                lsq_size: 0,
                ..CpuConfig::default()
            },
            CpuConfig {
                watchdog_cycles: 0,
                ..CpuConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }
}
