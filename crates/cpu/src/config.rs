//! Processor configuration (paper Table 1).

use crate::bpred::FrontEnd;

/// Configuration of the dynamic superscalar machine.
///
/// The default matches the paper's Table 1: fetch and out-of-order issue
/// of up to 64 operations per cycle, a 1024-entry register update unit, a
/// 512-entry load/store queue, perfect instruction supply and branch
/// prediction, and 64 functional units of every class.
///
/// # Examples
///
/// ```
/// let cfg = hbdc_cpu::CpuConfig::default();
/// assert_eq!(cfg.fetch_width, 64);
/// assert_eq!(cfg.ruu_size, 1024);
/// assert_eq!(cfg.lsq_size, 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched (in program order) per cycle.
    pub fetch_width: u32,
    /// Operations issued out of order per cycle.
    pub issue_width: u32,
    /// Instructions committed in order per cycle.
    pub commit_width: u32,
    /// Register update unit (instruction window / reorder buffer) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Number of integer ALUs.
    pub int_alu_units: u32,
    /// Number of integer multipliers.
    pub int_mult_units: u32,
    /// Number of integer dividers.
    pub int_div_units: u32,
    /// Number of FP adders.
    pub fp_add_units: u32,
    /// Number of FP multipliers.
    pub fp_mult_units: u32,
    /// Number of FP dividers.
    pub fp_div_units: u32,
    /// Number of load/store units — the address-generation throughput cap
    /// per cycle (paper Table 1: "varying # of L/S units"). The *cache*
    /// bandwidth is governed by the port model; this bounds how many
    /// memory instructions can begin address generation per cycle.
    pub ls_units: u32,
    /// Functionally fast-forward this many instructions before timing
    /// begins (skips warm-up phases such as workload data initialization;
    /// the cache starts cold at the measurement point, as in sampled
    /// simulation).
    pub warmup_insts: u64,
    /// Stop after this many committed instructions (`u64::MAX` = run to
    /// `halt`).
    pub max_insts: u64,
    /// Front-end model: perfect branch prediction (the paper's Table 1)
    /// or a real predictor with misprediction stalls.
    pub front_end: FrontEnd,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 64,
            issue_width: 64,
            commit_width: 64,
            ruu_size: 1024,
            lsq_size: 512,
            int_alu_units: 64,
            int_mult_units: 64,
            int_div_units: 64,
            fp_add_units: 64,
            fp_mult_units: 64,
            fp_div_units: 64,
            ls_units: 64,
            warmup_insts: 0,
            max_insts: u64::MAX,
            front_end: FrontEnd::Perfect,
        }
    }
}

impl CpuConfig {
    /// A configuration capped at `max_insts` committed instructions,
    /// otherwise Table-1 defaults. Every experiment harness uses this to
    /// scale run length.
    pub fn with_max_insts(max_insts: u64) -> Self {
        Self {
            max_insts,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.issue_width, 64);
        assert_eq!(c.commit_width, 64);
        assert_eq!(c.int_alu_units, 64);
        assert_eq!(c.fp_div_units, 64);
        assert_eq!(c.ls_units, 64);
        assert_eq!(c.max_insts, u64::MAX);
        assert_eq!(c.front_end, FrontEnd::Perfect);
    }

    #[test]
    fn with_max_insts_caps_run() {
        let c = CpuConfig::with_max_insts(1000);
        assert_eq!(c.max_insts, 1000);
        assert_eq!(c.ruu_size, 1024);
    }
}
