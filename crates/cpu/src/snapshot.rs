//! Deterministic checkpoint/resume: versioned, checksummed snapshots of
//! the complete simulator state.
//!
//! A [`SimSnapshot`] captures everything a [`Simulator`] needs to
//! continue **bit-identically**: the program image, both configurations,
//! the functional emulator (registers, memory, PC), the window and LSQ
//! with their full dependence bookkeeping, pending completion events,
//! functional-unit busy horizons, cache hierarchy contents (tags, LRU,
//! MSHRs, statistics), branch-predictor tables, pipeline histograms, and
//! the port model's internal state (bank store queues, arbitration
//! counters, fault-injector RNG). Resuming from a snapshot taken at cycle
//! *K* and running to completion produces exactly the same
//! [`SimReport`](crate::SimReport) as an uninterrupted run.
//!
//! The byte format is sealed by [`hbdc_snap::seal`]: a magic/version
//! header plus an FNV-1a checksum over the payload, so truncated or
//! corrupted checkpoint files are rejected on open rather than restored
//! into silently wrong state. Snapshots persist atomically
//! (write-to-temp + rename), so a crash mid-write never clobbers the
//! previous good checkpoint.

use std::path::Path;

use hbdc_core::{PortConfig, PortModel};
use hbdc_isa::object;
use hbdc_snap::{open, seal, write_atomic, SnapError, StateReader, StateWriter};

use crate::dynamic::DynInst;
use crate::error::SimError;
use crate::sim::Simulator;
use crate::CpuConfig;
use hbdc_mem::HierarchyConfig;

/// Magic bytes identifying a simulator snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HBSN";

/// Snapshot format version; bump on any payload layout change.
/// Version history: 1 — initial format; 2 — added `cycle_skip` to the
/// embedded [`CpuConfig`] and the cumulative skipped-cycle count;
/// 3 — tagged instruction source (execute-mode emulator state, or an
/// embedded committed-stream trace plus replay cursor).
pub const SNAPSHOT_VERSION: u32 = 3;

/// A sealed, self-contained simulator checkpoint.
///
/// The snapshot embeds the program and both configurations, so
/// [`Simulator::resume`] needs nothing but the snapshot itself.
///
/// # Examples
///
/// ```
/// use hbdc_cpu::{CpuConfig, SimSnapshot, Simulator};
/// use hbdc_core::PortConfig;
/// use hbdc_isa::asm::assemble;
/// use hbdc_mem::HierarchyConfig;
///
/// let p = assemble("main: li r1, 1\n li r2, 2\n add r3, r1, r2\n halt\n")?;
/// let mut sim = Simulator::new(
///     &p,
///     CpuConfig::default(),
///     HierarchyConfig::default(),
///     PortConfig::Ideal { ports: 2 },
/// );
/// sim.run_for(1)?; // simulate one cycle, pause at the boundary
/// let snap = sim.save_snapshot();
/// let mut resumed = Simulator::resume(&snap)?;
/// assert_eq!(resumed.run()?.committed, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    bytes: Vec<u8>,
}

impl SimSnapshot {
    /// The sealed snapshot bytes (header, payload, checksum).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw bytes read from disk or the wire, verifying the magic,
    /// version, and payload checksum.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the bytes are not a valid snapshot of
    /// this version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        open(&bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        Ok(Self { bytes })
    }

    /// Writes the snapshot to `path` atomically (temp file + rename), so
    /// an interrupted write leaves any previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Io`] on filesystem failure.
    pub fn write_to_path(&self, path: &Path) -> Result<(), SnapError> {
        write_atomic(path, &self.bytes)
    }

    /// Reads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on I/O failure or an invalid/corrupt file.
    pub fn read_from_path(path: &Path) -> Result<Self, SnapError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapError::Io(format!("reading snapshot {}: {e}", path.display())))?;
        Self::from_bytes(bytes)
    }
}

fn save_slim_opt(di: &Option<DynInst>, w: &mut StateWriter) {
    match di {
        Some(di) => {
            w.put_bool(true);
            di.save_slim(w);
        }
        None => w.put_bool(false),
    }
}

impl Simulator {
    /// Captures the complete simulator state as a sealed snapshot.
    ///
    /// Call only at a cycle boundary (after construction, between
    /// [`run_for`](Self::run_for) slices, or after
    /// [`step_cycle`](Self::step_cycle) returns); the per-cycle scratch
    /// buffers are then empty and excluded by construction.
    pub fn save_snapshot(&self) -> SimSnapshot {
        let mut w = StateWriter::new();
        // Identity: program image and configurations, so the snapshot is
        // self-contained.
        w.put_bytes(&self.program_image);
        match self.port_cfg {
            Some(cfg) => {
                w.put_bool(true);
                cfg.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        self.cfg.save_state(&mut w);
        self.hier.config().save_state(&mut w);
        // Run-progress scalars.
        w.put_u64(self.now);
        w.put_u64(self.committed);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.skipped_cycles);
        w.put_bool(self.fetch_done);
        w.put_bool(self.halted);
        w.put_u64(self.last_commit_cycle);
        w.put_u64(self.branches);
        w.put_u64(self.mispredicts);
        w.put_opt_u64(self.stall_on);
        w.put_u64(self.fetch_resume_at);
        save_slim_opt(&self.pending_fetch, &mut w);
        // Instruction source: execute mode saves the emulator's
        // architectural state; replay mode embeds the full sealed trace
        // plus the player's cursor, so the snapshot stays self-contained
        // either way.
        match &self.source {
            crate::sim::InstSource::Execute(emu) => {
                w.put_u8(0);
                emu.save_state(&mut w);
            }
            crate::sim::InstSource::Replay { trace, player } => {
                w.put_u8(1);
                w.put_bytes(trace.as_bytes());
                player.save_cursor(&mut w);
            }
        }
        // Unit state.
        self.window.save_state(&mut w);
        self.lsq.save_state(&mut w);
        self.fus.save_state(&mut w);
        self.hier.save_state(&mut w);
        self.pipe.issued.save_state(&mut w);
        self.pipe.dispatched.save_state(&mut w);
        self.pipe.committed.save_state(&mut w);
        self.pipe.window_occupancy.save_state(&mut w);
        self.pipe.lsq_occupancy.save_state(&mut w);
        match &self.predictor {
            Some(p) => {
                w.put_bool(true);
                p.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        self.port.save_state(&mut w);
        SimSnapshot {
            bytes: seal(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &w.into_bytes()),
        }
    }

    /// Rebuilds a simulator from a snapshot, continuing bit-identically
    /// from the checkpointed cycle. The port model is rebuilt from the
    /// [`PortConfig`] embedded in the snapshot.
    ///
    /// # Errors
    ///
    /// * [`SimError::Snapshot`] — corrupt or version-skewed bytes, or the
    ///   snapshot was taken from a simulator constructed with
    ///   [`with_port_model`](Self::with_port_model) (no declarative port
    ///   configuration; use
    ///   [`resume_with_port_model`](Self::resume_with_port_model)).
    /// * [`SimError::Config`] — the embedded configuration no longer
    ///   builds (should not happen for snapshots this library wrote).
    pub fn resume(snapshot: &SimSnapshot) -> Result<Self, SimError> {
        Self::resume_inner(snapshot, None)
    }

    /// Rebuilds a simulator from a snapshot around an explicit port model
    /// instance — required when the snapshot came from a simulator built
    /// with [`with_port_model`](Self::with_port_model), whose model has
    /// no declarative description. The caller must supply a model of the
    /// same type and geometry; its internal state is restored from the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// As [`resume`](Self::resume), plus [`SimError::Snapshot`] when the
    /// supplied model rejects the checkpointed port state.
    pub fn resume_with_port_model(
        snapshot: &SimSnapshot,
        port: Box<dyn PortModel>,
    ) -> Result<Self, SimError> {
        Self::resume_inner(snapshot, Some(port))
    }

    fn resume_inner(
        snapshot: &SimSnapshot,
        port_override: Option<Box<dyn PortModel>>,
    ) -> Result<Self, SimError> {
        let payload = open(&snapshot.bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let mut r = StateReader::new(payload);
        let program_bytes = r.get_bytes()?;
        let program = object::from_bytes(&program_bytes).map_err(|e| SimError::Snapshot {
            detail: format!("embedded program image does not parse: {e}"),
        })?;
        let port_cfg = if r.get_bool()? {
            Some(PortConfig::load_state(&mut r)?)
        } else {
            None
        };
        let cfg = CpuConfig::load_state(&mut r)?;
        let hier_cfg = HierarchyConfig::load_state(&mut r)?;
        let port = match port_override {
            Some(port) => port,
            None => port_cfg
                .ok_or_else(|| SimError::Snapshot {
                    detail: "snapshot carries no port configuration (the simulator was \
                             built with an explicit port model); resume with \
                             resume_with_port_model"
                        .into(),
                })?
                .try_build(hier_cfg.l1_line)
                .map_err(|detail| SimError::Config { detail })?,
        };
        let mut sim = Self::build(&program, cfg, hier_cfg, port, false);
        sim.port_cfg = port_cfg;
        sim.now = r.get_u64()?;
        sim.committed = r.get_u64()?;
        sim.loads = r.get_u64()?;
        sim.stores = r.get_u64()?;
        sim.skipped_cycles = r.get_u64()?;
        sim.fetch_done = r.get_bool()?;
        sim.halted = r.get_bool()?;
        sim.last_commit_cycle = r.get_u64()?;
        sim.branches = r.get_u64()?;
        sim.mispredicts = r.get_u64()?;
        sim.stall_on = r.get_opt_u64()?;
        sim.fetch_resume_at = r.get_u64()?;
        sim.pending_fetch = if r.get_bool()? {
            Some(DynInst::load_slim(&mut r, program.text())?)
        } else {
            None
        };
        match r.get_u8()? {
            0 => match &mut sim.source {
                crate::sim::InstSource::Execute(emu) => emu.load_state(&mut r)?,
                crate::sim::InstSource::Replay { .. } => unreachable!("build() is execute-mode"),
            },
            1 => {
                let trace = crate::CommittedTrace::from_bytes(r.get_bytes()?)?;
                let mut player = trace.player();
                player.load_cursor(&mut r)?;
                sim.source = crate::sim::InstSource::Replay { trace, player };
            }
            tag => {
                return Err(SimError::Snapshot {
                    detail: format!("unknown instruction-source tag {tag} (expected 0 or 1)"),
                })
            }
        }
        sim.window.load_state(&mut r, program.text())?;
        sim.lsq.load_state(&mut r)?;
        sim.fus.load_state(&mut r)?;
        sim.hier.load_state(&mut r)?;
        sim.pipe.issued.load_state(&mut r)?;
        sim.pipe.dispatched.load_state(&mut r)?;
        sim.pipe.committed.load_state(&mut r)?;
        sim.pipe.window_occupancy.load_state(&mut r)?;
        sim.pipe.lsq_occupancy.load_state(&mut r)?;
        let has_predictor = r.get_bool()?;
        match (&mut sim.predictor, has_predictor) {
            (Some(p), true) => p.load_state(&mut r)?,
            (None, false) => {}
            (have, want) => {
                return Err(SimError::Snapshot {
                    detail: format!(
                        "predictor presence mismatch: snapshot has one: {want}, \
                         configuration builds one: {}",
                        have.is_some()
                    ),
                })
            }
        }
        sim.port.load_state(&mut r)?;
        r.expect_end()?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuConfig, FrontEnd, PredictorKind, SimReport};
    use hbdc_isa::asm::assemble;
    use hbdc_isa::Program;
    use hbdc_mem::HierarchyConfig;

    /// A mixed workload: strided loads, dependent stores, a data-dependent
    /// branch — enough to populate the LSQ, bank queues, MSHRs, and the
    /// misprediction path for a few thousand cycles.
    const WORKLOAD: &str = ".data\nv: .space 8192\n.text\nmain:\n la r8, v\n li r9, 150\n\
        loop:\n lw r1, 0(r8)\n lw r2, 64(r8)\n lw r3, 128(r8)\n addi r1, r1, 3\n\
        sw r1, 192(r8)\n sw r2, 256(r8)\n andi r10, r9, 1\n bnez r10, odd\n\
        addi r8, r8, 8\n odd:\n addi r8, r8, 8\n addi r9, r9, -1\n bnez r9, loop\n halt\n";

    fn program() -> Program {
        assemble(WORKLOAD).unwrap()
    }

    fn every_port() -> [PortConfig; 4] {
        [
            PortConfig::Ideal { ports: 4 },
            PortConfig::Replicated { ports: 4 },
            PortConfig::banked(4),
            PortConfig::lbic(4, 2),
        ]
    }

    fn straight_through(p: &Program, cfg: CpuConfig, port: PortConfig) -> SimReport {
        Simulator::new(p, cfg, HierarchyConfig::default(), port)
            .run()
            .unwrap()
    }

    /// Snapshot at cycle `k`, resume (via a full byte round trip), run to
    /// completion, and return the resumed report.
    fn resumed_at(p: &Program, cfg: CpuConfig, port: PortConfig, k: u64) -> SimReport {
        let mut sim = Simulator::new(p, cfg, HierarchyConfig::default(), port);
        sim.run_for(k).unwrap();
        assert_eq!(sim.current_cycle(), k.min(sim.current_cycle()));
        let snap = sim.save_snapshot();
        let snap = SimSnapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        let mut resumed = Simulator::resume(&snap).unwrap();
        resumed.run().unwrap()
    }

    fn golden_sweep(audit: bool) {
        let p = program();
        let cfg = CpuConfig {
            audit,
            ..CpuConfig::default()
        };
        for port in every_port() {
            let baseline = straight_through(&p, cfg, port);
            assert!(baseline.cycles > 10, "workload too short to checkpoint");
            for k in [0, baseline.cycles / 2, baseline.cycles - 1] {
                let resumed = resumed_at(&p, cfg, port, k);
                assert_eq!(
                    baseline, resumed,
                    "{port:?} resumed at cycle {k} diverged (audit={audit})"
                );
            }
        }
    }

    #[test]
    fn resume_is_bit_identical_for_every_port_model() {
        golden_sweep(false);
    }

    #[test]
    fn resume_is_bit_identical_under_audit() {
        golden_sweep(true);
    }

    /// Serially dependent cold-missing loads: each iteration's address
    /// needs the previous load's data, so between the grant and the DRAM
    /// fill the machine is completely quiescent — guaranteed idle spans
    /// for every port model.
    const DEPENDENT_MISSES: &str = ".data\nv: .space 8192\n.text\nmain:\n la r8, v\n li r9, 40\n\
        loop:\n lw r1, 0(r8)\n add r8, r8, r1\n addi r8, r8, 64\n\
        addi r9, r9, -1\n bnez r9, loop\n halt\n";

    #[test]
    fn checkpoint_inside_idle_span_resumes_bit_identically() {
        let p = assemble(DEPENDENT_MISSES).unwrap();
        // `audit: false` explicitly: the auditor forces skipping off
        // (including when the `audit` feature flips the default on), and
        // this test is about splitting a *skipped* span.
        let cfg = CpuConfig {
            audit: false,
            ..CpuConfig::default()
        };
        for port in every_port() {
            let mut full = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
            let baseline = full.run().unwrap();
            let total = full.skipped_cycles();
            assert!(total > 0, "{port:?}: workload produced no skippable spans");
            // Smallest budget at which a fresh run skips anything: its
            // pause point sits just past a budget-capped first skip, so
            // cycle `n - skipped` is the first cycle the uninterrupted
            // run jumps over.
            let mut n = 1;
            let first_skip = loop {
                let mut sim = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
                let done = sim.run_for(n).unwrap();
                let s = sim.skipped_cycles();
                if s > 0 {
                    break s;
                }
                assert!(!done, "{port:?}: run finished without ever skipping");
                n += 1;
            };
            let k = n - first_skip;
            let mut head = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
            assert!(!head.run_for(k).unwrap());
            assert_eq!(
                head.skipped_cycles(),
                0,
                "{port:?}: {k} is inside the first span"
            );
            let snap = head.save_snapshot();
            let mut tail = Simulator::resume(&snap).unwrap();
            let resumed = tail.run().unwrap();
            assert_eq!(baseline, resumed, "{port:?} resumed mid-idle-span diverged");
            // Splitting strictly inside a span re-executes exactly one
            // probe cycle there; every other skipped cycle is recovered.
            assert_eq!(
                tail.skipped_cycles(),
                total - 1,
                "{port:?}: checkpoint at {k} was not strictly inside an idle span"
            );
        }
    }

    #[test]
    fn resume_preserves_predictor_and_warmup_state() {
        let p = program();
        let cfg = CpuConfig {
            warmup_insts: 200,
            front_end: FrontEnd::Predicted {
                kind: PredictorKind::Gshare {
                    entries: 1024,
                    history_bits: 8,
                },
                redirect_penalty: 2,
            },
            ..CpuConfig::default()
        };
        let port = PortConfig::lbic(4, 2);
        let mut base = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
        let baseline = base.run().unwrap();
        let k = baseline.cycles / 3;

        let mut sim = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
        sim.run_for(k).unwrap();
        let mut resumed = Simulator::resume(&sim.save_snapshot()).unwrap();
        let report = resumed.run().unwrap();
        assert_eq!(baseline, report);
        assert_eq!(base.branch_stats(), resumed.branch_stats());
        assert_eq!(base.lsq_stalls(), resumed.lsq_stalls());
    }

    #[test]
    fn snapshot_roundtrips_through_a_file() {
        let p = program();
        let mut sim = Simulator::new(
            &p,
            CpuConfig::default(),
            HierarchyConfig::default(),
            PortConfig::banked(4),
        );
        sim.run_for(50).unwrap();
        let snap = sim.save_snapshot();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hbdc-snap-test-{}.snap", std::process::id()));
        snap.write_to_path(&path).unwrap();
        let read = SimSnapshot::read_from_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(snap, read);
        let a = sim.run().unwrap();
        let b = Simulator::resume(&read).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_and_truncated_snapshots_are_rejected() {
        let p = program();
        let mut sim = Simulator::new(
            &p,
            CpuConfig::default(),
            HierarchyConfig::default(),
            PortConfig::Ideal { ports: 2 },
        );
        sim.run_for(20).unwrap();
        let good = sim.save_snapshot().as_bytes().to_vec();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(SimSnapshot::from_bytes(flipped).is_err());

        let truncated = good[..good.len() - 7].to_vec();
        assert!(SimSnapshot::from_bytes(truncated).is_err());

        let mut wrong_magic = good;
        wrong_magic[0] ^= 0xff;
        assert!(SimSnapshot::from_bytes(wrong_magic).is_err());
    }

    #[test]
    fn explicit_port_models_need_resume_with_port_model() {
        use hbdc_core::IdealPorts;
        let p = program();
        let mk = || {
            Simulator::with_port_model(
                &p,
                CpuConfig::default(),
                HierarchyConfig::default(),
                Box::new(IdealPorts::new(2)),
            )
        };
        let baseline = mk().run().unwrap();

        let mut sim = mk();
        sim.run_for(30).unwrap();
        let snap = sim.save_snapshot();
        // No declarative port configuration: plain resume must refuse.
        match Simulator::resume(&snap) {
            Err(SimError::Snapshot { detail }) => {
                assert!(detail.contains("resume_with_port_model"), "{detail}");
            }
            other => panic!("expected Snapshot error, got {other:?}"),
        }
        // Supplying a fresh model of the same shape restores its state.
        let mut resumed =
            Simulator::resume_with_port_model(&snap, Box::new(IdealPorts::new(2))).unwrap();
        assert_eq!(baseline, resumed.run().unwrap());
    }

    #[test]
    fn run_for_pauses_at_cycle_boundaries() {
        let p = program();
        let mut sliced = Simulator::new(
            &p,
            CpuConfig::default(),
            HierarchyConfig::default(),
            PortConfig::banked(4),
        );
        // Drive the whole run in 64-cycle slices; the result must match a
        // single uninterrupted run (modulo wall-clock fields).
        while !sliced.run_for(64).unwrap() {}
        let baseline = straight_through(&p, CpuConfig::default(), PortConfig::banked(4));
        assert_eq!(baseline, sliced.report());
    }
}
