//! The load/store queue: memory ordering, forwarding, and the per-cycle
//! ready list.
//!
//! The classification is *event-driven*: instead of rescanning every
//! entry every cycle (O(occupancy) per cycle — the old hot-loop cost),
//! each entry's readiness is updated when one of its gating conditions
//! changes. Every gate is monotone for a given entry — an address, once
//! known, stays known; prior stores resolve and never un-resolve; a
//! blocking store only leaves the queue once — so each entry makes O(1)
//! classification transitions over its lifetime, and the per-cycle cost
//! of [`collect_ready_into`](Lsq::collect_ready_into) is the size of the
//! ready list plus the transitions that actually happened. Simulation
//! time scales with work, not with queue occupancy.

use std::collections::{HashMap, VecDeque};

use hbdc_core::MemRequest;
use hbdc_snap::{SnapError, StateReader, StateWriter};

/// One memory reference that is ready to access the cache this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReady {
    /// RUU sequence number.
    pub seq: u64,
    /// Effective address.
    pub addr: u64,
    /// Whether this is a store.
    pub is_store: bool,
}

/// Why loads failed to join a cycle's ready list (diagnostic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStalls {
    /// Load's own address not yet computed.
    pub addr_unknown: u64,
    /// Some older store's address is still unknown.
    pub prior_store_addr: u64,
    /// Older store overlaps (partially, or data pending): must wait.
    pub store_overlap: u64,
}

/// The per-cycle classification of LSQ entries.
#[derive(Debug, Clone, Default)]
pub struct ReadyRefs {
    /// References that must access the cache, in age order.
    pub cache: Vec<CacheReady>,
    /// Loads serviceable by store-to-load forwarding (paper §2.1: "loads
    /// to same address as an earlier store in the LSQ can be serviced with
    /// zero latency"); they never reach the cache structure.
    pub forwards: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    addr: u64,
    width: u64,
    is_store: bool,
    addr_known: bool,
    /// Stores: the value to be written is available (loads: always true).
    data_known: bool,
    issued: bool,
    /// Loads: sequence number of the youngest older store whose bytes
    /// overlap this load (`NOT_MEM` if none). Addresses are oracle values
    /// fixed at dispatch and older stores retire strictly before this
    /// entry, so the decider never changes while it is in the queue.
    dep_store: u64,
    /// Loads: whether `dep_store` covers this load exactly (same address,
    /// width fits), i.e. forwarding applies once the store's data is
    /// available; otherwise the overlap is partial and the load waits for
    /// the store to leave the queue.
    exact_fit: bool,
}

/// Sentinel in `Lsq::pos_map` for sequence numbers that never entered the
/// queue (non-memory instructions).
const NOT_MEM: u64 = u64::MAX;

/// Granularity of the store-overlap index: live stores are bucketed by
/// the 8-byte blocks they touch, so a dispatching load finds its youngest
/// overlapping store with one or two bucket probes instead of a backward
/// scan over the whole queue. Accesses are at most 8 bytes wide, so a
/// reference touches at most two blocks.
const BLOCK_SHIFT: u32 = 3;

/// The (first, optional second) index blocks a byte range touches.
fn blocks_of(addr: u64, width: u64) -> (u64, Option<u64>) {
    let a = addr >> BLOCK_SHIFT;
    let b = (addr + width.max(1) - 1) >> BLOCK_SHIFT;
    (a, (b != a).then_some(b))
}

/// The load/store queue (paper Table 1: 512 entries): an address reorder
/// buffer holding all in-flight memory instructions in program order.
///
/// Ordering rules implemented (paper §2.1):
/// * a load may execute only when **all prior store addresses are known**;
/// * a load whose address exactly matches an earlier store (and fits
///   within its width) **forwards** and never accesses the cache;
/// * a load that *partially* overlaps an earlier store waits until that
///   store leaves the queue (conservative, as in SimpleScalar);
/// * a load that exactly matches a store whose *data* is not yet
///   produced waits for that data;
/// * stores access the cache **at commit** — here, once every older
///   instruction has completed (`oldest_not_done` gate).
///
/// # Examples
///
/// ```
/// use hbdc_cpu::Lsq;
///
/// let mut lsq = Lsq::new(4);
/// lsq.dispatch(0, 0x100, 4, true);  // store
/// lsq.dispatch(1, 0x100, 4, false); // load, same address
/// lsq.mark_addr_known(0);
/// lsq.mark_data_known(0);
/// lsq.mark_addr_known(1);
/// let ready = lsq.collect_ready(0); // nothing older is complete yet
/// assert_eq!(ready.forwards, vec![1]); // the load forwards
/// assert!(ready.cache.is_empty());     // the store waits for commit
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    forwards: u64,
    stalls: LsqStalls,
    // O(1) seq → index: `pos_map[(seq - pos_base)]` holds the dispatch
    // ordinal of that sequence number (NOT_MEM for gaps); the entry's
    // current index in `entries` is `ordinal - retired`. Replaces a
    // per-call binary search on the hot mark_* paths.
    pos_base: u64,
    pos_map: VecDeque<u64>,
    dispatched: u64,
    retired: u64,

    // ----- Derived classification state (event-maintained; never
    // serialized — rebuilt from the entries on snapshot load). -----
    //
    // The persistent ready list, in age order: exactly what the next
    // `collect_ready_into` call reports as `cache`, kept current by the
    // mark_*/retire event handlers. Held directly as port-model requests
    // (`id` = seq) so the simulator's arbitration round can borrow it in
    // place instead of copying every offered reference every cycle.
    ready: Vec<MemRequest>,
    // Loads that became forwardable since the last collect; drained once
    // (the simulator services a reported forward in the same cycle).
    pending_forwards: Vec<u64>,
    // Stores whose address is still unknown, in age order (dispatch
    // appends, so the deque stays sorted). The front is the boundary:
    // loads younger than it are blocked on a prior store address.
    unknown_stores: VecDeque<u64>,
    // Stores with address and data known, awaiting the completion
    // frontier; age-sorted. `collect_ready_into` drains the prefix that
    // the (monotone) frontier has passed into `ready`.
    eligible_stores: Vec<u64>,
    // Loads with known addresses blocked behind `unknown_stores.front()`,
    // age-sorted; a boundary advance drains the newly unblocked prefix.
    blocked_prior: Vec<u64>,
    // Loads blocked on their decider store, as (store seq, load seq)
    // pairs sorted by store: the store's data arrival forwards the
    // exact-fit waiters, its retirement releases the rest.
    dep_waiters: Vec<(u64, u64)>,
    // Current census of blocked (non-issued) loads by category — the
    // per-cycle stall increments, added in O(1) per collect.
    n_addr_unknown: u64,
    n_prior_store: u64,
    n_overlap: u64,
    // Live stores bucketed by touched 8-byte block, each bucket in age
    // order; buckets recycle through `block_pool` so the steady state
    // allocates nothing.
    block_stores: HashMap<u64, Vec<u64>>,
    block_pool: Vec<Vec<u64>>,
    // Reusable scratch for event handlers that drain-and-reclassify.
    scratch: Vec<u64>,
}

impl Lsq {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            forwards: 0,
            stalls: LsqStalls::default(),
            pos_base: 0,
            pos_map: VecDeque::new(),
            dispatched: 0,
            retired: 0,
            ready: Vec::new(),
            pending_forwards: Vec::new(),
            unknown_stores: VecDeque::new(),
            eligible_stores: Vec::new(),
            blocked_prior: Vec::new(),
            dep_waiters: Vec::new(),
            n_addr_unknown: 0,
            n_prior_store: 0,
            n_overlap: 0,
            block_stores: HashMap::new(),
            block_pool: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Whether another memory instruction can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total store-to-load forwards so far.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Cumulative per-cycle load-stall diagnostics.
    pub fn stalls(&self) -> LsqStalls {
        self.stalls
    }

    /// Accounts for `k` idle cycles whose ready-list scans each produce
    /// the stall increments in `per_cycle`. During a skipped span the
    /// queue is frozen, so every scan would classify entries identically;
    /// this replays those `k` identical scans' counter effects in O(1).
    pub fn add_stalls_n(&mut self, per_cycle: LsqStalls, k: u64) {
        self.stalls.addr_unknown += per_cycle.addr_unknown * k;
        self.stalls.prior_store_addr += per_cycle.prior_store_addr * k;
        self.stalls.store_overlap += per_cycle.store_overlap * k;
    }

    fn find(&self, seq: u64) -> usize {
        let ordinal = self
            .pos_map
            .get(seq.wrapping_sub(self.pos_base) as usize)
            .copied()
            .filter(|&o| o != NOT_MEM)
            .expect("seq not in LSQ");
        (ordinal - self.retired) as usize
    }

    fn block_index_add(&mut self, block: u64, seq: u64) {
        use std::collections::hash_map::Entry;
        match self.block_stores.entry(block) {
            Entry::Occupied(mut o) => o.get_mut().push(seq),
            Entry::Vacant(v) => {
                let mut bucket = self.block_pool.pop().unwrap_or_default();
                bucket.push(seq);
                v.insert(bucket);
            }
        }
    }

    fn block_index_remove(&mut self, block: u64, seq: u64) {
        use std::collections::hash_map::Entry;
        let Entry::Occupied(mut o) = self.block_stores.entry(block) else {
            debug_assert!(false, "store {seq} missing from block index");
            return;
        };
        let bucket = o.get_mut();
        match bucket.iter().position(|&s| s == seq) {
            // Stores retire oldest-first, so the hit is normally index 0.
            Some(p) => {
                bucket.remove(p);
            }
            None => debug_assert!(false, "store {seq} missing from bucket"),
        }
        if bucket.is_empty() {
            self.block_pool.push(o.remove());
        }
    }

    /// The youngest live store in `block`'s bucket whose bytes overlap
    /// `[addr, addr + width)`, or `NOT_MEM`.
    fn youngest_overlap(&self, block: u64, addr: u64, width: u64) -> u64 {
        let Some(bucket) = self.block_stores.get(&block) else {
            return NOT_MEM;
        };
        for &s_seq in bucket.iter().rev() {
            let s = &self.entries[self.find(s_seq)];
            if addr < s.addr + s.width && s.addr < addr + width {
                return s_seq;
            }
        }
        NOT_MEM
    }

    fn ready_insert(&mut self, c: MemRequest) {
        let k = self.ready.partition_point(|r| r.id < c.id);
        debug_assert!(self.ready.get(k).map(|r| r.id) != Some(c.id));
        self.ready.insert(k, c);
    }

    fn ready_remove(&mut self, seq: u64) -> bool {
        let k = self.ready.partition_point(|r| r.id < seq);
        if self.ready.get(k).map(|r| r.id) == Some(seq) {
            self.ready.remove(k);
            true
        } else {
            false
        }
    }

    fn eligible_insert(&mut self, seq: u64) {
        let k = self.eligible_stores.partition_point(|&s| s < seq);
        self.eligible_stores.insert(k, seq);
    }

    /// Classifies a load whose address is known and whose prior store
    /// addresses are all resolved: forward, wait on the decider store, or
    /// join the ready list.
    fn dep_check(&mut self, load: u64) {
        let i = self.find(load);
        let (dep, exact, addr) = {
            let e = &self.entries[i];
            debug_assert!(!e.is_store && e.addr_known && !e.issued);
            (e.dep_store, e.exact_fit, e.addr)
        };
        if dep != NOT_MEM && dep >= self.pos_base {
            let s = &self.entries[self.find(dep)];
            if exact && s.data_known {
                self.pending_forwards.push(load);
            } else {
                let k = self.dep_waiters.partition_point(|&p| p < (dep, load));
                self.dep_waiters.insert(k, (dep, load));
                self.n_overlap += 1;
            }
        } else {
            self.ready_insert(MemRequest {
                id: load,
                addr,
                is_store: false,
            });
        }
    }

    /// Appends a memory instruction in program order. The effective
    /// address is known functionally up front (oracle), but is not
    /// *architecturally* known until [`mark_addr_known`](Self::mark_addr_known).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not increasing.
    pub fn dispatch(&mut self, seq: u64, addr: u64, width: u64, is_store: bool) {
        assert!(self.has_space(), "dispatch into full LSQ");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < seq, "LSQ dispatch out of order");
        }
        if self.entries.is_empty() {
            self.pos_map.clear();
            self.pos_base = seq;
        }
        while self.pos_map.len() < (seq - self.pos_base) as usize {
            self.pos_map.push_back(NOT_MEM);
        }
        self.pos_map.push_back(self.dispatched);
        self.dispatched += 1;
        let mut dep_store = NOT_MEM;
        let mut exact_fit = false;
        let (a, b) = blocks_of(addr, width);
        if is_store {
            // Dispatch is in age order, so appends keep these sorted.
            self.unknown_stores.push_back(seq);
            self.block_index_add(a, seq);
            if let Some(b) = b {
                self.block_index_add(b, seq);
            }
        } else {
            // Youngest overlapping older store, via the block index; with
            // two touched blocks the younger of the two hits decides.
            dep_store = self.youngest_overlap(a, addr, width);
            if let Some(b) = b {
                let d2 = self.youngest_overlap(b, addr, width);
                if d2 != NOT_MEM && (dep_store == NOT_MEM || d2 > dep_store) {
                    dep_store = d2;
                }
            }
            if dep_store != NOT_MEM {
                let s = &self.entries[self.find(dep_store)];
                exact_fit = s.addr == addr && width <= s.width;
            }
            self.n_addr_unknown += 1; // loads dispatch with address unknown
        }
        self.entries.push_back(LsqEntry {
            seq,
            addr,
            width,
            is_store,
            addr_known: false,
            data_known: !is_store,
            issued: false,
            dep_store,
            exact_fit,
        });
    }

    /// Records that `seq`'s effective address has been computed.
    pub fn mark_addr_known(&mut self, seq: u64) {
        let i = self.find(seq);
        if self.entries[i].addr_known {
            return;
        }
        self.entries[i].addr_known = true;
        if self.entries[i].is_store {
            let eligible = self.entries[i].data_known && !self.entries[i].issued;
            let was_front = self.unknown_stores.front() == Some(&seq);
            if was_front {
                self.unknown_stores.pop_front();
            } else {
                let k = self.unknown_stores.partition_point(|&s| s < seq);
                debug_assert_eq!(self.unknown_stores.get(k), Some(&seq));
                self.unknown_stores.remove(k);
            }
            if eligible {
                self.eligible_insert(seq);
            }
            if was_front {
                // The prior-store boundary advanced: loads older than the
                // new boundary are no longer blocked on store addresses.
                let boundary = self.unknown_stores.front().copied().unwrap_or(u64::MAX);
                let k = self.blocked_prior.partition_point(|&l| l < boundary);
                if k > 0 {
                    self.n_prior_store -= k as u64;
                    let mut tmp = std::mem::take(&mut self.scratch);
                    tmp.extend(self.blocked_prior.drain(..k));
                    for &load in &tmp {
                        self.dep_check(load);
                    }
                    tmp.clear();
                    self.scratch = tmp;
                }
            }
        } else {
            self.n_addr_unknown -= 1;
            let boundary = self.unknown_stores.front().copied().unwrap_or(u64::MAX);
            if boundary < seq {
                let k = self.blocked_prior.partition_point(|&l| l < seq);
                self.blocked_prior.insert(k, seq);
                self.n_prior_store += 1;
            } else {
                self.dep_check(seq);
            }
        }
    }

    /// Records that a store's data operand has been produced.
    pub fn mark_data_known(&mut self, seq: u64) {
        let i = self.find(seq);
        debug_assert!(self.entries[i].is_store);
        if self.entries[i].data_known {
            return;
        }
        self.entries[i].data_known = true;
        if self.entries[i].addr_known && !self.entries[i].issued {
            self.eligible_insert(seq);
        }
        // Exact-fit waiters on this store can forward now; partial
        // overlaps keep waiting for it to leave the queue.
        let lo = self.dep_waiters.partition_point(|&(s, _)| s < seq);
        let mut hi = self.dep_waiters.partition_point(|&(s, _)| s <= seq);
        let mut k = lo;
        while k < hi {
            let (_, load) = self.dep_waiters[k];
            if self.entries[self.find(load)].exact_fit {
                self.dep_waiters.remove(k);
                hi -= 1;
                self.n_overlap -= 1;
                self.pending_forwards.push(load);
            } else {
                k += 1;
            }
        }
    }

    /// Records that `seq` has been granted its cache access.
    pub fn mark_issued(&mut self, seq: u64) {
        let i = self.find(seq);
        if self.entries[i].issued {
            return;
        }
        self.entries[i].issued = true;
        let removed = self.ready_remove(seq);
        debug_assert!(removed, "issued entry {seq} was not ready");
    }

    /// Records that a load was serviced by forwarding (also counts it).
    pub fn mark_forwarded(&mut self, seq: u64) {
        let i = self.find(seq);
        debug_assert!(!self.entries[i].is_store);
        self.entries[i].issued = true;
        self.forwards += 1;
        // Normally a no-op: a forwarded load was never cache-ready. Kept
        // for callers that force a forward on a ready load.
        self.ready_remove(seq);
    }

    /// Removes the front entry, which must be `seq` (called at commit).
    ///
    /// # Panics
    ///
    /// Panics if the front entry is not `seq`.
    pub fn retire(&mut self, seq: u64) {
        let front = self.entries.pop_front().expect("retire from empty LSQ");
        assert_eq!(front.seq, seq, "LSQ retire out of order");
        let covered = (seq - self.pos_base + 1) as usize;
        self.pos_map.drain(..covered);
        self.pos_base = seq + 1;
        self.retired += 1;
        if front.is_store {
            let (a, b) = blocks_of(front.addr, front.width);
            self.block_index_remove(a, seq);
            if let Some(b) = b {
                self.block_index_remove(b, seq);
            }
            if front.addr_known {
                // An unissued store may still sit in the eligibility or
                // ready queues (only possible when a caller retires it
                // without issuing — never on the committed path).
                if !front.issued && front.data_known {
                    let k = self.eligible_stores.partition_point(|&s| s < seq);
                    if self.eligible_stores.get(k) == Some(&seq) {
                        self.eligible_stores.remove(k);
                    } else {
                        self.ready_remove(seq);
                    }
                }
            } else {
                // The oldest store: if its address never resolved it is
                // the unknown-address front, and its departure advances
                // the prior-store boundary.
                debug_assert_eq!(self.unknown_stores.front(), Some(&seq));
                self.unknown_stores.pop_front();
                let boundary = self.unknown_stores.front().copied().unwrap_or(u64::MAX);
                let k = self.blocked_prior.partition_point(|&l| l < boundary);
                if k > 0 {
                    self.n_prior_store -= k as u64;
                    let mut tmp = std::mem::take(&mut self.scratch);
                    tmp.extend(self.blocked_prior.drain(..k));
                    for &load in &tmp {
                        self.dep_check(load);
                    }
                    tmp.clear();
                    self.scratch = tmp;
                }
            }
            // Loads that waited for this store to leave the queue are
            // clear: their address is known, the boundary is past them,
            // and their decider is gone — straight to the ready list.
            let lo = self.dep_waiters.partition_point(|&(s, _)| s < seq);
            let hi = self.dep_waiters.partition_point(|&(s, _)| s <= seq);
            if lo < hi {
                self.n_overlap -= (hi - lo) as u64;
                let mut tmp = std::mem::take(&mut self.scratch);
                tmp.extend(self.dep_waiters.drain(lo..hi).map(|(_, l)| l));
                for &load in &tmp {
                    let addr = self.entries[self.find(load)].addr;
                    self.ready_insert(MemRequest {
                        id: load,
                        addr,
                        is_store: false,
                    });
                }
                tmp.clear();
                self.scratch = tmp;
            }
        } else if !front.issued {
            // An unserviced load leaves whichever category held it (only
            // possible when a caller retires it without issuing).
            if !front.addr_known {
                self.n_addr_unknown -= 1;
            } else {
                let k = self.blocked_prior.partition_point(|&l| l < seq);
                if self.blocked_prior.get(k) == Some(&seq) {
                    self.blocked_prior.remove(k);
                    self.n_prior_store -= 1;
                } else if let Some(p) = self
                    .dep_waiters
                    .iter()
                    .position(|&w| w == (front.dep_store, seq))
                {
                    self.dep_waiters.remove(p);
                    self.n_overlap -= 1;
                } else if let Some(p) = self.pending_forwards.iter().position(|&l| l == seq) {
                    self.pending_forwards.remove(p);
                } else {
                    self.ready_remove(seq);
                }
            }
        }
    }

    /// Reports this cycle's ready sets into the caller-owned `out`
    /// (cleared first): the event-maintained ready list, plus any stores
    /// the completion frontier has newly passed, plus the loads that
    /// became forwardable since the last call. O(ready + transitions),
    /// not O(occupancy). Also accrues this cycle's stall counters from
    /// the maintained blocked-load census.
    ///
    /// `oldest_not_done` is the RUU's completion frontier: stores older
    /// than it (i.e. with every older instruction complete) may perform
    /// their commit-time cache access. The frontier must be monotone
    /// across calls (it is: the RUU's Done prefix only grows).
    pub fn collect_ready_into(&mut self, oldest_not_done: u64, out: &mut ReadyRefs) {
        self.begin_round(oldest_not_done);
        out.cache.clear();
        out.cache.extend(self.ready.iter().map(|r| CacheReady {
            seq: r.id,
            addr: r.addr,
            is_store: r.is_store,
        }));
        // Events arrive in completion order; report forwards in age order
        // like the scan-based classifier did.
        self.pending_forwards.sort_unstable();
        out.forwards.clone_from(&self.pending_forwards);
        self.pending_forwards.clear();
    }

    /// The first half of [`collect_ready_into`](Self::collect_ready_into):
    /// promotes stores the completion frontier has newly passed into the
    /// ready list and accrues this cycle's stall counters. The simulator's
    /// non-audited hot path follows with [`ready_requests`](Self::ready_requests)
    /// and [`take_forwards`](Self::take_forwards), which hand over the same
    /// sets without the intermediate [`ReadyRefs`] copy.
    pub fn begin_round(&mut self, oldest_not_done: u64) {
        let k = self
            .eligible_stores
            .partition_point(|&s| s < oldest_not_done);
        if k > 0 {
            let mut tmp = std::mem::take(&mut self.scratch);
            tmp.extend(self.eligible_stores.drain(..k));
            for &s in &tmp {
                let addr = self.entries[self.find(s)].addr;
                self.ready_insert(MemRequest {
                    id: s,
                    addr,
                    is_store: true,
                });
            }
            tmp.clear();
            self.scratch = tmp;
        }
        self.stalls.addr_unknown += self.n_addr_unknown;
        self.stalls.prior_store_addr += self.n_prior_store;
        self.stalls.store_overlap += self.n_overlap;
    }

    /// This round's cache-ready references as port-model requests, in
    /// age order — exactly the requests [`ReadyRefs::cache`] reports,
    /// borrowed in place instead of copied. Valid until the next `mark_*`
    /// or [`retire`](Self::retire) call mutates the ready list. Call
    /// after [`begin_round`](Self::begin_round).
    pub fn ready_requests(&self) -> &[MemRequest] {
        &self.ready
    }

    /// Moves this round's newly-forwardable loads into `out` (cleared
    /// first, age-sorted), emptying the pending set — the ownership-swap
    /// counterpart of the [`ReadyRefs::forwards`] clone. Call after
    /// [`begin_round`](Self::begin_round).
    pub fn take_forwards(&mut self, out: &mut Vec<u64>) {
        self.pending_forwards.sort_unstable();
        out.clear();
        std::mem::swap(&mut self.pending_forwards, out);
    }

    /// Classifies entries into this cycle's ready sets. Allocates; the
    /// hot path uses [`collect_ready_into`](Self::collect_ready_into).
    pub fn collect_ready(&mut self, oldest_not_done: u64) -> ReadyRefs {
        let mut out = ReadyRefs::default();
        self.collect_ready_into(oldest_not_done, &mut out);
        out
    }

    /// Re-checks one ready-list round against the queue's ordering and
    /// forwarding rules, appending any violations to `out`.
    ///
    /// `ready` must be the result of the matching
    /// [`collect_ready_into`](Self::collect_ready_into) call with the same
    /// `oldest_not_done` frontier. A pure observer: it recomputes legality
    /// independently of the classification scan. Checks:
    ///
    /// * queue entries are in strict age order (`lsq-age-order`);
    /// * the cache-ready list is in strict age order (`lsq-ready-order`);
    /// * every ready store has all operands, was not already issued, and
    ///   sits behind the completion frontier (`lsq-store-early`);
    /// * every forward names a load whose decider store is present with
    ///   its data produced and an exact address fit (`lsq-forward-illegal`).
    pub fn audit_round(
        &self,
        oldest_not_done: u64,
        ready: &ReadyRefs,
        out: &mut Vec<hbdc_core::Violation>,
    ) {
        use hbdc_core::Violation;
        for w in self
            .entries
            .iter()
            .zip(self.entries.iter().skip(1))
            .filter(|(a, b)| a.seq >= b.seq)
        {
            out.push(Violation::new(
                "lsq-age-order",
                format!(
                    "queue entries out of age order: {} then {}",
                    w.0.seq, w.1.seq
                ),
            ));
        }
        for w in ready.cache.windows(2).filter(|w| w[0].seq >= w[1].seq) {
            out.push(Violation::new(
                "lsq-ready-order",
                format!(
                    "ready list out of age order: {} then {}",
                    w[0].seq, w[1].seq
                ),
            ));
        }
        for c in ready.cache.iter().filter(|c| c.is_store) {
            let legal = c.seq < oldest_not_done
                && self
                    .entry(c.seq)
                    .is_some_and(|e| e.addr_known && e.data_known && !e.issued);
            if !legal {
                out.push(Violation::new(
                    "lsq-store-early",
                    format!(
                        "store {} offered to the cache before commit eligibility \
                         (frontier {oldest_not_done})",
                        c.seq
                    ),
                ));
            }
        }
        for &seq in &ready.forwards {
            let legal = self.entry(seq).is_some_and(|load| {
                !load.is_store
                    && load.exact_fit
                    && self
                        .entry(load.dep_store)
                        .is_some_and(|s| s.is_store && s.seq < seq && s.data_known)
            });
            if !legal {
                out.push(Violation::new(
                    "lsq-forward-illegal",
                    format!("load {seq} forwarded without a covering older store"),
                ));
            }
        }
    }

    /// Looks up `seq` without panicking (diagnostics and auditing).
    fn entry(&self, seq: u64) -> Option<&LsqEntry> {
        let ordinal = self
            .pos_map
            .get(seq.wrapping_sub(self.pos_base) as usize)
            .copied()
            .filter(|&o| o != NOT_MEM)?;
        self.entries.get((ordinal - self.retired) as usize)
    }

    /// Serializes the queue: every entry with its full ordering state,
    /// the forward/stall counters, and the seq→index position map. The
    /// event-maintained classification structures are derived state and
    /// are rebuilt on load, so the byte format is unchanged from the
    /// scan-based implementation.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.seq);
            w.put_u64(e.addr);
            w.put_u64(e.width);
            w.put_bool(e.is_store);
            w.put_bool(e.addr_known);
            w.put_bool(e.data_known);
            w.put_bool(e.issued);
            w.put_u64(e.dep_store);
            w.put_bool(e.exact_fit);
        }
        w.put_u64(self.forwards);
        w.put_u64(self.stalls.addr_unknown);
        w.put_u64(self.stalls.prior_store_addr);
        w.put_u64(self.stalls.store_overlap);
        w.put_u64(self.pos_base);
        w.put_usize(self.pos_map.len());
        for &o in &self.pos_map {
            w.put_u64(o);
        }
        w.put_u64(self.dispatched);
        w.put_u64(self.retired);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// queue of the same capacity, rebuilding the derived classification
    /// structures from the restored entries.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Corrupt`] if the stream holds more entries
    /// than this queue's capacity.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "LSQ snapshot holds {n} entries but capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push_back(LsqEntry {
                seq: r.get_u64()?,
                addr: r.get_u64()?,
                width: r.get_u64()?,
                is_store: r.get_bool()?,
                addr_known: r.get_bool()?,
                data_known: r.get_bool()?,
                issued: r.get_bool()?,
                dep_store: r.get_u64()?,
                exact_fit: r.get_bool()?,
            });
        }
        self.forwards = r.get_u64()?;
        self.stalls.addr_unknown = r.get_u64()?;
        self.stalls.prior_store_addr = r.get_u64()?;
        self.stalls.store_overlap = r.get_u64()?;
        self.pos_base = r.get_u64()?;
        let map_len = r.get_usize()?;
        self.pos_map.clear();
        for _ in 0..map_len {
            self.pos_map.push_back(r.get_u64()?);
        }
        self.dispatched = r.get_u64()?;
        self.retired = r.get_u64()?;
        self.rebuild_derived();
        Ok(())
    }

    /// Recomputes every derived classification structure from the entry
    /// list — one pass of exactly the old per-cycle scan's logic, run
    /// once per snapshot load instead of once per cycle.
    fn rebuild_derived(&mut self) {
        self.ready.clear();
        self.pending_forwards.clear();
        self.unknown_stores.clear();
        self.eligible_stores.clear();
        self.blocked_prior.clear();
        self.dep_waiters.clear();
        self.n_addr_unknown = 0;
        self.n_prior_store = 0;
        self.n_overlap = 0;
        for (_, mut bucket) in self.block_stores.drain() {
            bucket.clear();
            self.block_pool.push(bucket);
        }
        let mut prior_known = true;
        for idx in 0..self.entries.len() {
            let e = self.entries[idx];
            if e.is_store {
                let (a, b) = blocks_of(e.addr, e.width);
                self.block_index_add(a, e.seq);
                if let Some(b) = b {
                    self.block_index_add(b, e.seq);
                }
                if !e.addr_known {
                    self.unknown_stores.push_back(e.seq);
                }
                if e.addr_known && e.data_known && !e.issued {
                    self.eligible_stores.push(e.seq);
                }
                prior_known &= e.addr_known;
                continue;
            }
            if e.issued {
                continue;
            }
            if !e.addr_known {
                self.n_addr_unknown += 1;
            } else if !prior_known {
                self.blocked_prior.push(e.seq);
                self.n_prior_store += 1;
            } else if e.dep_store != NOT_MEM && e.dep_store >= self.pos_base {
                let s = self.entries[self.find(e.dep_store)];
                if e.exact_fit && s.data_known {
                    // Cannot persist at a cycle boundary in a live run
                    // (the same cycle's collect would have drained it),
                    // but reproduce the scan's classification regardless.
                    self.pending_forwards.push(e.seq);
                } else {
                    self.dep_waiters.push((e.dep_store, e.seq));
                    self.n_overlap += 1;
                }
            } else {
                self.ready.push(MemRequest {
                    id: e.seq,
                    addr: e.addr,
                    is_store: false,
                });
            }
        }
        // Entry order gave load-sorted pairs; waiter events need
        // store-sorted.
        self.dep_waiters.sort_unstable();
    }

    /// One-line occupancy snapshot for watchdog diagnostic dumps.
    pub fn dump(&self) -> String {
        let (mut addr_pending, mut data_pending, mut issued) = (0usize, 0usize, 0usize);
        for e in &self.entries {
            addr_pending += usize::from(!e.addr_known);
            data_pending += usize::from(!e.data_known);
            issued += usize::from(e.issued);
        }
        format!(
            "LSQ {}/{} (head seq {:?}, tail seq {:?}; {} awaiting address, \
             {} awaiting data, {} issued)",
            self.entries.len(),
            self.capacity,
            self.entries.front().map(|e| e.seq),
            self.entries.back().map(|e| e.seq),
            addr_pending,
            data_pending,
            issued,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_waits_for_prior_store_address() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.mark_addr_known(1); // load address known, store's is not
        let r = lsq.collect_ready(u64::MAX);
        assert!(r.cache.iter().all(|c| c.seq != 1));
        lsq.mark_addr_known(0);
        let r = lsq.collect_ready(u64::MAX);
        assert!(r.cache.iter().any(|c| c.seq == 1 && !c.is_store));
    }

    #[test]
    fn exact_match_forwards() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 8, true);
        lsq.dispatch(1, 0x100, 4, false); // narrower load within store
        lsq.mark_addr_known(0);
        lsq.mark_data_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert_eq!(r.forwards, vec![1]);
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x102, 4, false); // straddles the store's end
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 1));
    }

    #[test]
    fn youngest_overlapping_store_wins() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true); // older store, exact match
        lsq.dispatch(1, 0x102, 4, true); // younger store, partial overlap
        lsq.dispatch(2, 0x100, 4, false);
        for s in 0..3 {
            lsq.mark_addr_known(s);
        }
        // The *younger* store partially overlaps → the load is blocked
        // even though an older store matches exactly.
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 2));
    }

    #[test]
    fn non_overlapping_store_does_not_interfere() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x180, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.cache.iter().any(|c| c.seq == 1));
    }

    #[test]
    fn store_gated_by_completion_frontier() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(5, 0x100, 4, true);
        lsq.mark_addr_known(5);
        lsq.mark_data_known(5);
        assert!(lsq.collect_ready(3).cache.is_empty()); // older work pending
        assert!(lsq.collect_ready(5).cache.is_empty()); // the store itself is the frontier
        let r = lsq.collect_ready(6);
        assert_eq!(
            r.cache,
            vec![CacheReady {
                seq: 5,
                addr: 0x100,
                is_store: true
            }]
        );
    }

    #[test]
    fn issued_entries_drop_out() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_issued(0);
        assert!(lsq.collect_ready(u64::MAX).cache.is_empty());
    }

    #[test]
    fn forward_counter_increments() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_forwarded(0);
        assert_eq!(lsq.forwards(), 1);
        // A forced forward on a cache-ready load also leaves the ready list.
        assert!(lsq.collect_ready(0).cache.is_empty());
    }

    #[test]
    fn retire_pops_in_order() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.dispatch(3, 0x200, 4, true);
        lsq.retire(0);
        assert_eq!(lsq.len(), 1);
        lsq.retire(3);
        assert!(lsq.is_empty());
    }

    #[test]
    #[should_panic(expected = "retire out of order")]
    fn out_of_order_retire_panics() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.retire(1);
    }

    #[test]
    #[should_panic(expected = "full LSQ")]
    fn overflow_panics() {
        let mut lsq = Lsq::new(1);
        lsq.dispatch(0, 0, 4, false);
        lsq.dispatch(1, 8, 4, false);
    }

    #[test]
    fn forward_waits_for_store_data() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x100, 4, false);
        lsq.mark_addr_known(0); // address known, data still pending
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 1));
        lsq.mark_data_known(0);
        assert_eq!(lsq.collect_ready(0).forwards, vec![1]);
    }

    #[test]
    fn younger_load_passes_store_with_known_address() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false); // disjoint younger load
        lsq.mark_addr_known(0); // store data NOT yet known
        lsq.mark_addr_known(1);
        // The load may proceed: prior store *addresses* are known.
        let r = lsq.collect_ready(0);
        assert!(r.cache.iter().any(|c| c.seq == 1));
    }

    #[test]
    fn ready_list_is_age_ordered() {
        let mut lsq = Lsq::new(8);
        for s in 0..4u64 {
            lsq.dispatch(s, 0x1000 + s * 64, 4, false);
            lsq.mark_addr_known(s);
        }
        let r = lsq.collect_ready(u64::MAX);
        let seqs: Vec<u64> = r.cache.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn boundary_advance_reclassifies_blocked_loads() {
        // Three loads blocked behind two unknown-address stores; resolving
        // the stores out of order releases exactly the right loads: one
        // forwards, one waits on the second store, one goes straight to
        // the cache list.
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true); // store A
        lsq.dispatch(1, 0x200, 4, true); // store B
        lsq.dispatch(2, 0x100, 4, false); // exact match on A → forwards
        lsq.dispatch(3, 0x202, 4, false); // partial overlap on B → waits
        lsq.dispatch(4, 0x300, 4, false); // disjoint → cache
        for s in 2..5 {
            lsq.mark_addr_known(s);
        }
        // All three loads are blocked on prior store addresses.
        let r = lsq.collect_ready(0);
        assert!(r.cache.is_empty() && r.forwards.is_empty());
        // Resolving the *younger* store first moves nothing (the boundary
        // is still the older store).
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.cache.is_empty() && r.forwards.is_empty());
        // Resolving the older store (with data) releases all three.
        lsq.mark_addr_known(0);
        lsq.mark_data_known(0);
        let r = lsq.collect_ready(0);
        assert_eq!(r.forwards, vec![2]);
        let seqs: Vec<u64> = r.cache.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![4], "partial overlap still waits");
        // The partial-overlap load clears when its decider store retires.
        lsq.mark_forwarded(2);
        lsq.mark_data_known(1);
        lsq.mark_issued(4);
        lsq.retire(0);
        lsq.retire(1);
        let r = lsq.collect_ready(0);
        let seqs: Vec<u64> = r.cache.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![3]);
    }

    #[test]
    fn stall_counters_accrue_per_collect() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true); // unknown-address store
        lsq.dispatch(1, 0x200, 4, false); // load, address unknown
        lsq.dispatch(2, 0x300, 4, false); // load, address known, blocked on store
        lsq.mark_addr_known(2);
        lsq.collect_ready(0);
        lsq.collect_ready(0);
        let s = lsq.stalls();
        assert_eq!(s.addr_unknown, 2, "load 1 counted each cycle");
        assert_eq!(s.prior_store_addr, 2, "load 2 counted each cycle");
        assert_eq!(s.store_overlap, 0);
    }

    #[test]
    fn audit_passes_clean_rounds() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x100, 4, false); // forwards from 0
        lsq.dispatch(2, 0x200, 4, false);
        for s in 0..3 {
            lsq.mark_addr_known(s);
        }
        lsq.mark_data_known(0);
        let r = lsq.collect_ready(5);
        let mut out = Vec::new();
        lsq.audit_round(5, &r, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn audit_flags_corrupted_ready_lists() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        // Fabricate an illegal round: the store offered ahead of the
        // frontier, the disjoint load reported as a forward, out of order.
        let bad = ReadyRefs {
            cache: vec![
                CacheReady {
                    seq: 1,
                    addr: 0x200,
                    is_store: false,
                },
                CacheReady {
                    seq: 0,
                    addr: 0x100,
                    is_store: true,
                },
            ],
            forwards: vec![1],
        };
        let mut out = Vec::new();
        lsq.audit_round(0, &bad, &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"lsq-ready-order"), "{rules:?}");
        assert!(rules.contains(&"lsq-store-early"), "{rules:?}");
        assert!(rules.contains(&"lsq-forward-illegal"), "{rules:?}");
    }

    #[test]
    fn state_roundtrip_rebuilds_classification() {
        // Build a queue with every category populated, snapshot it, and
        // check the restored queue classifies identically.
        let mut lsq = Lsq::new(16);
        lsq.dispatch(0, 0x100, 4, true); // eligible store (addr+data known)
        lsq.dispatch(1, 0x200, 4, true); // unknown-address store
        lsq.dispatch(2, 0x300, 4, false); // ready load... blocked by store 1
        lsq.dispatch(3, 0x400, 4, false); // address-unknown load
        lsq.mark_addr_known(0);
        lsq.mark_data_known(0);
        lsq.mark_addr_known(2);
        let mut w = StateWriter::new();
        lsq.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Lsq::new(16);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        let a = lsq.collect_ready(6);
        let b = restored.collect_ready(6);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.forwards, b.forwards);
        assert_eq!(lsq.stalls(), restored.stalls());
        // Events after the restore behave identically too.
        lsq.mark_addr_known(1);
        restored.mark_addr_known(1);
        let a = lsq.collect_ready(6);
        let b = restored.collect_ready(6);
        assert_eq!(a.cache, b.cache);
        assert_eq!(lsq.stalls(), restored.stalls());
    }

    #[test]
    fn dump_reports_occupancy() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(3, 0x100, 4, true);
        lsq.dispatch(4, 0x200, 4, false);
        lsq.mark_addr_known(4);
        let d = lsq.dump();
        assert!(d.contains("2/8"), "{d}");
        assert!(d.contains("1 awaiting address"), "{d}");
    }
}
