//! The load/store queue: memory ordering, forwarding, and the per-cycle
//! ready list.

use std::collections::VecDeque;

use hbdc_snap::{SnapError, StateReader, StateWriter};

/// One memory reference that is ready to access the cache this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReady {
    /// RUU sequence number.
    pub seq: u64,
    /// Effective address.
    pub addr: u64,
    /// Whether this is a store.
    pub is_store: bool,
}

/// Why loads failed to join a cycle's ready list (diagnostic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStalls {
    /// Load's own address not yet computed.
    pub addr_unknown: u64,
    /// Some older store's address is still unknown.
    pub prior_store_addr: u64,
    /// Older store overlaps (partially, or data pending): must wait.
    pub store_overlap: u64,
}

/// The per-cycle classification of LSQ entries.
#[derive(Debug, Clone, Default)]
pub struct ReadyRefs {
    /// References that must access the cache, in age order.
    pub cache: Vec<CacheReady>,
    /// Loads serviceable by store-to-load forwarding (paper §2.1: "loads
    /// to same address as an earlier store in the LSQ can be serviced with
    /// zero latency"); they never reach the cache structure.
    pub forwards: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    addr: u64,
    width: u64,
    is_store: bool,
    addr_known: bool,
    /// Stores: the value to be written is available (loads: always true).
    data_known: bool,
    issued: bool,
    /// Loads: sequence number of the youngest older store whose bytes
    /// overlap this load (`NOT_MEM` if none). Addresses are oracle values
    /// fixed at dispatch and older stores retire strictly before this
    /// entry, so the decider never changes while it is in the queue —
    /// precomputing it turns the per-cycle backward overlap scan into an
    /// O(1) lookup.
    dep_store: u64,
    /// Loads: whether `dep_store` covers this load exactly (same address,
    /// width fits), i.e. forwarding applies once the store's data is
    /// available; otherwise the overlap is partial and the load waits for
    /// the store to leave the queue.
    exact_fit: bool,
}

/// Sentinel in `Lsq::pos_map` for sequence numbers that never entered the
/// queue (non-memory instructions).
const NOT_MEM: u64 = u64::MAX;

/// The load/store queue (paper Table 1: 512 entries): an address reorder
/// buffer holding all in-flight memory instructions in program order.
///
/// Ordering rules implemented (paper §2.1):
/// * a load may execute only when **all prior store addresses are known**;
/// * a load whose address exactly matches an earlier store (and fits
///   within its width) **forwards** and never accesses the cache;
/// * a load that *partially* overlaps an earlier store waits until that
///   store leaves the queue (conservative, as in SimpleScalar);
/// * a load that exactly matches a store whose *data* is not yet
///   produced waits for that data;
/// * stores access the cache **at commit** — here, once every older
///   instruction has completed (`oldest_not_done` gate).
///
/// # Examples
///
/// ```
/// use hbdc_cpu::Lsq;
///
/// let mut lsq = Lsq::new(4);
/// lsq.dispatch(0, 0x100, 4, true);  // store
/// lsq.dispatch(1, 0x100, 4, false); // load, same address
/// lsq.mark_addr_known(0);
/// lsq.mark_data_known(0);
/// lsq.mark_addr_known(1);
/// let ready = lsq.collect_ready(0); // nothing older is complete yet
/// assert_eq!(ready.forwards, vec![1]); // the load forwards
/// assert!(ready.cache.is_empty());     // the store waits for commit
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    forwards: u64,
    stalls: LsqStalls,
    // O(1) seq → index: `pos_map[(seq - pos_base)]` holds the dispatch
    // ordinal of that sequence number (NOT_MEM for gaps); the entry's
    // current index in `entries` is `ordinal - retired`. Replaces a
    // per-call binary search on the hot mark_* paths.
    pos_base: u64,
    pos_map: VecDeque<u64>,
    dispatched: u64,
    retired: u64,
}

impl Lsq {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            forwards: 0,
            stalls: LsqStalls::default(),
            pos_base: 0,
            pos_map: VecDeque::new(),
            dispatched: 0,
            retired: 0,
        }
    }

    /// Whether another memory instruction can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total store-to-load forwards so far.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Cumulative per-cycle load-stall diagnostics.
    pub fn stalls(&self) -> LsqStalls {
        self.stalls
    }

    fn find(&self, seq: u64) -> usize {
        let ordinal = self
            .pos_map
            .get(seq.wrapping_sub(self.pos_base) as usize)
            .copied()
            .filter(|&o| o != NOT_MEM)
            .expect("seq not in LSQ");
        (ordinal - self.retired) as usize
    }

    /// Appends a memory instruction in program order. The effective
    /// address is known functionally up front (oracle), but is not
    /// *architecturally* known until [`mark_addr_known`](Self::mark_addr_known).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not increasing.
    pub fn dispatch(&mut self, seq: u64, addr: u64, width: u64, is_store: bool) {
        assert!(self.has_space(), "dispatch into full LSQ");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < seq, "LSQ dispatch out of order");
        }
        if self.entries.is_empty() {
            self.pos_map.clear();
            self.pos_base = seq;
        }
        while self.pos_map.len() < (seq - self.pos_base) as usize {
            self.pos_map.push_back(NOT_MEM);
        }
        self.pos_map.push_back(self.dispatched);
        self.dispatched += 1;
        let mut dep_store = NOT_MEM;
        let mut exact_fit = false;
        if !is_store {
            for s in self.entries.iter().rev() {
                if !s.is_store {
                    continue;
                }
                let overlap = addr < s.addr + s.width && s.addr < addr + width;
                if overlap {
                    dep_store = s.seq;
                    exact_fit = s.addr == addr && width <= s.width;
                    break; // youngest overlapping store decides
                }
            }
        }
        self.entries.push_back(LsqEntry {
            seq,
            addr,
            width,
            is_store,
            addr_known: false,
            data_known: !is_store,
            issued: false,
            dep_store,
            exact_fit,
        });
    }

    /// Records that `seq`'s effective address has been computed.
    pub fn mark_addr_known(&mut self, seq: u64) {
        let i = self.find(seq);
        self.entries[i].addr_known = true;
    }

    /// Records that a store's data operand has been produced.
    pub fn mark_data_known(&mut self, seq: u64) {
        let i = self.find(seq);
        debug_assert!(self.entries[i].is_store);
        self.entries[i].data_known = true;
    }

    /// Records that `seq` has been granted its cache access.
    pub fn mark_issued(&mut self, seq: u64) {
        let i = self.find(seq);
        self.entries[i].issued = true;
    }

    /// Records that a load was serviced by forwarding (also counts it).
    pub fn mark_forwarded(&mut self, seq: u64) {
        let i = self.find(seq);
        debug_assert!(!self.entries[i].is_store);
        self.entries[i].issued = true;
        self.forwards += 1;
    }

    /// Removes the front entry, which must be `seq` (called at commit).
    ///
    /// # Panics
    ///
    /// Panics if the front entry is not `seq`.
    pub fn retire(&mut self, seq: u64) {
        let front = self.entries.pop_front().expect("retire from empty LSQ");
        assert_eq!(front.seq, seq, "LSQ retire out of order");
        let covered = (seq - self.pos_base + 1) as usize;
        self.pos_map.drain(..covered);
        self.pos_base = seq + 1;
        self.retired += 1;
    }

    /// Classifies entries into this cycle's ready sets, writing them into
    /// the caller-owned `out` (cleared first) so the per-cycle scan
    /// allocates nothing once the buffers have warmed up.
    ///
    /// `oldest_not_done` is the RUU's completion frontier: stores older
    /// than it (i.e. with every older instruction complete) may perform
    /// their commit-time cache access.
    pub fn collect_ready_into(&mut self, oldest_not_done: u64, out: &mut ReadyRefs) {
        out.cache.clear();
        out.forwards.clear();
        let mut prior_stores_known = true;

        for e in &self.entries {
            if e.is_store {
                if e.addr_known && e.data_known && !e.issued && e.seq < oldest_not_done {
                    out.cache.push(CacheReady {
                        seq: e.seq,
                        addr: e.addr,
                        is_store: true,
                    });
                }
                prior_stores_known &= e.addr_known;
                continue;
            }
            // Loads.
            if e.issued {
                continue;
            }
            if !e.addr_known {
                self.stalls.addr_unknown += 1;
                continue;
            }
            if !prior_stores_known {
                self.stalls.prior_store_addr += 1;
                continue;
            }
            // The youngest overlapping older store was identified at
            // dispatch; once it retires, every older overlapping store has
            // retired too (commit is in order), so the load is clear.
            let mut blocked = false;
            let mut forward = false;
            if e.dep_store != NOT_MEM && e.dep_store >= self.pos_base {
                let s = &self.entries[self.find(e.dep_store)];
                debug_assert!(s.is_store && s.seq == e.dep_store);
                if e.exact_fit && s.data_known {
                    forward = true;
                } else {
                    blocked = true; // partial overlap or data not yet
                                    // produced: wait for the store
                }
            }
            if blocked {
                self.stalls.store_overlap += 1;
                continue;
            }
            if forward {
                out.forwards.push(e.seq);
            } else {
                out.cache.push(CacheReady {
                    seq: e.seq,
                    addr: e.addr,
                    is_store: false,
                });
            }
        }
    }

    /// Classifies entries into this cycle's ready sets. Allocates; the
    /// hot path uses [`collect_ready_into`](Self::collect_ready_into).
    pub fn collect_ready(&mut self, oldest_not_done: u64) -> ReadyRefs {
        let mut out = ReadyRefs::default();
        self.collect_ready_into(oldest_not_done, &mut out);
        out
    }

    /// Re-checks one ready-list round against the queue's ordering and
    /// forwarding rules, appending any violations to `out`.
    ///
    /// `ready` must be the result of the matching
    /// [`collect_ready_into`](Self::collect_ready_into) call with the same
    /// `oldest_not_done` frontier. A pure observer: it recomputes legality
    /// independently of the classification scan. Checks:
    ///
    /// * queue entries are in strict age order (`lsq-age-order`);
    /// * the cache-ready list is in strict age order (`lsq-ready-order`);
    /// * every ready store has all operands, was not already issued, and
    ///   sits behind the completion frontier (`lsq-store-early`);
    /// * every forward names a load whose decider store is present with
    ///   its data produced and an exact address fit (`lsq-forward-illegal`).
    pub fn audit_round(
        &self,
        oldest_not_done: u64,
        ready: &ReadyRefs,
        out: &mut Vec<hbdc_core::Violation>,
    ) {
        use hbdc_core::Violation;
        for w in self
            .entries
            .iter()
            .zip(self.entries.iter().skip(1))
            .filter(|(a, b)| a.seq >= b.seq)
        {
            out.push(Violation::new(
                "lsq-age-order",
                format!(
                    "queue entries out of age order: {} then {}",
                    w.0.seq, w.1.seq
                ),
            ));
        }
        for w in ready.cache.windows(2).filter(|w| w[0].seq >= w[1].seq) {
            out.push(Violation::new(
                "lsq-ready-order",
                format!(
                    "ready list out of age order: {} then {}",
                    w[0].seq, w[1].seq
                ),
            ));
        }
        for c in ready.cache.iter().filter(|c| c.is_store) {
            let legal = c.seq < oldest_not_done
                && self
                    .entry(c.seq)
                    .is_some_and(|e| e.addr_known && e.data_known && !e.issued);
            if !legal {
                out.push(Violation::new(
                    "lsq-store-early",
                    format!(
                        "store {} offered to the cache before commit eligibility \
                         (frontier {oldest_not_done})",
                        c.seq
                    ),
                ));
            }
        }
        for &seq in &ready.forwards {
            let legal = self.entry(seq).is_some_and(|load| {
                !load.is_store
                    && load.exact_fit
                    && self
                        .entry(load.dep_store)
                        .is_some_and(|s| s.is_store && s.seq < seq && s.data_known)
            });
            if !legal {
                out.push(Violation::new(
                    "lsq-forward-illegal",
                    format!("load {seq} forwarded without a covering older store"),
                ));
            }
        }
    }

    /// Looks up `seq` without panicking (diagnostics and auditing).
    fn entry(&self, seq: u64) -> Option<&LsqEntry> {
        let ordinal = self
            .pos_map
            .get(seq.wrapping_sub(self.pos_base) as usize)
            .copied()
            .filter(|&o| o != NOT_MEM)?;
        self.entries.get((ordinal - self.retired) as usize)
    }

    /// Serializes the queue: every entry with its full ordering state,
    /// the forward/stall counters, and the seq→index position map.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.seq);
            w.put_u64(e.addr);
            w.put_u64(e.width);
            w.put_bool(e.is_store);
            w.put_bool(e.addr_known);
            w.put_bool(e.data_known);
            w.put_bool(e.issued);
            w.put_u64(e.dep_store);
            w.put_bool(e.exact_fit);
        }
        w.put_u64(self.forwards);
        w.put_u64(self.stalls.addr_unknown);
        w.put_u64(self.stalls.prior_store_addr);
        w.put_u64(self.stalls.store_overlap);
        w.put_u64(self.pos_base);
        w.put_usize(self.pos_map.len());
        for &o in &self.pos_map {
            w.put_u64(o);
        }
        w.put_u64(self.dispatched);
        w.put_u64(self.retired);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// queue of the same capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Corrupt`] if the stream holds more entries
    /// than this queue's capacity.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "LSQ snapshot holds {n} entries but capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push_back(LsqEntry {
                seq: r.get_u64()?,
                addr: r.get_u64()?,
                width: r.get_u64()?,
                is_store: r.get_bool()?,
                addr_known: r.get_bool()?,
                data_known: r.get_bool()?,
                issued: r.get_bool()?,
                dep_store: r.get_u64()?,
                exact_fit: r.get_bool()?,
            });
        }
        self.forwards = r.get_u64()?;
        self.stalls.addr_unknown = r.get_u64()?;
        self.stalls.prior_store_addr = r.get_u64()?;
        self.stalls.store_overlap = r.get_u64()?;
        self.pos_base = r.get_u64()?;
        let map_len = r.get_usize()?;
        self.pos_map.clear();
        for _ in 0..map_len {
            self.pos_map.push_back(r.get_u64()?);
        }
        self.dispatched = r.get_u64()?;
        self.retired = r.get_u64()?;
        Ok(())
    }

    /// One-line occupancy snapshot for watchdog diagnostic dumps.
    pub fn dump(&self) -> String {
        let (mut addr_pending, mut data_pending, mut issued) = (0usize, 0usize, 0usize);
        for e in &self.entries {
            addr_pending += usize::from(!e.addr_known);
            data_pending += usize::from(!e.data_known);
            issued += usize::from(e.issued);
        }
        format!(
            "LSQ {}/{} (head seq {:?}, tail seq {:?}; {} awaiting address, \
             {} awaiting data, {} issued)",
            self.entries.len(),
            self.capacity,
            self.entries.front().map(|e| e.seq),
            self.entries.back().map(|e| e.seq),
            addr_pending,
            data_pending,
            issued,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_waits_for_prior_store_address() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.mark_addr_known(1); // load address known, store's is not
        let r = lsq.collect_ready(u64::MAX);
        assert!(r.cache.iter().all(|c| c.seq != 1));
        lsq.mark_addr_known(0);
        let r = lsq.collect_ready(u64::MAX);
        assert!(r.cache.iter().any(|c| c.seq == 1 && !c.is_store));
    }

    #[test]
    fn exact_match_forwards() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 8, true);
        lsq.dispatch(1, 0x100, 4, false); // narrower load within store
        lsq.mark_addr_known(0);
        lsq.mark_data_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert_eq!(r.forwards, vec![1]);
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x102, 4, false); // straddles the store's end
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 1));
    }

    #[test]
    fn youngest_overlapping_store_wins() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true); // older store, exact match
        lsq.dispatch(1, 0x102, 4, true); // younger store, partial overlap
        lsq.dispatch(2, 0x100, 4, false);
        for s in 0..3 {
            lsq.mark_addr_known(s);
        }
        // The *younger* store partially overlaps → the load is blocked
        // even though an older store matches exactly.
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 2));
    }

    #[test]
    fn non_overlapping_store_does_not_interfere() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x180, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.cache.iter().any(|c| c.seq == 1));
    }

    #[test]
    fn store_gated_by_completion_frontier() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(5, 0x100, 4, true);
        lsq.mark_addr_known(5);
        lsq.mark_data_known(5);
        assert!(lsq.collect_ready(3).cache.is_empty()); // older work pending
        assert!(lsq.collect_ready(5).cache.is_empty()); // the store itself is the frontier
        let r = lsq.collect_ready(6);
        assert_eq!(
            r.cache,
            vec![CacheReady {
                seq: 5,
                addr: 0x100,
                is_store: true
            }]
        );
    }

    #[test]
    fn issued_entries_drop_out() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_issued(0);
        assert!(lsq.collect_ready(u64::MAX).cache.is_empty());
    }

    #[test]
    fn forward_counter_increments() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_forwarded(0);
        assert_eq!(lsq.forwards(), 1);
    }

    #[test]
    fn retire_pops_in_order() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.dispatch(3, 0x200, 4, true);
        lsq.retire(0);
        assert_eq!(lsq.len(), 1);
        lsq.retire(3);
        assert!(lsq.is_empty());
    }

    #[test]
    #[should_panic(expected = "retire out of order")]
    fn out_of_order_retire_panics() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, false);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.retire(1);
    }

    #[test]
    #[should_panic(expected = "full LSQ")]
    fn overflow_panics() {
        let mut lsq = Lsq::new(1);
        lsq.dispatch(0, 0, 4, false);
        lsq.dispatch(1, 8, 4, false);
    }

    #[test]
    fn forward_waits_for_store_data() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x100, 4, false);
        lsq.mark_addr_known(0); // address known, data still pending
        lsq.mark_addr_known(1);
        let r = lsq.collect_ready(0);
        assert!(r.forwards.is_empty());
        assert!(r.cache.iter().all(|c| c.seq != 1));
        lsq.mark_data_known(0);
        assert_eq!(lsq.collect_ready(0).forwards, vec![1]);
    }

    #[test]
    fn younger_load_passes_store_with_known_address() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false); // disjoint younger load
        lsq.mark_addr_known(0); // store data NOT yet known
        lsq.mark_addr_known(1);
        // The load may proceed: prior store *addresses* are known.
        let r = lsq.collect_ready(0);
        assert!(r.cache.iter().any(|c| c.seq == 1));
    }

    #[test]
    fn ready_list_is_age_ordered() {
        let mut lsq = Lsq::new(8);
        for s in 0..4u64 {
            lsq.dispatch(s, 0x1000 + s * 64, 4, false);
            lsq.mark_addr_known(s);
        }
        let r = lsq.collect_ready(u64::MAX);
        let seqs: Vec<u64> = r.cache.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn audit_passes_clean_rounds() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x100, 4, false); // forwards from 0
        lsq.dispatch(2, 0x200, 4, false);
        for s in 0..3 {
            lsq.mark_addr_known(s);
        }
        lsq.mark_data_known(0);
        let r = lsq.collect_ready(5);
        let mut out = Vec::new();
        lsq.audit_round(5, &r, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn audit_flags_corrupted_ready_lists() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(0, 0x100, 4, true);
        lsq.dispatch(1, 0x200, 4, false);
        lsq.mark_addr_known(0);
        lsq.mark_addr_known(1);
        // Fabricate an illegal round: the store offered ahead of the
        // frontier, the disjoint load reported as a forward, out of order.
        let bad = ReadyRefs {
            cache: vec![
                CacheReady {
                    seq: 1,
                    addr: 0x200,
                    is_store: false,
                },
                CacheReady {
                    seq: 0,
                    addr: 0x100,
                    is_store: true,
                },
            ],
            forwards: vec![1],
        };
        let mut out = Vec::new();
        lsq.audit_round(0, &bad, &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"lsq-ready-order"), "{rules:?}");
        assert!(rules.contains(&"lsq-store-early"), "{rules:?}");
        assert!(rules.contains(&"lsq-forward-illegal"), "{rules:?}");
    }

    #[test]
    fn dump_reports_occupancy() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch(3, 0x100, 4, true);
        lsq.dispatch(4, 0x200, 4, false);
        lsq.mark_addr_known(4);
        let d = lsq.dump();
        assert!(d.contains("2/8"), "{d}");
        assert!(d.contains("1 awaiting address"), "{d}");
    }
}
