//! Functional-unit pools with Table 1 latencies.

use hbdc_isa::FuClass;
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::config::CpuConfig;

/// Operation latency of a functional-unit class: `total` cycles until the
/// result is available, `issue` cycles until the unit can accept another
/// operation (paper Table 1, "total/issue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatency {
    /// Result latency in cycles.
    pub total: u64,
    /// Unit occupancy in cycles (1 = fully pipelined).
    pub issue: u64,
}

/// Table 1 latency for a class. Load/store returns the 1/1 address-generation
/// component; the cache access latency is the memory system's business.
pub fn latency_of(class: FuClass) -> FuLatency {
    match class {
        FuClass::IntAlu => FuLatency { total: 1, issue: 1 },
        FuClass::IntMult => FuLatency { total: 3, issue: 1 },
        FuClass::IntDiv => FuLatency {
            total: 12,
            issue: 12,
        },
        FuClass::FpAdd => FuLatency { total: 2, issue: 1 },
        FuClass::FpMult => FuLatency { total: 4, issue: 1 },
        FuClass::FpDiv => FuLatency {
            total: 12,
            issue: 12,
        },
        FuClass::LoadStore => FuLatency { total: 1, issue: 1 },
        FuClass::None => FuLatency { total: 1, issue: 1 },
    }
}

#[derive(Debug, Clone)]
struct Pool {
    busy_until: Vec<u64>,
}

impl Pool {
    fn new(units: u32) -> Self {
        Self {
            busy_until: vec![0; units as usize],
        }
    }

    fn try_issue(&mut self, now: u64, issue_latency: u64) -> bool {
        if let Some(u) = self.busy_until.iter_mut().find(|b| **b <= now) {
            *u = now + issue_latency;
            true
        } else {
            false
        }
    }

    fn next_free(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.busy_until.len());
        for &b in &self.busy_until {
            w.put_u64(b);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.busy_until.len() {
            return Err(SnapError::Corrupt(format!(
                "functional-unit pool snapshot has {n} units, expected {}",
                self.busy_until.len()
            )));
        }
        for b in &mut self.busy_until {
            *b = r.get_u64()?;
        }
        Ok(())
    }
}

/// The execution resources of the machine: one pool per functional-unit
/// class (paper Table 1: 64 of each; load/store units are implied by the
/// data-cache port model and never constrained here).
///
/// # Examples
///
/// ```
/// use hbdc_cpu::{CpuConfig, FuPools};
/// use hbdc_isa::FuClass;
///
/// let mut fus = FuPools::new(&CpuConfig::default());
/// let lat = fus.try_issue(FuClass::IntMult, 10).unwrap();
/// assert_eq!(lat.total, 3);
/// ```
#[derive(Debug, Clone)]
pub struct FuPools {
    int_alu: Pool,
    int_mult: Pool,
    int_div: Pool,
    fp_add: Pool,
    fp_mult: Pool,
    fp_div: Pool,
}

impl FuPools {
    /// Creates pools sized per the configuration.
    pub fn new(cfg: &CpuConfig) -> Self {
        Self {
            int_alu: Pool::new(cfg.int_alu_units),
            int_mult: Pool::new(cfg.int_mult_units),
            int_div: Pool::new(cfg.int_div_units),
            fp_add: Pool::new(cfg.fp_add_units),
            fp_mult: Pool::new(cfg.fp_mult_units),
            fp_div: Pool::new(cfg.fp_div_units),
        }
    }

    /// Attempts to claim a unit of `class` at cycle `now`.
    ///
    /// Returns the operation latency if a unit was free, or `None` if all
    /// units of the class are busy (structural hazard). `LoadStore` and
    /// `None` classes always succeed — memory bandwidth is arbitrated by
    /// the port model, not here.
    pub fn try_issue(&mut self, class: FuClass, now: u64) -> Option<FuLatency> {
        let lat = latency_of(class);
        let pool = match class {
            FuClass::IntAlu => &mut self.int_alu,
            FuClass::IntMult => &mut self.int_mult,
            FuClass::IntDiv => &mut self.int_div,
            FuClass::FpAdd => &mut self.fp_add,
            FuClass::FpMult => &mut self.fp_mult,
            FuClass::FpDiv => &mut self.fp_div,
            FuClass::LoadStore | FuClass::None => return Some(lat),
        };
        pool.try_issue(now, lat.issue).then_some(lat)
    }

    /// The earliest cycle at which some unit of `class` is free — the
    /// first cycle a [`try_issue`](Self::try_issue) for that class could
    /// succeed again after a structural hazard. Non-mutating; `LoadStore`
    /// and `None` are never constrained and report 0.
    pub fn next_free(&self, class: FuClass) -> u64 {
        match class {
            FuClass::IntAlu => self.int_alu.next_free(),
            FuClass::IntMult => self.int_mult.next_free(),
            FuClass::IntDiv => self.int_div.next_free(),
            FuClass::FpAdd => self.fp_add.next_free(),
            FuClass::FpMult => self.fp_mult.next_free(),
            FuClass::FpDiv => self.fp_div.next_free(),
            FuClass::LoadStore | FuClass::None => 0,
        }
    }

    /// Serializes every pool's per-unit busy horizon.
    pub fn save_state(&self, w: &mut StateWriter) {
        for pool in [
            &self.int_alu,
            &self.int_mult,
            &self.int_div,
            &self.fp_add,
            &self.fp_mult,
            &self.fp_div,
        ] {
            pool.save_state(w);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into
    /// pools of identical sizes.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Corrupt`] if any pool's unit count differs.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        for pool in [
            &mut self.int_alu,
            &mut self.int_mult,
            &mut self.int_div,
            &mut self.fp_add,
            &mut self.fp_mult,
            &mut self.fp_div,
        ] {
            pool.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuPools {
        FuPools::new(&CpuConfig {
            int_alu_units: 1,
            int_div_units: 1,
            fp_div_units: 1,
            ..CpuConfig::default()
        })
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(
            latency_of(FuClass::IntAlu),
            FuLatency { total: 1, issue: 1 }
        );
        assert_eq!(
            latency_of(FuClass::IntMult),
            FuLatency { total: 3, issue: 1 }
        );
        assert_eq!(
            latency_of(FuClass::IntDiv),
            FuLatency {
                total: 12,
                issue: 12
            }
        );
        assert_eq!(latency_of(FuClass::FpAdd), FuLatency { total: 2, issue: 1 });
        assert_eq!(
            latency_of(FuClass::FpMult),
            FuLatency { total: 4, issue: 1 }
        );
        assert_eq!(
            latency_of(FuClass::FpDiv),
            FuLatency {
                total: 12,
                issue: 12
            }
        );
        assert_eq!(
            latency_of(FuClass::LoadStore),
            FuLatency { total: 1, issue: 1 }
        );
    }

    #[test]
    fn pipelined_unit_accepts_every_cycle() {
        let mut fus = tiny();
        assert!(fus.try_issue(FuClass::IntAlu, 0).is_some());
        assert!(fus.try_issue(FuClass::IntAlu, 0).is_none()); // 1 unit, same cycle
        assert!(fus.try_issue(FuClass::IntAlu, 1).is_some()); // next cycle ok
    }

    #[test]
    fn unpipelined_divider_blocks_for_issue_latency() {
        let mut fus = tiny();
        assert!(fus.try_issue(FuClass::IntDiv, 0).is_some());
        assert!(fus.try_issue(FuClass::IntDiv, 11).is_none());
        assert!(fus.try_issue(FuClass::IntDiv, 12).is_some());
    }

    #[test]
    fn load_store_never_blocks() {
        let mut fus = tiny();
        for _ in 0..100 {
            assert!(fus.try_issue(FuClass::LoadStore, 0).is_some());
        }
    }

    #[test]
    fn next_free_tracks_busy_horizon() {
        let mut fus = tiny();
        assert_eq!(fus.next_free(FuClass::IntDiv), 0);
        fus.try_issue(FuClass::IntDiv, 3).unwrap();
        assert_eq!(fus.next_free(FuClass::IntDiv), 15); // 3 + issue 12
        assert_eq!(fus.next_free(FuClass::IntAlu), 0); // other pools untouched
        assert_eq!(fus.next_free(FuClass::LoadStore), 0); // never constrained
    }

    #[test]
    fn classes_are_independent() {
        let mut fus = tiny();
        assert!(fus.try_issue(FuClass::IntDiv, 0).is_some());
        assert!(fus.try_issue(FuClass::FpDiv, 0).is_some()); // separate pool
        assert!(fus.try_issue(FuClass::IntAlu, 0).is_some());
    }
}
