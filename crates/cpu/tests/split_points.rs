//! Exhaustive snapshot split-point anchor: for *every* cycle-budget K of
//! a small mixed workload, pausing at K, round-tripping the snapshot
//! through its byte encoding, and resuming must reproduce the straight
//! run's report bit for bit. The differential fuzzer (DESIGN.md §13)
//! samples one random split per program; this test closes the gap by
//! walking the whole split axis on a fixed kernel, so an off-by-one in
//! any piece of serialized microarchitectural state (LSQ, bank queues,
//! MSHRs, store queue, predictor) fails here with the exact split cycle
//! in the assertion message.

use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, SimSnapshot, Simulator};
use hbdc_isa::asm::assemble;
use hbdc_isa::Program;
use hbdc_mem::HierarchyConfig;

/// Small but structurally busy: strided same-bank loads, dependent
/// stores, and a data-dependent branch keep the LSQ, bank queues, and
/// predictor populated at every split point without making the
/// quadratic split sweep expensive.
const WORKLOAD: &str = ".data\nv: .space 4096\n.text\nmain:\n la r8, v\n li r9, 40\n\
    loop:\n lw r1, 0(r8)\n lw r2, 128(r8)\n lw r3, 256(r8)\n addi r1, r1, 3\n\
    sw r1, 384(r8)\n fld f1, 512(r8)\n fadd.d f2, f2, f1\n andi r10, r9, 3\n\
    bnez r10, skip\n addi r8, r8, 8\n skip:\n addi r9, r9, -1\n bnez r9, loop\n halt\n";

fn program() -> Program {
    assemble(WORKLOAD).unwrap()
}

#[test]
fn every_split_point_resumes_bit_identically() {
    let p = program();
    let cfg = CpuConfig::default();
    for port in [
        PortConfig::Ideal { ports: 2 },
        PortConfig::banked(4),
        PortConfig::lbic(4, 2),
    ] {
        let straight = Simulator::new(&p, cfg, HierarchyConfig::default(), port)
            .run()
            .expect("straight run completes");
        let mut splits = 0u64;
        for k in 1u64.. {
            let mut sim = Simulator::new(&p, cfg, HierarchyConfig::default(), port);
            let finished = sim.run_for(k).expect("prefix run completes");
            if finished {
                // The budget now covers the whole run; the sweep is done.
                assert_eq!(sim.report(), straight, "{port:?}: full-budget run");
                break;
            }
            let bytes = sim.save_snapshot().as_bytes().to_vec();
            let snap = SimSnapshot::from_bytes(bytes).expect("snapshot bytes roundtrip");
            let report = Simulator::resume(&snap)
                .expect("snapshot resumes")
                .run()
                .expect("resumed run completes");
            assert_eq!(report, straight, "{port:?}: split at step {k} diverged");
            splits += 1;
        }
        assert!(
            splits >= 20,
            "{port:?}: workload finished after only {splits} split points — too short to anchor"
        );
    }
}
