//! Property tests: the emulator and timing simulator over randomly
//! generated straight-line programs.

use proptest::prelude::*;

use hbdc_core::PortConfig;
use hbdc_cpu::{CpuConfig, Emulator, Simulator};
use hbdc_isa::{AluOp, Inst, Program, Reg, Width, DATA_BASE};
use hbdc_mem::HierarchyConfig;

/// A random straight-line instruction whose memory accesses stay inside a
/// 4KB window of the data region (base register r0 + absolute offset).
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = (1u8..16).prop_map(Reg::new);
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs, rt)| Inst::Alu {
            op: AluOp::Add,
            rd,
            rs,
            rt
        }),
        (reg.clone(), reg.clone(), -64i64..64).prop_map(|(rd, rs, imm)| Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs,
            imm
        }),
        (reg.clone(), 0i64..512).prop_map(|(rd, slot)| Inst::Load {
            width: Width::Double,
            rd,
            base: Reg::ZERO,
            offset: DATA_BASE as i64 + slot * 8,
        }),
        (reg, 0i64..512).prop_map(|(rs, slot)| Inst::Store {
            width: Width::Double,
            rs,
            base: Reg::ZERO,
            offset: DATA_BASE as i64 + slot * 8,
        }),
        Just(Inst::Nop),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_inst(), 1..200).prop_map(|mut text| {
        text.push(Inst::Halt);
        Program::from_parts(text, vec![0; 4096], Default::default(), 0)
    })
}

fn run(program: &Program, port: PortConfig) -> hbdc_cpu::SimReport {
    Simulator::new(
        program,
        CpuConfig::default(),
        HierarchyConfig::default(),
        port,
    )
    .run()
    .expect("property-generated program must simulate cleanly")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emulator_executes_every_instruction_once(program in arb_program()) {
        let count = Emulator::new(&program).count();
        prop_assert_eq!(count, program.text().len());
    }

    #[test]
    fn emulator_is_deterministic(program in arb_program()) {
        let a: Vec<_> = Emulator::new(&program).collect();
        let b: Vec<_> = Emulator::new(&program).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn simulator_commits_the_whole_program(program in arb_program()) {
        let report = run(&program, PortConfig::lbic(4, 2));
        prop_assert_eq!(report.committed as usize, program.text().len());
        // Loads either reach the cache or forward; stores always access.
        prop_assert_eq!(
            report.l1_accesses + report.forwards,
            report.loads + report.stores
        );
    }

    #[test]
    fn ipc_never_exceeds_machine_width(program in arb_program()) {
        for port in [
            PortConfig::Ideal { ports: 16 },
            PortConfig::banked(8),
            PortConfig::lbic(4, 4),
        ] {
            let report = run(&program, port);
            prop_assert!(report.ipc() <= 64.0 + 1e-9);
            prop_assert!(report.cycles > 0);
        }
    }

    #[test]
    fn every_port_model_commits_identically(program in arb_program()) {
        let reference = run(&program, PortConfig::Ideal { ports: 16 });
        for port in [
            PortConfig::Ideal { ports: 1 },
            PortConfig::Replicated { ports: 2 },
            PortConfig::banked(4),
            PortConfig::lbic(2, 2),
        ] {
            let report = run(&program, port);
            prop_assert_eq!(report.committed, reference.committed);
            prop_assert_eq!(report.loads, reference.loads);
            prop_assert_eq!(report.stores, reference.stores);
        }
    }

    #[test]
    fn more_ideal_ports_never_slow_the_machine(program in arb_program()) {
        let one = run(&program, PortConfig::Ideal { ports: 1 });
        let four = run(&program, PortConfig::Ideal { ports: 4 });
        prop_assert!(four.cycles <= one.cycles);
    }
}
