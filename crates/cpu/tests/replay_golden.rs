//! Golden gate for trace-driven replay: a simulator fed by a captured
//! committed-stream trace must be **bit-identical** to one executing the
//! program functionally — same [`SimReport`](hbdc_cpu::SimReport), same
//! branch statistics, same LSQ stall census — for every port model, with
//! the invariant auditor on and off, across warmup offsets, and across a
//! snapshot/resume split taken mid-replay. Anything less and the matrix
//! fan-out (capture once, replay per cell) would silently change results.

use hbdc_core::PortConfig;
use hbdc_cpu::{
    CommittedTrace, CpuConfig, FrontEnd, PredictorKind, SimError, SimReport, SimSnapshot, Simulator,
};
use hbdc_isa::asm::assemble;
use hbdc_isa::Program;
use hbdc_mem::HierarchyConfig;

/// Mixed workload: strided loads, dependent stores, a data-dependent
/// branch — populates the LSQ, bank queues, MSHRs, and the misprediction
/// path for a few thousand cycles.
const WORKLOAD: &str = ".data\nv: .space 8192\n.text\nmain:\n la r8, v\n li r9, 150\n\
    loop:\n lw r1, 0(r8)\n lw r2, 64(r8)\n lw r3, 128(r8)\n addi r1, r1, 3\n\
    sw r1, 192(r8)\n sw r2, 256(r8)\n andi r10, r9, 1\n bnez r10, odd\n\
    addi r8, r8, 8\n odd:\n addi r8, r8, 8\n addi r9, r9, -1\n bnez r9, loop\n halt\n";

fn program() -> Program {
    assemble(WORKLOAD).unwrap()
}

fn every_port() -> [PortConfig; 4] {
    [
        PortConfig::Ideal { ports: 4 },
        PortConfig::Replicated { ports: 4 },
        PortConfig::banked(4),
        PortConfig::lbic(4, 2),
    ]
}

fn execute(p: &Program, cfg: CpuConfig, port: PortConfig) -> (SimReport, Simulator) {
    let mut sim = Simulator::new(p, cfg, HierarchyConfig::default(), port);
    let report = sim.run().unwrap();
    (report, sim)
}

fn replay(t: &CommittedTrace, cfg: CpuConfig, port: PortConfig) -> (SimReport, Simulator) {
    let mut sim = Simulator::try_from_trace(t, cfg, HierarchyConfig::default(), port).unwrap();
    assert!(sim.is_replay());
    let report = sim.run().unwrap();
    (report, sim)
}

fn golden_sweep(audit: bool) {
    let p = program();
    let cfg = CpuConfig {
        audit,
        ..CpuConfig::default()
    };
    let trace = CommittedTrace::capture(&p, cfg.warmup_insts, None).unwrap();
    for port in every_port() {
        let (base, base_sim) = execute(&p, cfg, port);
        let (rep, rep_sim) = replay(&trace, cfg, port);
        assert_eq!(base, rep, "{port:?} replay diverged (audit={audit})");
        assert_eq!(
            base_sim.branch_stats(),
            rep_sim.branch_stats(),
            "{port:?} branch stats diverged (audit={audit})"
        );
        assert_eq!(
            base_sim.lsq_stalls(),
            rep_sim.lsq_stalls(),
            "{port:?} LSQ stalls diverged (audit={audit})"
        );
    }
}

#[test]
fn replay_is_bit_identical_for_every_port_model() {
    golden_sweep(false);
}

#[test]
fn replay_is_bit_identical_under_audit() {
    golden_sweep(true);
}

#[test]
fn replay_is_bit_identical_with_warmup_and_predictor() {
    let p = program();
    let cfg = CpuConfig {
        warmup_insts: 200,
        front_end: FrontEnd::Predicted {
            kind: PredictorKind::Gshare {
                entries: 1024,
                history_bits: 8,
            },
            redirect_penalty: 2,
        },
        ..CpuConfig::default()
    };
    let trace = CommittedTrace::capture(&p, cfg.warmup_insts, None).unwrap();
    let port = PortConfig::lbic(4, 2);
    let (base, base_sim) = execute(&p, cfg, port);
    let (rep, rep_sim) = replay(&trace, cfg, port);
    assert_eq!(base, rep);
    assert_eq!(base_sim.branch_stats(), rep_sim.branch_stats());
}

/// One trace, every port model: the whole point of capture-once is that
/// a single functional pass feeds the entire configuration fan-out.
#[test]
fn one_trace_feeds_the_whole_port_fanout() {
    let p = program();
    let cfg = CpuConfig::default();
    let trace = CommittedTrace::capture(&p, cfg.warmup_insts, None).unwrap();
    let mut reports = Vec::new();
    for port in every_port() {
        reports.push(replay(&trace, cfg, port).0);
    }
    // The port models genuinely differ, so the sweep exercised four
    // distinct timing behaviours off the same captured stream.
    assert!(reports.iter().any(|r| r.cycles != reports[0].cycles));
    for (r, port) in reports.iter().zip(every_port()) {
        assert_eq!(r, &execute(&p, cfg, port).0, "{port:?}");
    }
}

/// Snapshot taken in the middle of a replay run, round-tripped through
/// bytes, resumed, and run to completion — must equal the uninterrupted
/// replay (which itself equals execute mode).
#[test]
fn snapshot_mid_replay_resumes_bit_identically() {
    let p = program();
    let cfg = CpuConfig::default();
    let trace = CommittedTrace::capture(&p, cfg.warmup_insts, None).unwrap();
    for port in every_port() {
        let (baseline, _) = execute(&p, cfg, port);
        for k in [0, baseline.cycles / 2, baseline.cycles - 1] {
            let mut head =
                Simulator::try_from_trace(&trace, cfg, HierarchyConfig::default(), port).unwrap();
            head.run_for(k).unwrap();
            let snap = SimSnapshot::from_bytes(head.save_snapshot().as_bytes().to_vec()).unwrap();
            let mut tail = Simulator::resume(&snap).unwrap();
            assert!(
                tail.is_replay(),
                "resume must restore the replay source, not re-execute"
            );
            let resumed = tail.run().unwrap();
            assert_eq!(baseline, resumed, "{port:?} resumed at cycle {k} diverged");
        }
    }
}

#[test]
fn warmup_mismatch_is_a_typed_trace_error() {
    let p = program();
    let trace = CommittedTrace::capture(&p, 100, None).unwrap();
    let cfg = CpuConfig {
        warmup_insts: 0,
        ..CpuConfig::default()
    };
    match Simulator::try_from_trace(
        &trace,
        cfg,
        HierarchyConfig::default(),
        PortConfig::banked(4),
    ) {
        Err(SimError::Trace { detail }) => {
            assert!(detail.contains("warmup"), "{detail}");
        }
        other => panic!("expected SimError::Trace, got {other:?}"),
    }
}

#[test]
fn incomplete_capture_is_a_typed_trace_error() {
    let p = program();
    let trace = CommittedTrace::capture(&p, 0, Some(10)).unwrap();
    assert!(!trace.is_complete());
    match Simulator::try_from_trace(
        &trace,
        CpuConfig::default(),
        HierarchyConfig::default(),
        PortConfig::banked(4),
    ) {
        Err(SimError::Trace { detail }) => {
            assert!(detail.contains("incomplete"), "{detail}");
        }
        other => panic!("expected SimError::Trace, got {other:?}"),
    }
}

/// Corrupted or truncated trace files must surface as typed errors —
/// through both the codec layer and the simulator constructor — never as
/// panics or silently wrong replays.
#[test]
fn corrupt_and_truncated_trace_files_are_rejected() {
    let p = program();
    let trace = CommittedTrace::capture(&p, 0, None).unwrap();
    let good = trace.as_bytes().to_vec();

    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(CommittedTrace::from_bytes(flipped).is_err());

    let truncated = good[..good.len() - 5].to_vec();
    assert!(CommittedTrace::from_bytes(truncated).is_err());

    let mut wrong_magic = good;
    wrong_magic[0] ^= 0xff;
    assert!(CommittedTrace::from_bytes(wrong_magic).is_err());
}
