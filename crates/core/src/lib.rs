//! `hbdc-core`: high-bandwidth data-cache port models.
//!
//! This crate implements the paper's contribution: the four ways of
//! supplying multiple data-cache accesses per cycle to a wide superscalar
//! processor, expressed as *port-arbitration models*. Each cycle, the
//! load/store queue presents its ready memory references in age order; the
//! port model decides which of them the cache structure can service this
//! cycle:
//!
//! * [`IdealPorts`] — true multi-porting: any `p` references per cycle
//!   (paper §3.1, the performance upper bound).
//! * [`ReplicatedPorts`] — `p` identical cache copies: loads use any port,
//!   but a store must broadcast to all copies and therefore proceeds alone
//!   (paper §3.1, the Alpha 21164 scheme).
//! * [`BankedPorts`] — `M` line-interleaved single-ported banks: at most
//!   one reference per bank per cycle (paper §3.2, the R10000 scheme).
//! * [`Lbic`] — the **Locality-Based Interleaved Cache** (paper §5): `M`
//!   banks, each with an `N`-ported single-line buffer and a store queue.
//!   Up to `N` references to the *same line* of a bank combine into one
//!   bank access, so an `MxN` LBIC peaks at `M*N` references per cycle.
//!
//! All models implement the [`PortModel`] trait and are built from a
//! serializable [`PortConfig`]. The [`cost`] module provides the
//! first-order die-area model behind the paper's cost-effectiveness
//! argument. The [`audit`] module re-checks each arbitration round
//! against the models' structural legality rules, and [`FaultInjector`]
//! deliberately corrupts grants to prove those checks fire.
//!
//! # Examples
//!
//! ```
//! use hbdc_core::{MemRequest, PortConfig, PortModel};
//!
//! let mut lbic = PortConfig::Lbic {
//!     banks: 2,
//!     line_ports: 2,
//!     store_queue: 8,
//!     policy: hbdc_core::CombinePolicy::LeadingRequest,
//! }
//! .build(32);
//!
//! // Four references: two to line 0 of bank 0, two to line 0 of bank 1.
//! let ready = vec![
//!     MemRequest::load(0, 0x00),
//!     MemRequest::load(1, 0x08),
//!     MemRequest::load(2, 0x20),
//!     MemRequest::load(3, 0x28),
//! ];
//! let granted = lbic.arbitrate(&ready);
//! assert_eq!(granted, vec![0, 1, 2, 3]); // all four in one cycle
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod banked;
pub mod cost;
mod ideal;
mod inject;
mod lbic;
mod model;
pub mod relations;
mod replicated;
mod request;
mod stats;

pub use audit::Violation;
pub use banked::BankedPorts;
pub use ideal::IdealPorts;
pub use inject::{FaultClass, FaultInjector};
pub use lbic::{CombinePolicy, Lbic};
pub use model::{PortConfig, PortModel};
pub use replicated::ReplicatedPorts;
pub use request::MemRequest;
pub use stats::ArbStats;
