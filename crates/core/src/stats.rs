//! Arbitration statistics shared by all port models.

use hbdc_snap::{SnapError, StateReader, StateWriter};
use hbdc_stats::Histogram;

/// Every model-specific counter name any bundled [`PortModel`] can bump.
/// Serialized counters are interned against this table on load so the
/// restored `extra` list holds the same `&'static str`s a live run does.
const EXTRA_NAMES: [&str; 6] = [
    "bank_conflicts",
    "combined",
    "store_serializations",
    "port_exhaustion",
    "sq_full_stalls",
    "sq_drains",
];

/// Accounting collected by every [`PortModel`](crate::PortModel).
///
/// # Examples
///
/// ```
/// use hbdc_core::{MemRequest, PortConfig, PortModel};
///
/// let mut m = PortConfig::Ideal { ports: 2 }.build(32);
/// m.arbitrate(&[MemRequest::load(0, 0), MemRequest::load(1, 8), MemRequest::load(2, 64)]);
/// m.tick();
/// let s = m.stats();
/// assert_eq!(s.offered(), 3);
/// assert_eq!(s.granted(), 2);
/// assert_eq!(s.cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ArbStats {
    cycles: u64,
    offered: u64,
    granted: u64,
    grants_per_cycle: Histogram,
    extra: Vec<(&'static str, u64)>,
}

impl ArbStats {
    /// Creates zeroed stats for a model whose peak grant rate is
    /// `peak_per_cycle` (sizes the per-cycle histogram).
    pub fn new(peak_per_cycle: usize) -> Self {
        Self {
            cycles: 0,
            offered: 0,
            granted: 0,
            grants_per_cycle: Histogram::new("grants/cycle", peak_per_cycle),
            extra: Vec::new(),
        }
    }

    /// Records one arbitration round.
    pub(crate) fn record_round(&mut self, offered: usize, granted: usize) {
        self.offered += offered as u64;
        self.granted += granted as u64;
        if offered > 0 {
            self.grants_per_cycle.record(granted);
        }
    }

    /// Records a cycle boundary.
    pub(crate) fn record_tick(&mut self) {
        self.cycles += 1;
    }

    /// Records `k` consecutive cycle boundaries at once, equivalent to
    /// `k` calls to [`record_tick`](Self::record_tick). Used by models
    /// whose per-cycle work is pure accounting when the simulator skips
    /// an idle span.
    pub(crate) fn record_ticks(&mut self, k: u64) {
        self.cycles += k;
    }

    /// Bumps a model-specific named counter.
    pub(crate) fn bump(&mut self, name: &'static str, by: u64) {
        match self.extra.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.extra.push((name, by)),
        }
    }

    /// Cycles ticked.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total requests offered across all rounds.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total requests granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests that were offered but not granted (conflict/stall events).
    pub fn stalled(&self) -> u64 {
        self.offered - self.granted
    }

    /// Histogram of grants per non-empty arbitration round.
    pub fn grants_per_cycle(&self) -> &Histogram {
        &self.grants_per_cycle
    }

    /// Model-specific counters, e.g. `("combined", n)` for the LBIC or
    /// `("store_serializations", n)` for the replicated cache.
    pub fn extra(&self) -> &[(&'static str, u64)] {
        &self.extra
    }

    /// Looks up a model-specific counter by name (0 if absent).
    pub fn extra_counter(&self, name: &str) -> u64 {
        self.extra
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Serializes all counters and the grants-per-cycle histogram. Extra
    /// counter names go in by value and are interned on load.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.offered);
        w.put_u64(self.granted);
        self.grants_per_cycle.save_state(w);
        w.put_usize(self.extra.len());
        for (name, v) in &self.extra {
            w.put_str(name);
            w.put_u64(*v);
        }
    }

    /// Restores stats written by [`save_state`](Self::save_state) into
    /// stats sized for the same peak grant rate.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on an extra-counter name no bundled model
    /// emits or a histogram range mismatch, or any decode error.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.cycles = r.get_u64()?;
        self.offered = r.get_u64()?;
        self.granted = r.get_u64()?;
        self.grants_per_cycle.load_state(r)?;
        let n = r.get_usize()?;
        self.extra.clear();
        for _ in 0..n {
            let name = r.get_str()?;
            let value = r.get_u64()?;
            let interned = EXTRA_NAMES
                .iter()
                .copied()
                .find(|known| *known == name)
                .ok_or_else(|| {
                    SnapError::Corrupt(format!("unknown arbitration counter `{name}`"))
                })?;
            self.extra.push((interned, value));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_accumulate() {
        let mut s = ArbStats::new(4);
        s.record_round(3, 2);
        s.record_round(1, 1);
        s.record_round(0, 0); // empty rounds don't pollute the histogram
        assert_eq!(s.offered(), 4);
        assert_eq!(s.granted(), 3);
        assert_eq!(s.stalled(), 1);
        assert_eq!(s.grants_per_cycle().total(), 2);
    }

    #[test]
    fn extra_counters() {
        let mut s = ArbStats::new(2);
        s.bump("combined", 3);
        s.bump("combined", 2);
        s.bump("sq_full", 1);
        assert_eq!(s.extra_counter("combined"), 5);
        assert_eq!(s.extra_counter("sq_full"), 1);
        assert_eq!(s.extra_counter("missing"), 0);
        assert_eq!(s.extra().len(), 2);
    }

    #[test]
    fn ticks_count_cycles() {
        let mut s = ArbStats::new(1);
        s.record_tick();
        s.record_tick();
        assert_eq!(s.cycles(), 2);
    }

    #[test]
    fn bulk_ticks_match_repeated_ticks() {
        let mut bulk = ArbStats::new(1);
        let mut ticked = ArbStats::new(1);
        bulk.record_ticks(7);
        for _ in 0..7 {
            ticked.record_tick();
        }
        assert_eq!(bulk.cycles(), ticked.cycles());
    }

    #[test]
    fn state_roundtrip_interns_extra_names() {
        let mut s = ArbStats::new(4);
        s.record_round(3, 2);
        s.record_tick();
        s.bump("bank_conflicts", 5);
        s.bump("combined", 2);
        let mut w = StateWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = ArbStats::new(4);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.cycles(), 1);
        assert_eq!(restored.offered(), 3);
        assert_eq!(restored.granted(), 2);
        assert_eq!(restored.extra_counter("bank_conflicts"), 5);
        assert_eq!(restored.extra_counter("combined"), 2);
        assert_eq!(restored.grants_per_cycle().total(), 1);
    }

    #[test]
    fn load_rejects_unknown_extra_counter() {
        let mut w = StateWriter::new();
        w.put_u64(0); // cycles
        w.put_u64(0); // offered
        w.put_u64(0); // granted
        Histogram::new("grants/cycle", 2).save_state(&mut w);
        w.put_usize(1);
        w.put_str("made_up_counter");
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut s = ArbStats::new(2);
        assert!(matches!(
            s.load_state(&mut StateReader::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }
}
