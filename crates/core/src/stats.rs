//! Arbitration statistics shared by all port models.

use hbdc_stats::Histogram;

/// Accounting collected by every [`PortModel`](crate::PortModel).
///
/// # Examples
///
/// ```
/// use hbdc_core::{MemRequest, PortConfig, PortModel};
///
/// let mut m = PortConfig::Ideal { ports: 2 }.build(32);
/// m.arbitrate(&[MemRequest::load(0, 0), MemRequest::load(1, 8), MemRequest::load(2, 64)]);
/// m.tick();
/// let s = m.stats();
/// assert_eq!(s.offered(), 3);
/// assert_eq!(s.granted(), 2);
/// assert_eq!(s.cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ArbStats {
    cycles: u64,
    offered: u64,
    granted: u64,
    grants_per_cycle: Histogram,
    extra: Vec<(&'static str, u64)>,
}

impl ArbStats {
    /// Creates zeroed stats for a model whose peak grant rate is
    /// `peak_per_cycle` (sizes the per-cycle histogram).
    pub fn new(peak_per_cycle: usize) -> Self {
        Self {
            cycles: 0,
            offered: 0,
            granted: 0,
            grants_per_cycle: Histogram::new("grants/cycle", peak_per_cycle),
            extra: Vec::new(),
        }
    }

    /// Records one arbitration round.
    pub(crate) fn record_round(&mut self, offered: usize, granted: usize) {
        self.offered += offered as u64;
        self.granted += granted as u64;
        if offered > 0 {
            self.grants_per_cycle.record(granted);
        }
    }

    /// Records a cycle boundary.
    pub(crate) fn record_tick(&mut self) {
        self.cycles += 1;
    }

    /// Bumps a model-specific named counter.
    pub(crate) fn bump(&mut self, name: &'static str, by: u64) {
        match self.extra.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.extra.push((name, by)),
        }
    }

    /// Cycles ticked.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total requests offered across all rounds.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total requests granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests that were offered but not granted (conflict/stall events).
    pub fn stalled(&self) -> u64 {
        self.offered - self.granted
    }

    /// Histogram of grants per non-empty arbitration round.
    pub fn grants_per_cycle(&self) -> &Histogram {
        &self.grants_per_cycle
    }

    /// Model-specific counters, e.g. `("combined", n)` for the LBIC or
    /// `("store_serializations", n)` for the replicated cache.
    pub fn extra(&self) -> &[(&'static str, u64)] {
        &self.extra
    }

    /// Looks up a model-specific counter by name (0 if absent).
    pub fn extra_counter(&self, name: &str) -> u64 {
        self.extra
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_accumulate() {
        let mut s = ArbStats::new(4);
        s.record_round(3, 2);
        s.record_round(1, 1);
        s.record_round(0, 0); // empty rounds don't pollute the histogram
        assert_eq!(s.offered(), 4);
        assert_eq!(s.granted(), 3);
        assert_eq!(s.stalled(), 1);
        assert_eq!(s.grants_per_cycle().total(), 2);
    }

    #[test]
    fn extra_counters() {
        let mut s = ArbStats::new(2);
        s.bump("combined", 3);
        s.bump("combined", 2);
        s.bump("sq_full", 1);
        assert_eq!(s.extra_counter("combined"), 5);
        assert_eq!(s.extra_counter("sq_full"), 1);
        assert_eq!(s.extra_counter("missing"), 0);
        assert_eq!(s.extra().len(), 2);
    }

    #[test]
    fn ticks_count_cycles() {
        let mut s = ArbStats::new(1);
        s.record_tick();
        s.record_tick();
        assert_eq!(s.cycles(), 2);
    }
}
