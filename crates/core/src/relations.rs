//! Per-model relation predicates: the partial order between port
//! configurations that the paper's conclusions rest on.
//!
//! The differential fuzzer (`hbdc-fuzz`) consults these predicates to
//! decide which metamorphic orderings to assert on a generated program:
//! an ideal true-multi-ported cache with enough ports is an *upper bound*
//! for any realistic design it covers (Tables 3/4 of the paper), and
//! every configuration whose peak grant width is one is cycle-equivalent
//! to every other such configuration. Keeping the predicates here — next
//! to the models — means a new [`PortConfig`] variant extends the oracle
//! by extending these functions, with the unit tests below pinning the
//! existing order.

use crate::model::PortConfig;

/// The maximum number of references the configuration can grant in one
/// cycle: its peak bandwidth in accesses/cycle.
///
/// * Ideal and replicated: one grant per port.
/// * Banked: one grant per (single-ported) bank.
/// * LBIC: each of the `banks` banks has `line_ports` line ports, and a
///   combined group occupies one line port — so the hard ceiling is
///   `banks × line_ports` grants of distinct groups per cycle.
pub fn peak_ports(cfg: &PortConfig) -> usize {
    match *cfg {
        PortConfig::Ideal { ports } => ports,
        PortConfig::Replicated { ports } => ports,
        PortConfig::Banked { banks, .. } => banks as usize,
        PortConfig::Lbic {
            banks, line_ports, ..
        } => banks as usize * line_ports,
    }
}

/// Whether configuration `a` must perform at least as well as `b` —
/// cycles(a) ≤ cycles(b) + [`anomaly_allowance`] on every program: true
/// only for the orderings the paper's model semantics guarantee, i.e. an
/// ideal cache whose port count covers `b`'s peak bandwidth. An ideal
/// cache has no placement, banking, or combining constraints, so any
/// grant schedule `b` can produce is available to `a`.
///
/// The claim is bounded, not cycle-exact, because the LSQ arbitrates in
/// *age order*, and greedy age-ordered scheduling is subject to Graham's
/// timing anomaly: a wider cache can spend all its ports on older
/// references while a narrower, bank-constrained one is forced to issue
/// a younger reference that happens to sit on the critical path. Nine
/// instructions suffice to exhibit this (four same-bank loads ahead of an
/// other-bank `fld` feeding the final `fmul`: banked issues the `fld` in
/// cycle 3 because its bank is free; ideal age-orders it behind the
/// loads and finishes one cycle later). See DESIGN.md §13.
pub fn must_dominate(a: &PortConfig, b: &PortConfig) -> bool {
    match *a {
        PortConfig::Ideal { ports } => ports >= peak_ports(b),
        // Realistic designs constrain each other in incomparable ways
        // (bank placement vs. broadcast serialization vs. combining), so
        // no per-program guarantee is claimed between them.
        _ => false,
    }
}

/// Slack the ordering relations grant a dominating configuration over a
/// `base`-cycle run. Scheduling anomalies compound: a loop whose body
/// contains one anomaly pattern slips ~1 cycle *per iteration*, so the
/// noise is proportional to the run (differential fuzzing measured up to
/// ~9% across thousands of generated programs). Genuine bandwidth-model
/// bugs — a port model granting less (or more) than its structure allows
/// — shift conflict-heavy runs by integer factors, so a 25% + constant
/// band separates the two with a wide margin. Bit-level sensitivity is
/// the job of the *exact* relations (single-port equivalence, replicated
/// load-only identity, and the mode-pair bit identities), not of the
/// orderings.
pub fn anomaly_allowance(base_cycles: u64) -> u64 {
    16 + base_cycles / 4
}

/// Whether the configuration degenerates to a single-ported cache that
/// grants exactly the oldest ready reference each cycle. All such
/// configurations are cycle-equivalent — the fuzzer checks them for
/// *exact* cycle equality, not just ordering.
///
/// An LBIC with one bank and one line port is **not** in this class: its
/// per-bank store queue decouples stores from the arbitration round, so
/// its schedule legitimately differs from a plain single port.
pub fn single_port_equivalent(cfg: &PortConfig) -> bool {
    matches!(
        *cfg,
        PortConfig::Ideal { ports: 1 }
            | PortConfig::Replicated { ports: 1 }
            | PortConfig::Banked { banks: 1, .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PortConfig;

    #[test]
    fn peak_matches_model_shape() {
        assert_eq!(peak_ports(&PortConfig::Ideal { ports: 4 }), 4);
        assert_eq!(peak_ports(&PortConfig::Replicated { ports: 2 }), 2);
        assert_eq!(peak_ports(&PortConfig::banked(8)), 8);
        assert_eq!(peak_ports(&PortConfig::lbic(4, 2)), 8);
    }

    #[test]
    fn ideal_dominates_everything_it_covers() {
        let i4 = PortConfig::Ideal { ports: 4 };
        assert!(must_dominate(&i4, &PortConfig::Replicated { ports: 4 }));
        assert!(must_dominate(&i4, &PortConfig::banked(4)));
        assert!(must_dominate(&i4, &PortConfig::lbic(4, 1)));
        assert!(must_dominate(&i4, &PortConfig::Ideal { ports: 2 }));
        // Not enough ports to cover the peak: no guarantee.
        assert!(!must_dominate(&i4, &PortConfig::banked(8)));
        assert!(!must_dominate(&i4, &PortConfig::lbic(4, 2)));
    }

    #[test]
    fn realistic_models_are_incomparable() {
        let b4 = PortConfig::banked(4);
        let r4 = PortConfig::Replicated { ports: 4 };
        assert!(!must_dominate(&b4, &r4));
        assert!(!must_dominate(&r4, &b4));
        assert!(!must_dominate(&b4, &PortConfig::Ideal { ports: 1 }));
    }

    #[test]
    fn allowance_is_proportional_with_a_floor() {
        assert_eq!(anomaly_allowance(0), 16);
        assert_eq!(anomaly_allowance(200), 66);
        assert_eq!(anomaly_allowance(100_000), 25_016);
    }

    #[test]
    fn single_port_class_is_exact() {
        assert!(single_port_equivalent(&PortConfig::Ideal { ports: 1 }));
        assert!(single_port_equivalent(&PortConfig::Replicated { ports: 1 }));
        assert!(single_port_equivalent(&PortConfig::banked(1)));
        assert!(!single_port_equivalent(&PortConfig::Ideal { ports: 2 }));
        assert!(!single_port_equivalent(&PortConfig::lbic(1, 1)));
    }
}
