//! First-order die-area cost model for the port organizations.
//!
//! The paper argues costs qualitatively: ideal multi-porting's cell area
//! grows quadratically with ports ("increasing capacitance and resistance
//! load on each access path"), replication pays the full array once per
//! port plus broadcast wiring, banking pays a crossbar that "grows
//! superlinearly as the banks increase", and the LBIC adds only "the
//! multi-ported line buffer per bank, the necessary hit signal gates, and
//! multiplexors." It also quotes one calibration point: "a large 2-port
//! replicated cache costs about twice the 2x2 LBIC in die area."
//!
//! This module turns those statements into an explicit, documented model
//! in units of one single-ported data array (= 1.0):
//!
//! * **Ideal(p)** — multi-ported SRAM cells: each extra port adds a
//!   wordline/bitline pair in both dimensions, so array area scales as
//!   `((1+p)/2)²` (1.0 at one port, ~p²/4 asymptotically).
//! * **Replicated(p)** — `p` full single-ported arrays plus store
//!   broadcast wiring proportional to `p`.
//! * **Banked(m)** — one array's worth of SRAM split into banks, plus a
//!   crossbar that grows with `m²` and per-bank decode overhead with `m`.
//! * **LBIC(m,n)** — the banked cost plus, per bank, an `n`-ported
//!   single-line buffer (a register-file-class structure, quadratic in
//!   `n` but tiny), a store queue linear in its depth, and offset muxes
//!   linear in `n`.
//!
//! The constants are chosen to (a) respect those growth laws and (b) hit
//! the paper's 2x calibration quote within ~15%. Absolute silicon areas
//! are out of scope — only *relative* cost-effectiveness (IPC per area)
//! is meaningful, which is what the `cost_effectiveness` harness reports.

use crate::model::PortConfig;

/// Crossbar area per bank², in base-array units.
const CROSSBAR_PER_BANK2: f64 = 0.015;
/// Per-bank decoder/sense overhead.
const BANK_OVERHEAD: f64 = 0.02;
/// Store-broadcast wiring per replicated port.
const BROADCAST_PER_PORT: f64 = 0.05;
/// Line-buffer area per bank per line-port² (register-file scaling).
const LINE_BUFFER_PER_PORT2: f64 = 0.005;
/// Store-queue area per bank per entry.
const STORE_QUEUE_PER_ENTRY: f64 = 0.002;
/// Offset mux / hit-gate area per bank per line port.
const MUX_PER_PORT: f64 = 0.01;

/// Estimated die area of a port organization, in units of one
/// single-ported data array of the same capacity.
///
/// # Examples
///
/// ```
/// use hbdc_core::{cost, PortConfig};
///
/// let single = cost::area(PortConfig::Ideal { ports: 1 });
/// assert!((single - 1.0).abs() < 1e-9);
///
/// // The paper's calibration quote: a 2-port replicated cache costs
/// // about twice the 2x2 LBIC.
/// let repl2 = cost::area(PortConfig::Replicated { ports: 2 });
/// let lbic22 = cost::area(PortConfig::lbic(2, 2));
/// let ratio = repl2 / lbic22;
/// assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
/// ```
pub fn area(config: PortConfig) -> f64 {
    match config {
        PortConfig::Ideal { ports } => {
            let p = ports as f64;
            ((1.0 + p) / 2.0) * ((1.0 + p) / 2.0)
        }
        PortConfig::Replicated { ports } => {
            let p = ports as f64;
            p + BROADCAST_PER_PORT * p
        }
        PortConfig::Banked { banks, .. } => banked_area(banks),
        PortConfig::Lbic {
            banks,
            line_ports,
            store_queue,
            ..
        } => {
            let m = banks as f64;
            let n = line_ports as f64;
            banked_area(banks)
                + m * (LINE_BUFFER_PER_PORT2 * n * n
                    + STORE_QUEUE_PER_ENTRY * store_queue as f64
                    + MUX_PER_PORT * n)
        }
    }
}

fn banked_area(banks: u32) -> f64 {
    let m = banks as f64;
    1.0 + CROSSBAR_PER_BANK2 * m * m + BANK_OVERHEAD * m
}

/// Peak data references per cycle of a configuration (the denominator of
/// a bandwidth-per-area figure of merit).
pub fn peak_bandwidth(config: PortConfig) -> usize {
    match config {
        PortConfig::Ideal { ports } | PortConfig::Replicated { ports } => ports,
        PortConfig::Banked { banks, .. } => banks as usize,
        PortConfig::Lbic {
            banks, line_ports, ..
        } => banks as usize * line_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_is_the_unit() {
        assert!((area(PortConfig::Ideal { ports: 1 }) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_grows_quadratically() {
        let a4 = area(PortConfig::Ideal { ports: 4 });
        let a8 = area(PortConfig::Ideal { ports: 8 });
        let a16 = area(PortConfig::Ideal { ports: 16 });
        assert!(a8 / a4 > 2.5, "doubling ports should ~3-4x area");
        assert!(a16 / a8 > 2.5);
        assert!(a16 > 50.0, "16 ideal ports must be prohibitive: {a16}");
    }

    #[test]
    fn replication_is_linear() {
        let a2 = area(PortConfig::Replicated { ports: 2 });
        let a4 = area(PortConfig::Replicated { ports: 4 });
        assert!((a4 / a2 - 2.0).abs() < 0.01);
    }

    #[test]
    fn banking_is_the_cheapest_multiport() {
        for n in [2u32, 4, 8, 16] {
            let bank = area(PortConfig::banked(n));
            let repl = area(PortConfig::Replicated { ports: n as usize });
            let ideal = area(PortConfig::Ideal { ports: n as usize });
            assert!(bank < repl, "{n}: bank {bank} vs repl {repl}");
            assert!(bank < ideal, "{n}: bank {bank} vs ideal {ideal}");
        }
    }

    #[test]
    fn lbic_costs_slightly_more_than_banked() {
        for (m, n) in [(2u32, 2usize), (4, 2), (4, 4), (8, 4)] {
            let bank = area(PortConfig::banked(m));
            let lbic = area(PortConfig::lbic(m, n));
            assert!(lbic > bank);
            assert!(
                lbic < bank * 1.6,
                "{m}x{n}: LBIC must stay near banked cost ({lbic} vs {bank})"
            );
        }
    }

    #[test]
    fn papers_calibration_quote_holds() {
        // "A large 2-port replicated cache costs about twice the 2x2 LBIC."
        let ratio = area(PortConfig::Replicated { ports: 2 }) / area(PortConfig::lbic(2, 2));
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lbic_peak_bandwidth_per_area_dominates() {
        // The headline cost-effectiveness argument: peak refs/cycle per
        // area unit. The 4x4 LBIC must beat ideal-4, repl-4, and bank-4.
        let per_area = |c: PortConfig| peak_bandwidth(c) as f64 / area(c);
        let lbic = per_area(PortConfig::lbic(4, 4));
        assert!(lbic > per_area(PortConfig::Ideal { ports: 4 }));
        assert!(lbic > per_area(PortConfig::Replicated { ports: 4 }));
        assert!(lbic > per_area(PortConfig::banked(4)));
    }

    #[test]
    fn peak_bandwidths() {
        assert_eq!(peak_bandwidth(PortConfig::Ideal { ports: 7 }), 7);
        assert_eq!(peak_bandwidth(PortConfig::Replicated { ports: 3 }), 3);
        assert_eq!(peak_bandwidth(PortConfig::banked(8)), 8);
        assert_eq!(peak_bandwidth(PortConfig::lbic(4, 4)), 16);
    }
}
