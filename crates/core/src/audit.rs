//! Per-cycle invariant auditing for port-arbitration models.
//!
//! Each [`PortModel`](crate::PortModel) publishes its structural legality
//! rules through [`PortModel::audit_round`](crate::PortModel::audit_round):
//! given one cycle's age-ordered ready list and the grant set the model
//! produced, the audit recomputes — independently of the arbitration code
//! path — whether that grant set is legal. The checks are pure observers:
//! they never mutate model state and never change what is granted, so an
//! audited run is bit-identical to an unaudited one.
//!
//! The generic checks here apply to every model; model-specific rules
//! (one grant per bank, same-line combining bounds, store-broadcast
//! exclusivity) live with the models themselves.

use crate::request::MemRequest;

/// One invariant violation observed during a single arbitration round.
///
/// # Examples
///
/// ```
/// use hbdc_core::audit::Violation;
///
/// let v = Violation::new("banked-double-grant", "bank 3 granted twice");
/// assert_eq!(v.rule, "banked-double-grant");
/// assert!(v.to_string().contains("bank 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable rule identifier, e.g. `"lbic-cross-line"`.
    pub rule: &'static str,
    /// Human-readable description of the specific violation.
    pub detail: String,
}

impl Violation {
    /// Creates a violation record.
    pub fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        Self {
            rule,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Checks the invariants common to every port model: grant indices are
/// strictly increasing, within the ready list, and no more numerous than
/// `peak` (the model's peak references per cycle). Violations are appended
/// to `out`.
pub fn check_generic(
    peak: usize,
    ready: &[MemRequest],
    granted: &[usize],
    out: &mut Vec<Violation>,
) {
    if granted.len() > peak {
        out.push(Violation::new(
            "grant-peak-exceeded",
            format!("{} grants exceed the model peak of {peak}", granted.len()),
        ));
    }
    for (k, &g) in granted.iter().enumerate() {
        if g >= ready.len() {
            out.push(Violation::new(
                "grant-out-of-range",
                format!("granted index {g} but only {} ready", ready.len()),
            ));
            continue;
        }
        if k > 0 && granted[k - 1] >= g {
            out.push(Violation::new(
                "grant-order",
                format!(
                    "grant indices not strictly increasing: {} then {g}",
                    granted[k - 1]
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(n: usize) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::load(i as u64, i as u64 * 8))
            .collect()
    }

    #[test]
    fn clean_round_has_no_findings() {
        let mut out = Vec::new();
        check_generic(4, &loads(3), &[0, 1, 2], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn peak_overflow_detected() {
        let mut out = Vec::new();
        check_generic(2, &loads(3), &[0, 1, 2], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "grant-peak-exceeded");
    }

    #[test]
    fn out_of_range_detected() {
        let mut out = Vec::new();
        check_generic(4, &loads(2), &[0, 5], &mut out);
        assert!(out.iter().any(|v| v.rule == "grant-out-of-range"));
    }

    #[test]
    fn duplicate_and_misordered_grants_detected() {
        let mut out = Vec::new();
        check_generic(4, &loads(3), &[1, 1], &mut out);
        assert!(out.iter().any(|v| v.rule == "grant-order"));
        out.clear();
        check_generic(4, &loads(3), &[2, 0], &mut out);
        assert!(out.iter().any(|v| v.rule == "grant-order"));
    }
}
