//! Traditional multi-banking (interleaved cache).

use hbdc_mem::BankMapper;
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::audit::{self, Violation};
use crate::model::PortModel;
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// A traditional multi-bank cache: `M` line-interleaved, single-ported
/// banks behind a crossbar (paper §3.2, Figure 2b; the MIPS R10000
/// scheme).
///
/// Each bank services at most one reference per cycle; references are
/// granted oldest-first, and a reference whose bank is already taken this
/// cycle stalls — a *bank conflict*. Bank selection is bit selection on
/// the line address (Figure 2c), the paper's choice; alternative mappers
/// are available through [`BankedPorts::with_mapper`] for the
/// bank-selection ablation.
///
/// # Examples
///
/// ```
/// use hbdc_core::{BankedPorts, MemRequest, PortModel};
///
/// let mut m = BankedPorts::new(2, 32);
/// let ready = vec![
///     MemRequest::load(0, 0x00), // bank 0
///     MemRequest::load(1, 0x20), // bank 1
///     MemRequest::load(2, 0x40), // bank 0 again: conflict
/// ];
/// assert_eq!(m.arbitrate(&ready), vec![0, 1]);
/// ```
#[derive(Debug)]
pub struct BankedPorts {
    mapper: BankMapper,
    taken: Vec<bool>, // scratch, one per bank
    stats: ArbStats,
}

impl BankedPorts {
    /// Creates a multi-bank model with bit-selection mapping.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two (and at least 1).
    pub fn new(banks: u32, line_size: u64) -> Self {
        Self::with_mapper(BankMapper::bit_select(banks, line_size))
    }

    /// Creates a multi-bank model with an explicit bank-selection function.
    pub fn with_mapper(mapper: BankMapper) -> Self {
        let banks = mapper.banks() as usize;
        Self {
            mapper,
            taken: vec![false; banks],
            stats: ArbStats::new(banks),
        }
    }

    /// The bank-selection function in use.
    pub fn mapper(&self) -> &BankMapper {
        &self.mapper
    }
}

impl PortModel for BankedPorts {
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        granted.clear();
        self.taken.iter_mut().for_each(|t| *t = false);
        let banks = self.taken.len();
        let mut conflicts = 0u64;
        for (i, r) in ready.iter().enumerate() {
            // Once every bank is claimed no later request can win, so the
            // rest of the (age-ordered) ready list is all conflicts —
            // counting it wholesale keeps the round O(banks) even when
            // ports saturate and the ready list grows long.
            if granted.len() == banks {
                conflicts += (ready.len() - i) as u64;
                break;
            }
            let bank = self.mapper.bank_of(r.addr) as usize;
            if self.taken[bank] {
                conflicts += 1;
            } else {
                self.taken[bank] = true;
                granted.push(i);
            }
        }
        if conflicts > 0 {
            self.stats.bump("bank_conflicts", conflicts);
        }
        self.stats.record_round(ready.len(), granted.len());
    }

    fn tick(&mut self) {
        self.stats.record_tick();
    }

    // `taken` is per-round scratch, so an idle cycle only advances the
    // cycle counter and skipped spans can be accounted in bulk.
    fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }

    fn skip_idle(&mut self, k: u64) {
        self.stats.record_ticks(k);
    }

    fn peak_per_cycle(&self) -> usize {
        self.mapper.banks() as usize
    }

    fn label(&self) -> String {
        format!("Bank-{}", self.mapper.banks())
    }

    fn stats(&self) -> &ArbStats {
        &self.stats
    }

    // `taken` is per-round scratch (cleared at the top of every
    // arbitration), so the statistics are the only persistent state.
    fn save_state(&self, w: &mut StateWriter) {
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.taken.iter_mut().for_each(|t| *t = false);
        self.stats.load_state(r)
    }

    /// Banked legality: at most one grant per bank per cycle, and the
    /// grant must be the *oldest* ready reference mapping to that bank
    /// (nothing but an earlier same-bank reference can deny a request).
    fn audit_round(&self, ready: &[MemRequest], granted: &[usize], out: &mut Vec<Violation>) {
        audit::check_generic(self.peak_per_cycle(), ready, granted, out);
        let banks = self.mapper.banks() as usize;
        let mut oldest_ready: Vec<Option<usize>> = vec![None; banks];
        for (i, r) in ready.iter().enumerate() {
            let b = self.mapper.bank_of(r.addr) as usize;
            oldest_ready[b].get_or_insert(i);
        }
        let mut granted_in: Vec<Option<usize>> = vec![None; banks];
        for &g in granted {
            let Some(r) = ready.get(g) else { continue };
            let b = self.mapper.bank_of(r.addr) as usize;
            match granted_in[b] {
                Some(prev) => out.push(Violation::new(
                    "banked-double-grant",
                    format!("bank {b} granted twice in one cycle (indices {prev} and {g})"),
                )),
                None => {
                    granted_in[b] = Some(g);
                    if oldest_ready[b] != Some(g) {
                        out.push(Violation::new(
                            "banked-age-priority",
                            format!(
                                "bank {b}: granted index {g} but oldest ready is {:?}",
                                oldest_ready[b]
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_banks_all_proceed() {
        let mut m = BankedPorts::new(4, 32);
        let ready: Vec<MemRequest> = (0..4).map(|i| MemRequest::load(i, i * 32)).collect();
        assert_eq!(m.arbitrate(&ready), vec![0, 1, 2, 3]);
        assert_eq!(m.stats().extra_counter("bank_conflicts"), 0);
    }

    #[test]
    fn same_bank_conflicts_serialize() {
        let mut m = BankedPorts::new(4, 32);
        // Same line => same bank; different line but stride 4*32 => same bank.
        let ready = vec![
            MemRequest::load(0, 0x00),
            MemRequest::load(1, 0x08), // same line as #0: still a conflict here!
            MemRequest::load(2, 0x80), // 4 lines later: same bank 0
            MemRequest::load(3, 0x20), // bank 1
        ];
        assert_eq!(m.arbitrate(&ready), vec![0, 3]);
        assert_eq!(m.stats().extra_counter("bank_conflicts"), 2);
    }

    #[test]
    fn stores_use_banks_like_loads() {
        let mut m = BankedPorts::new(2, 32);
        let ready = vec![MemRequest::store(0, 0x00), MemRequest::store(1, 0x20)];
        assert_eq!(m.arbitrate(&ready), vec![0, 1]);
    }

    #[test]
    fn age_priority_within_bank() {
        let mut m = BankedPorts::new(2, 32);
        let ready = vec![
            MemRequest::load(9, 0x40), // bank 0, oldest
            MemRequest::load(3, 0x00), // bank 0, younger — loses
        ];
        assert_eq!(m.arbitrate(&ready), vec![0]);
    }

    #[test]
    fn single_bank_is_single_port() {
        let mut m = BankedPorts::new(1, 32);
        let ready: Vec<MemRequest> = (0..3).map(|i| MemRequest::load(i, i * 64)).collect();
        assert_eq!(m.arbitrate(&ready), vec![0]);
        assert_eq!(m.peak_per_cycle(), 1);
    }

    #[test]
    fn scratch_state_resets_between_cycles() {
        let mut m = BankedPorts::new(2, 32);
        let ready = vec![MemRequest::load(0, 0x00)];
        assert_eq!(m.arbitrate(&ready), vec![0]);
        m.tick();
        // Bank 0 must be free again next cycle.
        assert_eq!(m.arbitrate(&ready), vec![0]);
    }

    #[test]
    fn label() {
        assert_eq!(BankedPorts::new(16, 32).label(), "Bank-16");
    }
}
