//! Multi-porting by replication.

use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::audit::{self, Violation};
use crate::model::PortModel;
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// Multi-ported cache built from `p` identical single-ported copies
/// (paper §3.1; the DEC Alpha 21164 scheme).
///
/// Loads may use any copy, so up to `p` loads proceed per cycle. A store,
/// however, "must be sent to all the caches simultaneously" to keep the
/// copies coherent — it occupies every port and therefore "cannot be sent
/// to the cache in parallel with any other access."
///
/// Arbitration walks the ready list oldest-first: if the oldest ready
/// reference is a store, it gets the whole cycle; otherwise loads are
/// granted in age order, stopping at the first store (which will become
/// grantable once it is oldest — stores commit in order anyway).
///
/// # Examples
///
/// ```
/// use hbdc_core::{MemRequest, PortModel, ReplicatedPorts};
///
/// let mut m = ReplicatedPorts::new(2);
/// // Oldest is a store: it goes alone.
/// let g = m.arbitrate(&[MemRequest::store(0, 0), MemRequest::load(1, 64)]);
/// assert_eq!(g, vec![0]);
/// ```
#[derive(Debug)]
pub struct ReplicatedPorts {
    ports: usize,
    stats: ArbStats,
}

impl ReplicatedPorts {
    /// Creates a replicated model with `ports` cache copies.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "port count must be at least 1");
        Self {
            ports,
            stats: ArbStats::new(ports),
        }
    }
}

impl PortModel for ReplicatedPorts {
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        granted.clear();
        if ready.is_empty() {
            // nothing to grant
        } else if ready[0].is_store {
            // Broadcast store: exclusive use of all copies this cycle.
            self.stats.bump("store_serializations", 1);
            granted.push(0);
        } else {
            for (i, r) in ready.iter().enumerate() {
                if r.is_store {
                    // A younger store blocks nothing ahead of it but
                    // cannot itself launch beside the loads.
                    break;
                }
                granted.push(i);
                if granted.len() == self.ports {
                    break;
                }
            }
        }
        self.stats.record_round(ready.len(), granted.len());
    }

    fn tick(&mut self) {
        self.stats.record_tick();
    }

    // Stateless between rounds: an idle cycle only advances the cycle
    // counter, so skipped spans can be accounted in bulk.
    fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }

    fn skip_idle(&mut self, k: u64) {
        self.stats.record_ticks(k);
    }

    fn peak_per_cycle(&self) -> usize {
        self.ports
    }

    fn label(&self) -> String {
        format!("Repl-{}", self.ports)
    }

    fn stats(&self) -> &ArbStats {
        &self.stats
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.stats.load_state(r)
    }

    /// Replication legality: a store broadcasts to every cache copy, so a
    /// granted store must be the *only* grant of its cycle.
    fn audit_round(&self, ready: &[MemRequest], granted: &[usize], out: &mut Vec<Violation>) {
        audit::check_generic(self.peak_per_cycle(), ready, granted, out);
        if granted.len() > 1 {
            for &g in granted {
                if ready.get(g).is_some_and(|r| r.is_store) {
                    out.push(Violation::new(
                        "repl-store-overlap",
                        format!(
                            "store at index {g} granted alongside {} other grants \
                             (broadcast stores are exclusive)",
                            granted.len() - 1
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_fill_all_ports() {
        let mut m = ReplicatedPorts::new(4);
        let ready: Vec<MemRequest> = (0..6).map(|i| MemRequest::load(i, i * 8)).collect();
        assert_eq!(m.arbitrate(&ready), vec![0, 1, 2, 3]);
    }

    #[test]
    fn oldest_store_goes_alone() {
        let mut m = ReplicatedPorts::new(4);
        let ready = vec![
            MemRequest::store(0, 0),
            MemRequest::load(1, 8),
            MemRequest::load(2, 16),
        ];
        assert_eq!(m.arbitrate(&ready), vec![0]);
        assert_eq!(m.stats().extra_counter("store_serializations"), 1);
    }

    #[test]
    fn younger_store_stops_load_grants() {
        let mut m = ReplicatedPorts::new(4);
        let ready = vec![
            MemRequest::load(0, 0),
            MemRequest::load(1, 8),
            MemRequest::store(2, 16),
            MemRequest::load(3, 24),
        ];
        // The two loads ahead of the store go; the store and everything
        // younger wait (stores may not launch beside any other access).
        assert_eq!(m.arbitrate(&ready), vec![0, 1]);
    }

    #[test]
    fn single_port_behaves_like_single_cache() {
        let mut m = ReplicatedPorts::new(1);
        let ready = vec![MemRequest::load(0, 0), MemRequest::load(1, 8)];
        assert_eq!(m.arbitrate(&ready), vec![0]);
    }

    #[test]
    fn empty_ready_list() {
        let mut m = ReplicatedPorts::new(2);
        assert!(m.arbitrate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ports_panics() {
        ReplicatedPorts::new(0);
    }

    #[test]
    fn label() {
        assert_eq!(ReplicatedPorts::new(8).label(), "Repl-8");
    }
}
