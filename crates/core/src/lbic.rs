//! The Locality-Based Interleaved Cache (LBIC), paper §5.

use std::collections::VecDeque;

use hbdc_mem::BankMapper;
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::audit::{self, Violation};
use crate::model::PortModel;
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// How the LSQ combining logic picks the group of accesses for each bank
/// (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CombinePolicy {
    /// Combine with the *leading request* — the oldest grantable ready
    /// reference to each bank locks that bank's line buffer, and younger
    /// same-line references ride along. The paper's choice: "we settled on
    /// the leading request because we believe it is fair and simple."
    #[default]
    LeadingRequest,
    /// Find the *largest group* of combinable ready accesses per bank and
    /// grant that group instead. The paper's proposed enhancement, whose
    /// "sorting logic … may be costly"; implemented here as ablation B.
    LargestGroup,
}

#[derive(Debug)]
struct Bank {
    store_queue: VecDeque<u64>, // addresses of stores awaiting drain
    granted_this_cycle: bool,
}

/// The Locality-Based Interleaved Cache: a traditional `M`-bank cache with
/// an `N`-ported single-line buffer and a store queue on each bank.
///
/// Per cycle and per bank, the leading (oldest grantable) reference locks
/// the bank's line buffer to its cache line; up to `N-1` further ready
/// references *to the same line* combine with it. Granted stores deposit
/// into the bank's store queue, which drains one entry per idle bank cycle
/// (the HP PA8000 discipline the paper cites); a full store queue makes
/// further stores to that bank ungrantable until it drains. Loads never
/// block on the store queue — their data is served from the line buffer.
///
/// An `MxN` LBIC therefore peaks at `M*N` references per cycle while its
/// cache arrays remain plain single-ported banks.
///
/// # Examples
///
/// ```
/// use hbdc_core::{CombinePolicy, Lbic, MemRequest, PortModel};
///
/// let mut m = Lbic::new(2, 2, 8, 32, CombinePolicy::LeadingRequest);
/// // The paper's Figure 4c pattern: st/ld/ld/st over two banks, one line
/// // per bank. With 32-byte lines and 2 banks, line 12 (addresses
/// // 0x180..0x19f) maps to bank 0 and line 11 (0x160..0x17f) to bank 1.
/// let ready = vec![
///     MemRequest::store(0, 0x180), // bank 0, line 12, offset 0
///     MemRequest::load(1, 0x164),  // bank 1, line 11, offset 4
///     MemRequest::load(2, 0x168),  // bank 1, line 11, offset 8
///     MemRequest::store(3, 0x18c), // bank 0, line 12, offset 12
/// ];
/// assert_eq!(m.arbitrate(&ready).len(), 4); // all four in one cycle
/// ```
#[derive(Debug)]
pub struct Lbic {
    mapper: BankMapper,
    line_ports: usize,
    sq_capacity: usize,
    policy: CombinePolicy,
    line_shift: u32,
    banks: Vec<Bank>,
    // Per-cycle scratch (one slot per bank unless noted), reset at the
    // start of each arbitration round so the hot path never allocates.
    scratch_locked: Vec<Option<u64>>,
    scratch_counts: Vec<usize>,
    scratch_sq_free: Vec<usize>,
    scratch_by_bank: Vec<Vec<usize>>,
    scratch_lines: Vec<(u64, usize)>, // per-line counts within one bank
    stats: ArbStats,
}

impl Lbic {
    /// Creates an `banks x line_ports` LBIC for a cache with the given
    /// line size, using bit-selection bank mapping.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two, `line_ports` is zero, or
    /// `store_queue` is zero.
    pub fn new(
        banks: u32,
        line_ports: usize,
        store_queue: usize,
        line_size: u64,
        policy: CombinePolicy,
    ) -> Self {
        Self::with_mapper(
            BankMapper::bit_select(banks, line_size),
            line_ports,
            store_queue,
            line_size,
            policy,
        )
    }

    /// Creates an LBIC with an explicit bank-selection function.
    pub fn with_mapper(
        mapper: BankMapper,
        line_ports: usize,
        store_queue: usize,
        line_size: u64,
        policy: CombinePolicy,
    ) -> Self {
        assert!(line_ports > 0, "line buffer needs at least one port");
        assert!(store_queue > 0, "store queue needs at least one entry");
        let n_banks = mapper.banks() as usize;
        Self {
            mapper,
            line_ports,
            sq_capacity: store_queue,
            policy,
            line_shift: line_size.trailing_zeros(),
            banks: (0..n_banks)
                .map(|_| Bank {
                    store_queue: VecDeque::new(),
                    granted_this_cycle: false,
                })
                .collect(),
            scratch_locked: vec![None; n_banks],
            scratch_counts: vec![0; n_banks],
            scratch_sq_free: vec![0; n_banks],
            scratch_by_bank: vec![Vec::new(); n_banks],
            scratch_lines: Vec::new(),
            stats: ArbStats::new(n_banks * line_ports),
        }
    }

    /// The bank-selection function in use.
    pub fn mapper(&self) -> &BankMapper {
        &self.mapper
    }

    /// The combining policy in use.
    pub fn policy(&self) -> CombinePolicy {
        self.policy
    }

    /// Current store-queue occupancy of `bank` (for tests and reports).
    pub fn store_queue_len(&self, bank: u32) -> usize {
        self.banks[bank as usize].store_queue.len()
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Leading-request selection: one ordered walk, first grantable
    /// reference per bank locks the line.
    fn arbitrate_leading(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        // Per-bank cycle state: the locked line and grants so far.
        for slot in self.scratch_locked.iter_mut() {
            *slot = None;
        }
        for count in self.scratch_counts.iter_mut() {
            *count = 0;
        }
        for (k, b) in self.banks.iter().enumerate() {
            self.scratch_sq_free[k] = self.sq_capacity - b.store_queue.len().min(self.sq_capacity);
        }
        let mut conflicts = 0u64;
        let mut exhausted = 0u64;
        let mut sq_full = 0u64;
        let mut combined = 0u64;

        for (i, r) in ready.iter().enumerate() {
            let bank = self.mapper.bank_of(r.addr) as usize;
            let line = self.line_of(r.addr);
            match self.scratch_locked[bank] {
                None => {
                    if r.is_store && self.scratch_sq_free[bank] == 0 {
                        sq_full += 1;
                        continue;
                    }
                    self.scratch_locked[bank] = Some(line);
                    self.scratch_counts[bank] = 1;
                    if r.is_store {
                        self.scratch_sq_free[bank] -= 1;
                        self.banks[bank].store_queue.push_back(r.addr);
                    }
                    granted.push(i);
                }
                Some(l) if l == line => {
                    if self.scratch_counts[bank] >= self.line_ports {
                        exhausted += 1;
                        continue;
                    }
                    if r.is_store && self.scratch_sq_free[bank] == 0 {
                        sq_full += 1;
                        continue;
                    }
                    self.scratch_counts[bank] += 1;
                    combined += 1;
                    if r.is_store {
                        self.scratch_sq_free[bank] -= 1;
                        self.banks[bank].store_queue.push_back(r.addr);
                    }
                    granted.push(i);
                }
                Some(_) => {
                    conflicts += 1;
                }
            }
        }

        for (bank, &c) in self.scratch_counts.iter().enumerate() {
            if c > 0 {
                self.banks[bank].granted_this_cycle = true;
            }
        }
        if conflicts > 0 {
            self.stats.bump("bank_conflicts", conflicts);
        }
        if exhausted > 0 {
            self.stats.bump("port_exhaustion", exhausted);
        }
        if sq_full > 0 {
            self.stats.bump("sq_full_stalls", sq_full);
        }
        if combined > 0 {
            self.stats.bump("combined", combined);
        }
    }

    /// Largest-group selection: per bank, the line with the most ready
    /// references wins (ties broken toward the oldest leading reference).
    fn arbitrate_largest(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        // Bucket request indices by bank.
        for idxs in self.scratch_by_bank.iter_mut() {
            idxs.clear();
        }
        for (i, r) in ready.iter().enumerate() {
            self.scratch_by_bank[self.mapper.bank_of(r.addr) as usize].push(i);
        }

        let mut combined = 0u64;
        let mut sq_full = 0u64;

        for bank in 0..self.banks.len() {
            if self.scratch_by_bank[bank].is_empty() {
                continue;
            }
            // Count references per line, preserving first-seen order so
            // ties favour the line of the oldest reference.
            self.scratch_lines.clear();
            for k in 0..self.scratch_by_bank[bank].len() {
                let i = self.scratch_by_bank[bank][k];
                let line = self.line_of(ready[i].addr);
                match self.scratch_lines.iter_mut().find(|(l, _)| *l == line) {
                    Some((_, c)) => *c += 1,
                    None => self.scratch_lines.push((line, 1)),
                }
            }
            // First-seen order breaks ties toward the oldest reference;
            // keep the first strictly-greatest count.
            let mut best_line = self.scratch_lines[0].0;
            let mut best_count = self.scratch_lines[0].1;
            for &(l, c) in &self.scratch_lines[1..] {
                if c > best_count {
                    best_line = l;
                    best_count = c;
                }
            }

            let mut count = 0usize;
            let mut sq_free =
                self.sq_capacity - self.banks[bank].store_queue.len().min(self.sq_capacity);
            for k in 0..self.scratch_by_bank[bank].len() {
                let i = self.scratch_by_bank[bank][k];
                if self.line_of(ready[i].addr) != best_line {
                    continue;
                }
                if count >= self.line_ports {
                    self.stats.bump("port_exhaustion", 1);
                    continue;
                }
                if ready[i].is_store {
                    if sq_free == 0 {
                        sq_full += 1;
                        continue;
                    }
                    sq_free -= 1;
                    self.banks[bank].store_queue.push_back(ready[i].addr);
                }
                if count > 0 {
                    combined += 1;
                }
                count += 1;
                granted.push(i);
            }
            if count > 0 {
                self.banks[bank].granted_this_cycle = true;
            }
            let losers = self.scratch_by_bank[bank].len()
                - granted
                    .iter()
                    .filter(|&&g| self.scratch_by_bank[bank].contains(&g))
                    .count();
            if losers > 0 {
                self.stats.bump("bank_conflicts", losers as u64);
            }
        }

        if combined > 0 {
            self.stats.bump("combined", combined);
        }
        if sq_full > 0 {
            self.stats.bump("sq_full_stalls", sq_full);
        }
        granted.sort_unstable();
    }
}

impl PortModel for Lbic {
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        granted.clear();
        match self.policy {
            CombinePolicy::LeadingRequest => self.arbitrate_leading(ready, granted),
            CombinePolicy::LargestGroup => self.arbitrate_largest(ready, granted),
        }
        self.stats.record_round(ready.len(), granted.len());
    }

    fn tick(&mut self) {
        // Store queues drain on idle bank cycles (paper §5.2: "the store
        // queue uses idle cycles … to perform stores"). One drain writes
        // one cache line through the bank's single port, so every queued
        // store to that line retires together — the store queue coalesces
        // same-line stores into a single array write.
        let mut drains = 0u64;
        let line_shift = self.line_shift;
        for bank in &mut self.banks {
            if !bank.granted_this_cycle {
                if let Some(head) = bank.store_queue.pop_front() {
                    let line = head >> line_shift;
                    let before = bank.store_queue.len();
                    bank.store_queue.retain(|a| a >> line_shift != line);
                    drains += 1 + (before - bank.store_queue.len()) as u64;
                }
            }
            bank.granted_this_cycle = false;
        }
        if drains > 0 {
            self.stats.bump("sq_drains", drains);
        }
        self.stats.record_tick();
    }

    // Store queues drain one line per idle bank cycle, so idle cycles do
    // real work while any queue is non-empty: report an event "this
    // cycle" to keep the simulator ticking until every queue is dry.
    // (`granted_this_cycle` is always false here — `tick` just reset it.)
    fn next_event(&self, now: u64) -> Option<u64> {
        if self.banks.iter().any(|b| !b.store_queue.is_empty()) {
            Some(now)
        } else {
            None
        }
    }

    fn skip_idle(&mut self, k: u64) {
        debug_assert!(
            self.banks
                .iter()
                .all(|b| b.store_queue.is_empty() && !b.granted_this_cycle),
            "idle span skipped with LBIC drain work pending"
        );
        self.stats.record_ticks(k);
    }

    fn peak_per_cycle(&self) -> usize {
        self.banks.len() * self.line_ports
    }

    fn label(&self) -> String {
        format!("LBIC-{}x{}", self.banks.len(), self.line_ports)
    }

    fn stats(&self) -> &ArbStats {
        &self.stats
    }

    /// LBIC legality (paper §5): within one cycle, every grant in a bank
    /// must hit the line locked by that bank's leading grant, at most
    /// `N = line_ports` grants may share a bank's line buffer, and no
    /// per-bank store queue may exceed its capacity.
    fn audit_round(&self, ready: &[MemRequest], granted: &[usize], out: &mut Vec<Violation>) {
        audit::check_generic(self.peak_per_cycle(), ready, granted, out);
        let n_banks = self.banks.len();
        let mut leader_line: Vec<Option<u64>> = vec![None; n_banks];
        let mut count: Vec<usize> = vec![0; n_banks];
        for &g in granted {
            let Some(r) = ready.get(g) else { continue };
            let b = self.mapper.bank_of(r.addr) as usize;
            let line = self.line_of(r.addr);
            match leader_line[b] {
                None => {
                    leader_line[b] = Some(line);
                    count[b] = 1;
                }
                Some(l) if l == line => {
                    count[b] += 1;
                    if count[b] > self.line_ports {
                        out.push(Violation::new(
                            "lbic-combining-overflow",
                            format!(
                                "bank {b}: {} grants to line {line:#x} exceed the \
                                 {}-ported line buffer",
                                count[b], self.line_ports
                            ),
                        ));
                    }
                }
                Some(l) => out.push(Violation::new(
                    "lbic-cross-line",
                    format!(
                        "bank {b}: grant index {g} hits line {line:#x} but the \
                         leader locked line {l:#x}"
                    ),
                )),
            }
        }
        for (b, bank) in self.banks.iter().enumerate() {
            if bank.store_queue.len() > self.sq_capacity {
                out.push(Violation::new(
                    "lbic-store-queue-overflow",
                    format!(
                        "bank {b}: store queue holds {} entries, capacity {}",
                        bank.store_queue.len(),
                        self.sq_capacity
                    ),
                ));
            }
        }
    }

    fn debug_state(&self) -> String {
        let occ: Vec<usize> = self.banks.iter().map(|b| b.store_queue.len()).collect();
        format!(
            "store-queue occupancy per bank: {occ:?} (capacity {})",
            self.sq_capacity
        )
    }

    // The per-cycle scratch vectors are rebuilt at the top of every
    // arbitration round, so only the per-bank store queues, the
    // granted-this-cycle flags, and the statistics persist.
    fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            w.put_usize(bank.store_queue.len());
            for &addr in &bank.store_queue {
                w.put_u64(addr);
            }
            w.put_bool(bank.granted_this_cycle);
        }
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.banks.len() {
            return Err(SnapError::Corrupt(format!(
                "LBIC has {} banks, snapshot carries {n}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            let q = r.get_usize()?;
            if q > self.sq_capacity {
                return Err(SnapError::Corrupt(format!(
                    "{q} queued stores exceed the store-queue capacity {}",
                    self.sq_capacity
                )));
            }
            bank.store_queue.clear();
            for _ in 0..q {
                bank.store_queue.push_back(r.get_u64()?);
            }
            bank.granted_this_cycle = r.get_bool()?;
        }
        self.stats.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an address for (bank, line-within-bank, offset) under
    /// 2-bank bit selection with 32-byte lines.
    fn addr2(bank: u64, line_sel: u64, offset: u64) -> u64 {
        (line_sel << 6) | (bank << 5) | offset
    }

    fn lbic(m: u32, n: usize) -> Lbic {
        Lbic::new(m, n, 8, 32, CombinePolicy::LeadingRequest)
    }

    #[test]
    fn figure_4c_single_cycle() {
        // The paper's Figure 4c: st(B0,L12,o0), ld(B1,L10,o4),
        // ld(B1,L10,o8), st(B0,L12,o12) — a 2x2 LBIC handles all four in
        // one cycle.
        let mut m = lbic(2, 2);
        let ready = vec![
            MemRequest::store(0, addr2(0, 12, 0)),
            MemRequest::load(1, addr2(1, 10, 4)),
            MemRequest::load(2, addr2(1, 10, 8)),
            MemRequest::store(3, addr2(0, 12, 12)),
        ];
        assert_eq!(m.arbitrate(&ready), vec![0, 1, 2, 3]);
        assert_eq!(m.stats().extra_counter("combined"), 2);
    }

    #[test]
    fn same_bank_different_line_conflicts() {
        let mut m = lbic(2, 2);
        let ready = vec![
            MemRequest::load(0, addr2(0, 1, 0)),
            MemRequest::load(1, addr2(0, 2, 0)), // same bank, different line
        ];
        assert_eq!(m.arbitrate(&ready), vec![0]);
        assert_eq!(m.stats().extra_counter("bank_conflicts"), 1);
    }

    #[test]
    fn line_port_exhaustion_caps_combining() {
        let mut m = lbic(2, 2);
        let ready: Vec<MemRequest> = (0..4)
            .map(|i| MemRequest::load(i, addr2(0, 5, i * 8)))
            .collect();
        assert_eq!(m.arbitrate(&ready), vec![0, 1]); // N = 2
        assert_eq!(m.stats().extra_counter("port_exhaustion"), 2);
    }

    #[test]
    fn peak_is_m_times_n() {
        assert_eq!(lbic(4, 4).peak_per_cycle(), 16);
        // 4 lines, one per bank, 4 same-line refs each → all 16 grant.
        let mut ready = Vec::new();
        for bank in 0..4u64 {
            for k in 0..4u64 {
                ready.push(MemRequest::load(
                    bank * 4 + k,
                    (bank << 5) | (k * 8), // 4-bank mapping: bits 5..6
                ));
            }
        }
        let mut model = Lbic::new(4, 4, 16, 32, CombinePolicy::LeadingRequest);
        assert_eq!(model.arbitrate(&ready).len(), 16);
    }

    #[test]
    fn full_store_queue_blocks_stores_not_loads() {
        let mut m = Lbic::new(2, 2, 1, 32, CombinePolicy::LeadingRequest);
        // Fill the single-entry store queue of bank 0.
        let g = m.arbitrate(&[MemRequest::store(0, addr2(0, 1, 0))]);
        assert_eq!(g, vec![0]);
        assert_eq!(m.store_queue_len(0), 1);
        // Bank 0 was busy this cycle, so no drain happens at tick.
        m.tick();
        assert_eq!(m.store_queue_len(0), 1);
        // Next cycle: another store to bank 0 is blocked; a load to the
        // same line proceeds and becomes the leading request.
        let ready = vec![
            MemRequest::store(1, addr2(0, 1, 8)),
            MemRequest::load(2, addr2(0, 1, 16)),
        ];
        assert_eq!(m.arbitrate(&ready), vec![1]);
        assert_eq!(m.stats().extra_counter("sq_full_stalls"), 1);
    }

    #[test]
    fn store_queue_drains_on_idle_cycles() {
        let mut m = Lbic::new(2, 2, 4, 32, CombinePolicy::LeadingRequest);
        m.arbitrate(&[
            MemRequest::store(0, addr2(0, 1, 0)),
            MemRequest::store(1, addr2(0, 1, 8)),
        ]);
        assert_eq!(m.store_queue_len(0), 2);
        m.tick(); // bank was busy: no drain
        assert_eq!(m.store_queue_len(0), 2);
        m.arbitrate(&[]); // idle cycle: both stores share a line, so one
        m.tick(); // array write retires them together
        assert_eq!(m.store_queue_len(0), 0);
        assert_eq!(m.stats().extra_counter("sq_drains"), 2);
    }

    #[test]
    fn store_queue_drain_coalesces_only_same_line() {
        let mut m = Lbic::new(2, 2, 8, 32, CombinePolicy::LeadingRequest);
        m.arbitrate(&[
            MemRequest::store(0, addr2(0, 1, 0)),
            MemRequest::store(1, addr2(0, 1, 8)),
        ]);
        m.tick(); // busy, no drain
        m.arbitrate(&[MemRequest::store(2, addr2(0, 2, 0))]);
        m.tick(); // busy again
        assert_eq!(m.store_queue_len(0), 3);
        m.arbitrate(&[]);
        m.tick(); // drains the two line-1 stores together
        assert_eq!(m.store_queue_len(0), 1);
        m.arbitrate(&[]);
        m.tick(); // drains the line-2 store
        assert_eq!(m.store_queue_len(0), 0);
    }

    #[test]
    fn mx1_behaves_like_banked_for_loads() {
        use crate::banked::BankedPorts;
        let mut lb = Lbic::new(4, 1, 64, 32, CombinePolicy::LeadingRequest);
        let mut bk = BankedPorts::new(4, 32);
        let ready: Vec<MemRequest> = (0..8)
            .map(|i| MemRequest::load(i, (i * 13 % 32) * 32))
            .collect();
        assert_eq!(lb.arbitrate(&ready), bk.arbitrate(&ready));
    }

    #[test]
    fn largest_group_beats_leading_on_skewed_pattern() {
        // Oldest request is a singleton line; three younger requests share
        // another line. Leading grants 1; largest-group grants 3.
        let ready = vec![
            MemRequest::load(0, addr2(0, 1, 0)),
            MemRequest::load(1, addr2(0, 2, 0)),
            MemRequest::load(2, addr2(0, 2, 8)),
            MemRequest::load(3, addr2(0, 2, 16)),
        ];
        let mut lead = Lbic::new(2, 4, 8, 32, CombinePolicy::LeadingRequest);
        let mut large = Lbic::new(2, 4, 8, 32, CombinePolicy::LargestGroup);
        assert_eq!(lead.arbitrate(&ready), vec![0]);
        assert_eq!(large.arbitrate(&ready), vec![1, 2, 3]);
    }

    #[test]
    fn largest_group_tie_prefers_oldest() {
        let ready = vec![
            MemRequest::load(0, addr2(0, 1, 0)),
            MemRequest::load(1, addr2(0, 2, 0)),
            MemRequest::load(2, addr2(0, 1, 8)),
            MemRequest::load(3, addr2(0, 2, 8)),
        ];
        let mut m = Lbic::new(2, 4, 8, 32, CombinePolicy::LargestGroup);
        // Tie between lines 1 and 2 (2 refs each) — line 1 contains the
        // oldest reference and wins.
        assert_eq!(m.arbitrate(&ready), vec![0, 2]);
    }

    #[test]
    fn load_after_store_same_location_same_cycle() {
        // Paper §5.2: "a load followed by a store to the same memory
        // location [can] be accepted in the same cycle."
        let mut m = lbic(2, 2);
        let a = addr2(0, 3, 8);
        let ready = vec![MemRequest::load(0, a), MemRequest::store(1, a)];
        assert_eq!(m.arbitrate(&ready), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_line_ports_panics() {
        Lbic::new(2, 0, 8, 32, CombinePolicy::LeadingRequest);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_store_queue_panics() {
        Lbic::new(2, 2, 0, 32, CombinePolicy::LeadingRequest);
    }

    #[test]
    fn label_is_mxn() {
        assert_eq!(lbic(8, 4).label(), "LBIC-8x4");
    }

    #[test]
    fn state_roundtrip_continues_bit_identically() {
        // Leave bank 0's store queue non-empty mid-drain, snapshot, and
        // check a restored model drains and arbitrates identically.
        let mut m = lbic(2, 2);
        m.arbitrate(&[
            MemRequest::store(0, addr2(0, 1, 0)),
            MemRequest::store(1, addr2(0, 2, 0)),
        ]);
        m.tick();
        let mut w = StateWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = lbic(2, 2);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.store_queue_len(0), m.store_queue_len(0));
        let ready = vec![
            MemRequest::store(2, addr2(0, 3, 0)),
            MemRequest::load(3, addr2(1, 4, 8)),
        ];
        for _ in 0..4 {
            assert_eq!(restored.arbitrate(&ready), m.arbitrate(&ready));
            restored.tick();
            m.tick();
            assert_eq!(restored.store_queue_len(0), m.store_queue_len(0));
        }
        assert_eq!(
            restored.stats().extra_counter("sq_drains"),
            m.stats().extra_counter("sq_drains")
        );
    }

    #[test]
    fn load_rejects_wrong_bank_count() {
        let mut w = StateWriter::new();
        lbic(4, 2).save_state(&mut w);
        let bytes = w.into_bytes();
        let mut two_banks = lbic(2, 2);
        assert!(matches!(
            two_banks.load_state(&mut StateReader::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }
}
