//! Seeded fault injection: deliberately corrupt grant decisions to prove
//! the invariant auditor fires.
//!
//! [`FaultInjector`] wraps any [`PortModel`] and, on seeded-pseudo-random
//! eligible cycles, corrupts the grant set the inner model produced in a
//! way that violates one specific legality rule (its [`FaultClass`]) —
//! granting a bank-conflicted reference, combining across lines, breaking
//! a broadcast store's exclusivity, and so on. The corruption models the
//! silent arbitration bugs the auditor exists to catch: a flipped ready
//! bit, a miswired bank decoder, an off-by-one port counter.
//!
//! Because [`audit_round`](PortModel::audit_round) is delegated to the
//! *inner* model, the corrupted grants are always checked against the
//! true rules; a fired injection must therefore be reported within the
//! same cycle, which is exactly what the property tests assert.

use hbdc_mem::BankMapper;
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::audit::Violation;
use crate::model::{PortConfig, PortModel};
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// The violation class a [`FaultInjector`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Grant a second reference to an already-granted bank (banked model;
    /// models a miswired bank-conflict detector).
    BankDoubleGrant,
    /// Grant a reference to a granted bank whose line differs from the
    /// leader's locked line (LBIC; models a corrupt bank/line mapping).
    CrossLineGrant,
    /// Grant an (N+1)-th same-line reference to a bank whose line buffer
    /// has only N ports (LBIC; models a stuck ready bit in the combining
    /// logic).
    CombiningOverflow,
    /// Grant another reference in the same cycle as a broadcast store
    /// (replicated model; models a port-reservation bug).
    StoreBroadcastOverlap,
    /// Grant the same reference twice in one cycle (any model).
    DuplicateGrant,
    /// Grant more references than the model's peak per cycle (any model).
    PeakOverflow,
}

/// A [`PortModel`] wrapper that corrupts its inner model's grants.
///
/// # Examples
///
/// ```
/// use hbdc_core::{FaultClass, FaultInjector, MemRequest, PortConfig, PortModel};
///
/// let mut m = FaultInjector::new(
///     PortConfig::banked(2),
///     32,
///     FaultClass::BankDoubleGrant,
///     42,
/// )
/// .unwrap();
/// // Two same-bank references: the clean model grants one; once the
/// // injector fires it grants both, and the audit reports the fault.
/// let ready = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x40)];
/// let mut caught = false;
/// for _ in 0..64 {
///     let granted = m.arbitrate(&ready);
///     let mut out = Vec::new();
///     m.audit_round(&ready, &granted, &mut out);
///     assert_eq!(m.fired_last_round(), !out.is_empty());
///     caught |= !out.is_empty();
///     m.tick();
/// }
/// assert!(caught, "injector never fired in 64 cycles");
/// ```
pub struct FaultInjector {
    inner: Box<dyn PortModel>,
    class: FaultClass,
    mapper: Option<BankMapper>,
    line_shift: u32,
    line_ports: usize,
    rng: u64,
    injected: u64,
    fired_last: bool,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.label())
            .field("class", &self.class)
            .field("injected", &self.injected)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Wraps a freshly built model for `cfg`, corrupting per `class` with
    /// a deterministic stream seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` is degenerate or `class` cannot apply to
    /// this model kind (e.g. [`FaultClass::CrossLineGrant`] on an ideal
    /// cache).
    pub fn new(
        cfg: PortConfig,
        line_size: u64,
        class: FaultClass,
        seed: u64,
    ) -> Result<Self, String> {
        let inner = cfg.try_build(line_size)?;
        let (mapper, line_ports) = match cfg {
            PortConfig::Banked { banks, select } => {
                (Some(BankMapper::with_select(select, banks, line_size)), 0)
            }
            PortConfig::Lbic {
                banks, line_ports, ..
            } => (Some(BankMapper::bit_select(banks, line_size)), line_ports),
            _ => (None, 0),
        };
        let applicable = match class {
            FaultClass::BankDoubleGrant => matches!(cfg, PortConfig::Banked { .. }),
            FaultClass::CrossLineGrant | FaultClass::CombiningOverflow => {
                matches!(cfg, PortConfig::Lbic { .. })
            }
            FaultClass::StoreBroadcastOverlap => matches!(cfg, PortConfig::Replicated { .. }),
            FaultClass::DuplicateGrant | FaultClass::PeakOverflow => true,
        };
        if !applicable {
            return Err(format!("fault class {class:?} does not apply to {cfg:?}"));
        }
        Ok(Self {
            inner,
            class,
            mapper,
            line_shift: line_size.trailing_zeros(),
            line_ports,
            rng: seed | 1, // xorshift must not start at zero
            injected: 0,
            fired_last: false,
        })
    }

    /// Wraps `cfg` with the fault class most characteristic of its model
    /// kind: bank double-grants for banked, cross-line grants for the
    /// LBIC, store-broadcast overlap for replication, peak overflow for
    /// ideal ports.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` is degenerate.
    pub fn auto(cfg: PortConfig, line_size: u64, seed: u64) -> Result<Self, String> {
        let class = match cfg {
            PortConfig::Banked { .. } => FaultClass::BankDoubleGrant,
            PortConfig::Lbic { .. } => FaultClass::CrossLineGrant,
            PortConfig::Replicated { .. } => FaultClass::StoreBroadcastOverlap,
            PortConfig::Ideal { .. } => FaultClass::PeakOverflow,
        };
        Self::new(cfg, line_size, class, seed)
    }

    /// Total corrupted arbitration rounds so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether the most recent arbitration round was corrupted.
    pub fn fired_last_round(&self) -> bool {
        self.fired_last
    }

    /// The class of fault this injector produces.
    pub fn class(&self) -> FaultClass {
        self.class
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn bank_of(&self, addr: u64) -> usize {
        match &self.mapper {
            Some(m) => m.bank_of(addr) as usize,
            None => 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Inserts `g` into the sorted grant list. For duplicates, inserts a
    /// second copy (that *is* the fault).
    fn push_grant(granted: &mut Vec<usize>, g: usize) {
        let pos = match granted.binary_search(&g) {
            Ok(pos) | Err(pos) => pos,
        };
        granted.insert(pos, g);
    }

    /// Attempts to corrupt `granted`; returns whether a fault was placed.
    fn try_inject(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) -> bool {
        let denied =
            |granted: &Vec<usize>| (0..ready.len()).find(|i| granted.binary_search(i).is_err());
        match self.class {
            FaultClass::BankDoubleGrant => {
                // A reference denied by a bank conflict: its bank already
                // granted someone. Granting it anyway double-books the bank.
                let victim = (0..ready.len()).find(|&i| {
                    granted.binary_search(&i).is_err()
                        && granted
                            .iter()
                            .any(|&g| self.bank_of(ready[g].addr) == self.bank_of(ready[i].addr))
                });
                victim.map(|v| Self::push_grant(granted, v)).is_some()
            }
            FaultClass::CrossLineGrant => {
                // A denied reference whose bank granted a *different* line.
                let victim = (0..ready.len()).find(|&i| {
                    granted.binary_search(&i).is_err()
                        && granted.iter().any(|&g| {
                            self.bank_of(ready[g].addr) == self.bank_of(ready[i].addr)
                                && self.line_of(ready[g].addr) != self.line_of(ready[i].addr)
                        })
                });
                victim.map(|v| Self::push_grant(granted, v)).is_some()
            }
            FaultClass::CombiningOverflow => {
                // A denied same-line reference to a bank whose line buffer
                // is already fully subscribed this cycle.
                let victim = (0..ready.len()).find(|&i| {
                    if granted.binary_search(&i).is_ok() {
                        return false;
                    }
                    let (bank, line) = (self.bank_of(ready[i].addr), self.line_of(ready[i].addr));
                    let same_line = granted
                        .iter()
                        .filter(|&&g| {
                            self.bank_of(ready[g].addr) == bank
                                && self.line_of(ready[g].addr) == line
                        })
                        .count();
                    same_line >= self.line_ports
                });
                victim.map(|v| Self::push_grant(granted, v)).is_some()
            }
            FaultClass::StoreBroadcastOverlap => {
                let has_store = granted
                    .iter()
                    .any(|&g| ready.get(g).is_some_and(|r| r.is_store));
                if has_store {
                    // Grant anything else beside the broadcast store.
                    denied(granted)
                        .map(|d| Self::push_grant(granted, d))
                        .is_some()
                } else {
                    // Or slip a denied store in beside granted loads.
                    let store = (0..ready.len())
                        .find(|&i| ready[i].is_store && granted.binary_search(&i).is_err());
                    match (store, granted.is_empty()) {
                        (Some(s), false) => {
                            Self::push_grant(granted, s);
                            true
                        }
                        _ => false,
                    }
                }
            }
            FaultClass::DuplicateGrant => match granted.first().copied() {
                Some(g) => {
                    Self::push_grant(granted, g);
                    true
                }
                None => false,
            },
            FaultClass::PeakOverflow => {
                if granted.len() >= self.inner.peak_per_cycle() {
                    denied(granted)
                        .map(|d| Self::push_grant(granted, d))
                        .is_some()
                } else {
                    false
                }
            }
        }
    }
}

impl PortModel for FaultInjector {
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        self.inner.arbitrate_into(ready, granted);
        // Fire on roughly half of the eligible cycles, seed-deterministic.
        self.fired_last = self.next_rng() & 1 == 0 && self.try_inject(ready, granted);
        if self.fired_last {
            self.injected += 1;
        }
    }

    fn tick(&mut self) {
        self.inner.tick();
    }

    // Deliberately inherits the conservative `next_event` default
    // (`Some(now)`): the injection RNG advances on *every* arbitration
    // round, including empty ones, so skipping any cycle would desync
    // the seed-deterministic fault stream.

    fn peak_per_cycle(&self) -> usize {
        self.inner.peak_per_cycle()
    }

    fn label(&self) -> String {
        format!("{}+fault", self.inner.label())
    }

    fn stats(&self) -> &ArbStats {
        self.inner.stats()
    }

    /// Audits against the *inner* model's true rules, so injected
    /// corruption is judged by the invariants it breaks.
    fn audit_round(&self, ready: &[MemRequest], granted: &[usize], out: &mut Vec<Violation>) {
        self.inner.audit_round(ready, granted, out);
    }

    fn debug_state(&self) -> String {
        let inner = self.inner.debug_state();
        format!(
            "fault injector ({:?}, {} fired); {inner}",
            self.class, self.injected
        )
    }

    // The xorshift stream position must survive a snapshot so a resumed
    // injected run corrupts exactly the cycles the straight-through run
    // would have.
    fn save_state(&self, w: &mut StateWriter) {
        self.inner.save_state(w);
        w.put_u64(self.rng);
        w.put_u64(self.injected);
        w.put_bool(self.fired_last);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.inner.load_state(r)?;
        self.rng = r.get_u64()?;
        self.injected = r.get_u64()?;
        self.fired_last = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `inj` over `ready` until it fires, returning that round's
    /// grants (panics after 256 clean rounds).
    fn fire(inj: &mut FaultInjector, ready: &[MemRequest]) -> Vec<usize> {
        for _ in 0..256 {
            let granted = inj.arbitrate(ready);
            inj.tick();
            if inj.fired_last_round() {
                return granted;
            }
        }
        panic!("injector never fired");
    }

    #[test]
    fn class_must_match_model_kind() {
        assert!(FaultInjector::new(
            PortConfig::Ideal { ports: 2 },
            32,
            FaultClass::CrossLineGrant,
            1
        )
        .is_err());
        assert!(
            FaultInjector::new(PortConfig::banked(4), 32, FaultClass::BankDoubleGrant, 1).is_ok()
        );
    }

    #[test]
    fn bank_double_grant_is_detected() {
        let cfg = PortConfig::banked(2);
        let mut inj = FaultInjector::new(cfg, 32, FaultClass::BankDoubleGrant, 7).unwrap();
        // Both to bank 0, different lines.
        let ready = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x40)];
        let granted = fire(&mut inj, &ready);
        let mut out = Vec::new();
        inj.audit_round(&ready, &granted, &mut out);
        assert!(
            out.iter().any(|v| v.rule == "banked-double-grant"),
            "{out:?}"
        );
    }

    #[test]
    fn store_broadcast_overlap_is_detected() {
        let cfg = PortConfig::Replicated { ports: 4 };
        let mut inj = FaultInjector::new(cfg, 32, FaultClass::StoreBroadcastOverlap, 9).unwrap();
        let ready = vec![MemRequest::store(0, 0x00), MemRequest::load(1, 0x40)];
        let granted = fire(&mut inj, &ready);
        let mut out = Vec::new();
        inj.audit_round(&ready, &granted, &mut out);
        assert!(
            out.iter().any(|v| v.rule == "repl-store-overlap"),
            "{out:?}"
        );
    }

    #[test]
    fn state_roundtrip_resumes_the_injection_stream() {
        let ready = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x40)];
        let mut inj =
            FaultInjector::new(PortConfig::banked(2), 32, FaultClass::BankDoubleGrant, 77).unwrap();
        for _ in 0..16 {
            inj.arbitrate(&ready);
            inj.tick();
        }
        let mut w = StateWriter::new();
        inj.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored =
            FaultInjector::new(PortConfig::banked(2), 32, FaultClass::BankDoubleGrant, 77).unwrap();
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.injected(), inj.injected());
        for _ in 0..32 {
            assert_eq!(restored.arbitrate(&ready), inj.arbitrate(&ready));
            assert_eq!(restored.fired_last_round(), inj.fired_last_round());
            restored.tick();
            inj.tick();
        }
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let ready = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x40)];
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let mut inj = FaultInjector::new(
                    PortConfig::banked(2),
                    32,
                    FaultClass::BankDoubleGrant,
                    1234,
                )
                .unwrap();
                (0..32)
                    .map(|_| {
                        inj.arbitrate(&ready);
                        inj.tick();
                        inj.fired_last_round()
                    })
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|&f| f));
    }
}
