//! True (ideal) multi-porting.

use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::model::PortModel;
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// Ideal multi-ported cache: every port has its own path to every entry,
/// so any `p` references — to any addresses, loads or stores — proceed in
/// parallel each cycle (paper §3.1, Figure 2a).
///
/// This is the performance upper bound the paper measures the practical
/// designs against; it is "generally considered too costly and impractical
/// for commercial implementation for anything larger than a register
/// file."
///
/// # Examples
///
/// ```
/// use hbdc_core::{IdealPorts, MemRequest, PortModel};
///
/// let mut m = IdealPorts::new(2);
/// let ready = vec![
///     MemRequest::store(0, 0x00),
///     MemRequest::store(1, 0x00), // same address: still fine
///     MemRequest::load(2, 0x40),
/// ];
/// assert_eq!(m.arbitrate(&ready), vec![0, 1]); // oldest two
/// ```
#[derive(Debug)]
pub struct IdealPorts {
    ports: usize,
    stats: ArbStats,
}

impl IdealPorts {
    /// Creates an ideal `ports`-ported model.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "port count must be at least 1");
        Self {
            ports,
            stats: ArbStats::new(ports),
        }
    }
}

impl PortModel for IdealPorts {
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>) {
        granted.clear();
        let n = ready.len().min(self.ports);
        self.stats.record_round(ready.len(), n);
        granted.extend(0..n);
    }

    fn tick(&mut self) {
        self.stats.record_tick();
    }

    // Stateless between rounds: an idle cycle only advances the cycle
    // counter, so skipped spans can be accounted in bulk.
    fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }

    fn skip_idle(&mut self, k: u64) {
        self.stats.record_ticks(k);
    }

    fn peak_per_cycle(&self) -> usize {
        self.ports
    }

    fn label(&self) -> String {
        format!("True-{}", self.ports)
    }

    fn stats(&self) -> &ArbStats {
        &self.stats
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.stats.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: usize) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::load(i as u64, i as u64 * 4))
            .collect()
    }

    #[test]
    fn grants_oldest_up_to_port_count() {
        let mut m = IdealPorts::new(3);
        assert_eq!(m.arbitrate(&reqs(5)), vec![0, 1, 2]);
        assert_eq!(m.arbitrate(&reqs(2)), vec![0, 1]);
        assert_eq!(m.arbitrate(&[]), Vec::<usize>::new());
    }

    #[test]
    fn stores_do_not_serialize() {
        let mut m = IdealPorts::new(4);
        let ready: Vec<MemRequest> = (0..4).map(|i| MemRequest::store(i, 0)).collect();
        assert_eq!(m.arbitrate(&ready).len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ports_panics() {
        IdealPorts::new(0);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = IdealPorts::new(2);
        m.arbitrate(&reqs(3));
        m.tick();
        assert_eq!(m.stats().offered(), 3);
        assert_eq!(m.stats().granted(), 2);
        assert_eq!(m.stats().stalled(), 1);
        assert_eq!(m.stats().cycles(), 1);
    }

    #[test]
    fn label_and_peak() {
        let m = IdealPorts::new(16);
        assert_eq!(m.label(), "True-16");
        assert_eq!(m.peak_per_cycle(), 16);
    }
}
