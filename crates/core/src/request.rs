//! Memory requests as presented to the port models.

/// One ready memory reference offered to the cache ports in a cycle.
///
/// Requests carry the minimal information the arbitration layer needs: a
/// caller-chosen identifier (typically the LSQ slot), the effective
/// address, and the load/store distinction. Data never flows through the
/// port models — they are pure timing structures.
///
/// # Examples
///
/// ```
/// use hbdc_core::MemRequest;
///
/// let ld = MemRequest::load(7, 0x1000_0020);
/// let st = MemRequest::store(8, 0x1000_0040);
/// assert!(!ld.is_store);
/// assert!(st.is_store);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Caller-chosen identifier (e.g. the LSQ sequence number).
    pub id: u64,
    /// Effective byte address.
    pub addr: u64,
    /// Whether this is a store.
    pub is_store: bool,
}

impl MemRequest {
    /// Creates a load request.
    pub fn load(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_store: false,
        }
    }

    /// Creates a store request.
    pub fn store(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_store: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!MemRequest::load(1, 0x10).is_store);
        assert!(MemRequest::store(2, 0x20).is_store);
        assert_eq!(MemRequest::load(1, 0x10).id, 1);
        assert_eq!(MemRequest::store(2, 0x20).addr, 0x20);
    }
}
