//! The `PortModel` trait and its configuration type.

use hbdc_mem::{BankMapper, BankSelect};
use hbdc_snap::{SnapError, StateReader, StateWriter};

use crate::audit::{self, Violation};
use crate::banked::BankedPorts;
use crate::ideal::IdealPorts;
use crate::lbic::{CombinePolicy, Lbic};
use crate::replicated::ReplicatedPorts;
use crate::request::MemRequest;
use crate::stats::ArbStats;

/// A data-cache port-arbitration model.
///
/// The simulator calls [`arbitrate_into`](Self::arbitrate_into) once per
/// cycle with the ready memory references *in age order* (oldest first)
/// and receives the indices of the references the cache structure
/// services this cycle, written into a caller-owned buffer so the
/// per-cycle arbitration allocates nothing.
/// [`tick`](Self::tick) is called once at the end of every cycle so models
/// with internal state (the LBIC's per-bank store queues) can advance.
///
/// Implementations guarantee:
/// * returned indices are strictly increasing and within range;
/// * the number of grants never exceeds [`peak_per_cycle`](Self::peak_per_cycle);
/// * arbitration is work-conserving under each model's structural rules
///   (no request is refused unless a rule forbids granting it).
pub trait PortModel {
    /// Selects which of the age-ordered `ready` references are serviced
    /// this cycle, writing their indices in increasing order into
    /// `granted` (cleared first).
    fn arbitrate_into(&mut self, ready: &[MemRequest], granted: &mut Vec<usize>);

    /// Allocating convenience wrapper around
    /// [`arbitrate_into`](Self::arbitrate_into), for tests and one-shot
    /// callers.
    fn arbitrate(&mut self, ready: &[MemRequest]) -> Vec<usize> {
        let mut granted = Vec::new();
        self.arbitrate_into(ready, &mut granted);
        granted
    }

    /// Advances internal state by one cycle (store-queue drain, etc.).
    fn tick(&mut self);

    /// The earliest future cycle at which this model's `tick` (or an
    /// empty arbitration round) could change its state or its reported
    /// statistics, given that no new references arrive before then.
    /// `None` means "never: every idle cycle is a pure no-op for me".
    ///
    /// Used by the simulator's idle-span skipping: a span `(now, target)`
    /// is only skipped if every component's next event is `>= target`.
    /// The conservative default — `Some(now)`, i.e. "I may act this very
    /// cycle" — disables skipping around models that have not audited
    /// their idle-cycle behavior (e.g. wrappers that advance an RNG on
    /// every round).
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Accounts for `k` consecutive idle cycles at once, equivalent to
    /// `k` repetitions of an empty `arbitrate_into(&[], ..)` round
    /// followed by `tick()`. Only called for spans the model itself
    /// declared skippable via [`next_event`](Self::next_event). The
    /// default replays the ticks literally, which is always correct.
    fn skip_idle(&mut self, k: u64) {
        for _ in 0..k {
            self.tick();
        }
    }

    /// The maximum number of references this model can ever grant in one
    /// cycle (e.g. `p` for ideal, `M*N` for an `MxN` LBIC).
    fn peak_per_cycle(&self) -> usize;

    /// A short human-readable label, e.g. `"True-4"` or `"LBIC-4x2"`.
    fn label(&self) -> String;

    /// Accumulated arbitration statistics.
    fn stats(&self) -> &ArbStats;

    /// Re-checks one arbitration round against this model's structural
    /// legality rules, appending any [`Violation`]s to `out`.
    ///
    /// `ready` and `granted` are the exact arguments/results of the
    /// matching [`arbitrate_into`](Self::arbitrate_into) call. The check
    /// is a pure observer — it recomputes legality independently of the
    /// arbitration path and never perturbs model state — so an audited
    /// simulation is bit-identical to an unaudited one. The default
    /// implementation applies only the generic invariants (indices
    /// strictly increasing, in range, at most
    /// [`peak_per_cycle`](Self::peak_per_cycle) grants); models override
    /// it to add their own rules.
    fn audit_round(&self, ready: &[MemRequest], granted: &[usize], out: &mut Vec<Violation>) {
        audit::check_generic(self.peak_per_cycle(), ready, granted, out);
    }

    /// One-line snapshot of model-internal state (store-queue occupancy
    /// and the like) for watchdog diagnostic dumps. Empty by default.
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Serializes every piece of state that affects future arbitration
    /// decisions or reported statistics (store queues, accumulated
    /// counters, injection RNG streams). The default writes nothing —
    /// correct for any stateless model.
    ///
    /// Together with [`load_state`](Self::load_state) this must satisfy:
    /// a model built from the same configuration that loads a saved state
    /// continues *bit-identically* to the model that saved it.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// model built from the same configuration. The default reads nothing.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the serialized state cannot belong to
    /// this model's configuration, or any decode error.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Stable wire tags for [`BankSelect`], used by the [`PortConfig`] codec.
fn bank_select_tag(select: BankSelect) -> u8 {
    match select {
        BankSelect::BitSelect => 0,
        BankSelect::XorFold => 1,
        BankSelect::PseudoRandom => 2,
    }
}

fn bank_select_from_tag(tag: u8) -> Result<BankSelect, SnapError> {
    match tag {
        0 => Ok(BankSelect::BitSelect),
        1 => Ok(BankSelect::XorFold),
        2 => Ok(BankSelect::PseudoRandom),
        other => Err(SnapError::Corrupt(format!(
            "unknown bank-select tag {other}"
        ))),
    }
}

/// Serializable description of a port model, the unit of configuration for
/// every experiment harness in this workspace.
///
/// # Examples
///
/// ```
/// use hbdc_core::PortConfig;
///
/// let m = PortConfig::banked(8).build(32);
/// assert_eq!(m.peak_per_cycle(), 8);
/// assert_eq!(m.label(), "Bank-8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortConfig {
    /// True (ideal) multi-porting with `ports` ports.
    Ideal {
        /// Number of ports.
        ports: usize,
    },
    /// Multi-porting by replication with `ports` cache copies.
    Replicated {
        /// Number of replicated single-ported copies.
        ports: usize,
    },
    /// Traditional multi-banking with single-ported banks.
    Banked {
        /// Number of line-interleaved banks (power of two).
        banks: u32,
        /// Bank-selection function (the paper uses bit selection).
        select: BankSelect,
    },
    /// The Locality-Based Interleaved Cache, `banks x line_ports`.
    Lbic {
        /// Number of line-interleaved banks (power of two), `M`.
        banks: u32,
        /// Ports on each bank's single-line buffer, `N`.
        line_ports: usize,
        /// Per-bank store-queue capacity (entries).
        store_queue: usize,
        /// How combinable groups are chosen in the LSQ.
        policy: CombinePolicy,
    },
}

impl PortConfig {
    /// Checks the configuration for degenerate values (zero ports/banks,
    /// bank counts that are not powers of two, zero-entry line buffers or
    /// store queues).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            PortConfig::Ideal { ports } | PortConfig::Replicated { ports } => {
                if ports == 0 {
                    return Err(format!("{self:?}: port count must be at least 1"));
                }
            }
            PortConfig::Banked { banks, .. } => {
                if banks == 0 || !banks.is_power_of_two() {
                    return Err(format!("{self:?}: banks must be a power of two >= 1"));
                }
            }
            PortConfig::Lbic {
                banks,
                line_ports,
                store_queue,
                ..
            } => {
                if banks == 0 || !banks.is_power_of_two() {
                    return Err(format!("{self:?}: banks must be a power of two >= 1"));
                }
                if line_ports == 0 {
                    return Err(format!("{self:?}: line buffer needs at least one port"));
                }
                if store_queue == 0 {
                    return Err(format!("{self:?}: store queue needs at least one entry"));
                }
            }
        }
        Ok(())
    }

    /// Builds the model after [`validate`](Self::validate)-ing, so a bad
    /// configuration surfaces as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns the validation failure for degenerate configurations.
    pub fn try_build(&self, line_size: u64) -> Result<Box<dyn PortModel>, String> {
        self.validate()?;
        Ok(self.build(line_size))
    }

    /// Builds the model for a cache with the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero ports/banks, bank counts
    /// that are not powers of two, zero-entry line buffers). Use
    /// [`try_build`](Self::try_build) to get an error instead.
    pub fn build(&self, line_size: u64) -> Box<dyn PortModel> {
        match *self {
            PortConfig::Ideal { ports } => Box::new(IdealPorts::new(ports)),
            PortConfig::Replicated { ports } => Box::new(ReplicatedPorts::new(ports)),
            PortConfig::Banked { banks, select } => Box::new(BankedPorts::with_mapper(
                BankMapper::with_select(select, banks, line_size),
            )),
            PortConfig::Lbic {
                banks,
                line_ports,
                store_queue,
                policy,
            } => Box::new(Lbic::new(banks, line_ports, store_queue, line_size, policy)),
        }
    }

    /// A traditional multi-bank configuration with the paper's bit
    /// selection.
    pub fn banked(banks: u32) -> Self {
        PortConfig::Banked {
            banks,
            select: BankSelect::BitSelect,
        }
    }

    /// A standard LBIC configuration with the defaults used throughout the
    /// paper's evaluation: an 8-entry per-bank store queue and the
    /// leading-request combining policy (§5.2).
    pub fn lbic(banks: u32, line_ports: usize) -> Self {
        PortConfig::Lbic {
            banks,
            line_ports,
            store_queue: 8,
            policy: CombinePolicy::LeadingRequest,
        }
    }

    /// Serializes the configuration with stable wire tags, so snapshots
    /// written by one build decode in another.
    pub fn save_state(&self, w: &mut StateWriter) {
        match *self {
            PortConfig::Ideal { ports } => {
                w.put_u8(0);
                w.put_usize(ports);
            }
            PortConfig::Replicated { ports } => {
                w.put_u8(1);
                w.put_usize(ports);
            }
            PortConfig::Banked { banks, select } => {
                w.put_u8(2);
                w.put_u32(banks);
                w.put_u8(bank_select_tag(select));
            }
            PortConfig::Lbic {
                banks,
                line_ports,
                store_queue,
                policy,
            } => {
                w.put_u8(3);
                w.put_u32(banks);
                w.put_usize(line_ports);
                w.put_usize(store_queue);
                w.put_u8(match policy {
                    CombinePolicy::LeadingRequest => 0,
                    CombinePolicy::LargestGroup => 1,
                });
            }
        }
    }

    /// Decodes a configuration written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on an unknown variant or policy tag, or any
    /// decode error.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(PortConfig::Ideal {
                ports: r.get_usize()?,
            }),
            1 => Ok(PortConfig::Replicated {
                ports: r.get_usize()?,
            }),
            2 => Ok(PortConfig::Banked {
                banks: r.get_u32()?,
                select: bank_select_from_tag(r.get_u8()?)?,
            }),
            3 => Ok(PortConfig::Lbic {
                banks: r.get_u32()?,
                line_ports: r.get_usize()?,
                store_queue: r.get_usize()?,
                policy: match r.get_u8()? {
                    0 => CombinePolicy::LeadingRequest,
                    1 => CombinePolicy::LargestGroup,
                    other => {
                        return Err(SnapError::Corrupt(format!(
                            "unknown combine-policy tag {other}"
                        )))
                    }
                },
            }),
            other => Err(SnapError::Corrupt(format!(
                "unknown port-config tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_expected_labels_and_peaks() {
        let cases: Vec<(PortConfig, &str, usize)> = vec![
            (PortConfig::Ideal { ports: 4 }, "True-4", 4),
            (PortConfig::Replicated { ports: 2 }, "Repl-2", 2),
            (PortConfig::banked(16), "Bank-16", 16),
            (PortConfig::lbic(4, 2), "LBIC-4x2", 8),
        ];
        for (cfg, label, peak) in cases {
            let m = cfg.build(32);
            assert_eq!(m.label(), label);
            assert_eq!(m.peak_per_cycle(), peak);
        }
    }

    #[test]
    fn config_codec_roundtrips_every_variant() {
        let cases = [
            PortConfig::Ideal { ports: 4 },
            PortConfig::Replicated { ports: 2 },
            PortConfig::Banked {
                banks: 8,
                select: BankSelect::XorFold,
            },
            PortConfig::Lbic {
                banks: 4,
                line_ports: 2,
                store_queue: 8,
                policy: CombinePolicy::LargestGroup,
            },
        ];
        for cfg in cases {
            let mut w = StateWriter::new();
            cfg.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = StateReader::new(&bytes);
            assert_eq!(PortConfig::load_state(&mut r).unwrap(), cfg);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn config_codec_rejects_unknown_tag() {
        let mut w = StateWriter::new();
        w.put_u8(99);
        let bytes = w.into_bytes();
        assert!(matches!(
            PortConfig::load_state(&mut StateReader::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn lbic_helper_uses_defaults() {
        match PortConfig::lbic(2, 4) {
            PortConfig::Lbic {
                banks,
                line_ports,
                store_queue,
                policy,
            } => {
                assert_eq!(banks, 2);
                assert_eq!(line_ports, 4);
                assert_eq!(store_queue, 8);
                assert_eq!(policy, CombinePolicy::LeadingRequest);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
