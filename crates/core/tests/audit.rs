//! Property tests for the invariant auditor and fault injector: clean
//! arbitration never raises a violation, and every injected fault is
//! reported within the cycle it corrupts (DESIGN.md §8).

use proptest::prelude::*;

use hbdc_core::{CombinePolicy, FaultClass, FaultInjector, MemRequest, PortConfig, PortModel};

fn arb_request() -> impl Strategy<Value = MemRequest> {
    (0u64..4096, any::<bool>()).prop_map(|(slot, is_store)| {
        let addr = slot * 8 % 0x20000;
        MemRequest {
            id: slot,
            addr,
            is_store,
        }
    })
}

fn arb_ready() -> impl Strategy<Value = Vec<MemRequest>> {
    prop::collection::vec(arb_request(), 0..40)
}

fn all_configs() -> Vec<PortConfig> {
    vec![
        PortConfig::Ideal { ports: 1 },
        PortConfig::Ideal { ports: 7 },
        PortConfig::Replicated { ports: 3 },
        PortConfig::banked(4),
        PortConfig::banked(16),
        PortConfig::lbic(2, 2),
        PortConfig::lbic(4, 4),
        PortConfig::Lbic {
            banks: 4,
            line_ports: 2,
            store_queue: 2,
            policy: CombinePolicy::LargestGroup,
        },
    ]
}

/// Every (config, fault class) pair the injector accepts.
fn all_injectable() -> Vec<(PortConfig, FaultClass)> {
    let mut pairs = Vec::new();
    for cfg in all_configs() {
        for class in [
            FaultClass::BankDoubleGrant,
            FaultClass::CrossLineGrant,
            FaultClass::CombiningOverflow,
            FaultClass::StoreBroadcastOverlap,
            FaultClass::DuplicateGrant,
            FaultClass::PeakOverflow,
        ] {
            if FaultInjector::new(cfg, 32, class, 1).is_ok() {
                pairs.push((cfg, class));
            }
        }
    }
    pairs
}

proptest! {
    /// The auditor is a pure observer with no false positives: every
    /// uncorrupted arbitration round passes every model's own rules.
    #[test]
    fn clean_rounds_have_zero_violations(
        rounds in prop::collection::vec(arb_ready(), 1..16),
    ) {
        for config in all_configs() {
            let mut model = config.build(32);
            let mut out = Vec::new();
            for ready in &rounds {
                let granted = model.arbitrate(ready);
                model.audit_round(ready, &granted, &mut out);
                prop_assert!(
                    out.is_empty(),
                    "{}: clean round flagged: {:?}",
                    model.label(),
                    out
                );
                model.tick();
            }
        }
    }

    /// Completeness of detection: whenever the injector corrupts a round
    /// (any class, any model it applies to), the audit of that same round
    /// reports at least one violation.
    #[test]
    fn every_fired_injection_is_detected_same_round(
        rounds in prop::collection::vec(arb_ready(), 1..16),
        seed in any::<u64>(),
    ) {
        for (cfg, class) in all_injectable() {
            let mut inj = FaultInjector::new(cfg, 32, class, seed).unwrap();
            let mut out = Vec::new();
            for ready in &rounds {
                let granted = inj.arbitrate(ready);
                out.clear();
                inj.audit_round(ready, &granted, &mut out);
                if inj.fired_last_round() {
                    prop_assert!(
                        !out.is_empty(),
                        "{:?} on {:?}: injected fault escaped the auditor \
                         (ready {:?}, granted {:?})",
                        class,
                        cfg,
                        ready,
                        granted
                    );
                }
                inj.tick();
            }
        }
    }
}

/// Each of the four paper-level fault classes actually fires (and is
/// caught) on a ready mix crafted to make it eligible — the proptest above
/// only proves "fired implies caught"; this proves "fires at all".
#[test]
fn all_four_fault_classes_fire_and_are_caught() {
    let same_bank_loads = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x100)];
    let cross_line = vec![MemRequest::load(0, 0x00), MemRequest::load(1, 0x100)];
    // Three same-line references against a 2-ported line buffer.
    let combine_heavy = vec![
        MemRequest::load(0, 0x00),
        MemRequest::load(1, 0x08),
        MemRequest::load(2, 0x10),
    ];
    let store_mix = vec![MemRequest::store(0, 0x00), MemRequest::load(1, 0x40)];
    let cases: Vec<(PortConfig, FaultClass, &str, &Vec<MemRequest>)> = vec![
        (
            PortConfig::banked(4),
            FaultClass::BankDoubleGrant,
            "banked-double-grant",
            &same_bank_loads,
        ),
        (
            PortConfig::lbic(4, 2),
            FaultClass::CrossLineGrant,
            "lbic-cross-line",
            &cross_line,
        ),
        (
            PortConfig::lbic(4, 2),
            FaultClass::CombiningOverflow,
            "lbic-combining-overflow",
            &combine_heavy,
        ),
        (
            PortConfig::Replicated { ports: 4 },
            FaultClass::StoreBroadcastOverlap,
            "repl-store-overlap",
            &store_mix,
        ),
    ];
    for (cfg, class, rule, ready) in cases {
        let mut inj = FaultInjector::new(cfg, 32, class, 0xC0FFEE).unwrap();
        let mut caught = false;
        for _ in 0..128 {
            let granted = inj.arbitrate(ready);
            let mut out = Vec::new();
            inj.audit_round(ready, &granted, &mut out);
            if inj.fired_last_round() {
                assert!(
                    out.iter().any(|v| v.rule == rule),
                    "{class:?}: expected rule {rule}, got {out:?}"
                );
                caught = true;
                break;
            }
            inj.tick();
        }
        assert!(caught, "{class:?} never fired on {cfg:?}");
    }
}
