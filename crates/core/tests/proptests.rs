//! Property tests: structural invariants of every port model under
//! arbitrary ready lists (DESIGN.md §7).

use proptest::prelude::*;

use hbdc_core::{CombinePolicy, MemRequest, PortConfig};
use hbdc_mem::BankMapper;

fn arb_request() -> impl Strategy<Value = MemRequest> {
    (0u64..4096, any::<bool>()).prop_map(|(slot, is_store)| {
        // Addresses over a 128KB region, 8-byte aligned.
        let addr = slot * 8 % 0x20000;
        MemRequest {
            id: slot,
            addr,
            is_store,
        }
    })
}

fn arb_ready() -> impl Strategy<Value = Vec<MemRequest>> {
    prop::collection::vec(arb_request(), 0..40)
}

fn all_configs() -> Vec<PortConfig> {
    vec![
        PortConfig::Ideal { ports: 1 },
        PortConfig::Ideal { ports: 7 },
        PortConfig::Replicated { ports: 3 },
        PortConfig::banked(4),
        PortConfig::banked(16),
        PortConfig::lbic(2, 2),
        PortConfig::lbic(4, 4),
        PortConfig::Lbic {
            banks: 4,
            line_ports: 2,
            store_queue: 2,
            policy: CombinePolicy::LargestGroup,
        },
    ]
}

proptest! {
    #[test]
    fn grants_are_sorted_unique_bounded(rounds in prop::collection::vec(arb_ready(), 1..20)) {
        for config in all_configs() {
            let mut model = config.build(32);
            for ready in &rounds {
                let granted = model.arbitrate(ready);
                model.tick();
                prop_assert!(granted.len() <= model.peak_per_cycle(), "{}", model.label());
                prop_assert!(granted.windows(2).all(|w| w[0] < w[1]),
                    "{}: not strictly increasing", model.label());
                prop_assert!(granted.iter().all(|&i| i < ready.len()),
                    "{}: index out of range", model.label());
            }
        }
    }

    #[test]
    fn ideal_grants_exactly_the_oldest_prefix(ready in arb_ready()) {
        let mut model = PortConfig::Ideal { ports: 5 }.build(32);
        let granted = model.arbitrate(&ready);
        let expect: Vec<usize> = (0..ready.len().min(5)).collect();
        prop_assert_eq!(granted, expect);
    }

    #[test]
    fn replicated_stores_are_always_alone(rounds in prop::collection::vec(arb_ready(), 1..10)) {
        let mut model = PortConfig::Replicated { ports: 4 }.build(32);
        for ready in &rounds {
            let granted = model.arbitrate(ready);
            model.tick();
            let has_store = granted.iter().any(|&i| ready[i].is_store);
            if has_store {
                prop_assert_eq!(granted.len(), 1, "a broadcast store must go alone");
            }
        }
    }

    #[test]
    fn banked_grants_at_most_one_per_bank(ready in arb_ready()) {
        let mapper = BankMapper::bit_select(4, 32);
        let mut model = PortConfig::banked(4).build(32);
        let granted = model.arbitrate(&ready);
        let mut seen = [false; 4];
        for &i in &granted {
            let bank = mapper.bank_of(ready[i].addr) as usize;
            prop_assert!(!seen[bank], "two grants in bank {}", bank);
            seen[bank] = true;
        }
    }

    #[test]
    fn banked_is_age_greedy(ready in arb_ready()) {
        // Every non-granted request must conflict with an older grant in
        // its bank (work conservation).
        let mapper = BankMapper::bit_select(4, 32);
        let mut model = PortConfig::banked(4).build(32);
        let granted = model.arbitrate(&ready);
        for (i, r) in ready.iter().enumerate() {
            if granted.contains(&i) {
                continue;
            }
            let bank = mapper.bank_of(r.addr);
            let blocked_by_older = granted
                .iter()
                .any(|&g| g < i && mapper.bank_of(ready[g].addr) == bank);
            prop_assert!(blocked_by_older, "request {i} refused without cause");
        }
    }

    #[test]
    fn lbic_grants_single_line_per_bank(ready in arb_ready()) {
        let mapper = BankMapper::bit_select(4, 32);
        for policy in [CombinePolicy::LeadingRequest, CombinePolicy::LargestGroup] {
            let mut model = PortConfig::Lbic {
                banks: 4,
                line_ports: 3,
                store_queue: 8,
                policy,
            }
            .build(32);
            let granted = model.arbitrate(&ready);
            let mut per_bank: [Option<u64>; 4] = [None; 4];
            let mut counts = [0usize; 4];
            for &i in &granted {
                let bank = mapper.bank_of(ready[i].addr) as usize;
                let line = ready[i].addr >> 5;
                match per_bank[bank] {
                    None => per_bank[bank] = Some(line),
                    Some(l) => prop_assert_eq!(l, line,
                        "{:?}: two lines granted in bank {}", policy, bank),
                }
                counts[bank] += 1;
                prop_assert!(counts[bank] <= 3, "line-port cap exceeded");
            }
        }
    }

    #[test]
    fn lbic_dominates_banked_grant_count(ready in arb_ready()) {
        // With an empty store queue, the LBIC's grant set in a single
        // round is always at least as large as traditional banking's: the
        // leading requests coincide, and combining only adds.
        let mut banked = PortConfig::banked(4).build(32);
        let mut lbic = PortConfig::lbic(4, 4).build(32);
        let b = banked.arbitrate(&ready).len();
        let l = lbic.arbitrate(&ready).len();
        prop_assert!(l >= b, "LBIC granted {l} < banked {b}");
    }

    #[test]
    fn stats_account_every_offer(rounds in prop::collection::vec(arb_ready(), 1..12)) {
        for config in all_configs() {
            let mut model = config.build(32);
            let mut offered = 0u64;
            let mut granted = 0u64;
            for ready in &rounds {
                offered += ready.len() as u64;
                granted += model.arbitrate(ready).len() as u64;
                model.tick();
            }
            prop_assert_eq!(model.stats().offered(), offered);
            prop_assert_eq!(model.stats().granted(), granted);
            prop_assert_eq!(model.stats().cycles(), rounds.len() as u64);
        }
    }
}
