//! Locality-shape tests: each analog's reference stream must reproduce
//! the qualitative Figure 3 signature the paper's argument rests on.

use hbdc_cpu::Emulator;
use hbdc_trace::{ConsecutiveMapping, MemRef};
use hbdc_workloads::{all, by_name, Scale, Suite};

fn figure3_of(name: &str) -> ConsecutiveMapping {
    let bench = by_name(name).expect("registered benchmark");
    let program = bench.build(Scale::Small);
    let mut emu = Emulator::new(&program);
    let mut f3 = ConsecutiveMapping::new(4, 32);
    while let Some(di) = emu.step() {
        if let Some(addr) = di.addr {
            f3.record(if di.inst.is_store() {
                MemRef::store(addr)
            } else {
                MemRef::load(addr)
            });
        }
    }
    f3
}

#[test]
fn swim_is_dominated_by_same_bank_different_line() {
    // Paper: swim's B-diff-line is the worst in the study (33.8%); its
    // aliasing arrays are the LBIC's hardest case.
    let f3 = figure3_of("swim");
    assert!(
        f3.diff_line_fraction() > 0.5,
        "swim B-diff = {}",
        f3.diff_line_fraction()
    );
    assert!(
        f3.diff_line_fraction() > f3.same_line_fraction(),
        "swim must be conflict-dominated"
    );
}

#[test]
fn string_codes_are_same_line_rich() {
    // Paper: "for programs like gcc, li and perl, more than 40% of all
    // consecutive references access the same line in the same bank."
    for name in ["gcc", "perl", "li"] {
        let f3 = figure3_of(name);
        assert!(
            f3.same_line_fraction() > 0.40,
            "{name} same-line = {}",
            f3.same_line_fraction()
        );
    }
}

#[test]
fn int_suite_has_more_same_line_than_fp_suite() {
    // Paper: SPECint same-line averages 35.4% vs SPECfp 21.8%.
    let mut int = Vec::new();
    let mut fp = Vec::new();
    for bench in all() {
        let f3 = figure3_of(bench.name());
        match bench.suite() {
            Suite::Int => int.push(f3.same_line_fraction()),
            Suite::Fp => fp.push(f3.same_line_fraction()),
        }
    }
    let int_avg = int.iter().sum::<f64>() / int.len() as f64;
    let fp_avg = fp.iter().sum::<f64>() / fp.len() as f64;
    assert!(
        int_avg > fp_avg,
        "same-line: int {int_avg} must exceed fp {fp_avg}"
    );
}

#[test]
fn fp_suite_has_more_diff_line_conflicts_than_int_suite() {
    // Paper: SPECfp B-diff-line averages 21.4% vs SPECint 12.9% — the
    // non-unit strides of FP codes cross lines within a bank.
    let mut int = Vec::new();
    let mut fp = Vec::new();
    for bench in all() {
        let f3 = figure3_of(bench.name());
        match bench.suite() {
            Suite::Int => int.push(f3.diff_line_fraction()),
            Suite::Fp => fp.push(f3.diff_line_fraction()),
        }
    }
    let int_avg = int.iter().sum::<f64>() / int.len() as f64;
    let fp_avg = fp.iter().sum::<f64>() / fp.len() as f64;
    assert!(
        fp_avg > int_avg,
        "B-diff: fp {fp_avg} must exceed int {int_avg}"
    );
}

#[test]
fn every_stream_is_skewed_toward_same_bank() {
    // Paper: "most applications show a skewed probability toward same
    // bank" — above the uniform 25%.
    for bench in all() {
        let f3 = figure3_of(bench.name());
        assert!(
            f3.same_bank_fraction() > 0.25,
            "{}: same-bank {} not skewed",
            bench.name(),
            f3.same_bank_fraction()
        );
    }
}

#[test]
fn miss_rate_ordering_matches_the_paper() {
    // Paper Table 2 orderings that drive the results: li has by far the
    // lowest miss rate; the FP codes su2cor/wave5/hydro2d the highest.
    use hbdc_trace::TraceCacheSim;
    let miss = |name: &str| {
        let bench = by_name(name).expect("registered");
        let mut emu = Emulator::new(&bench.build(Scale::Small));
        let mut sim = TraceCacheSim::paper_l1();
        while let Some(di) = emu.step() {
            if let Some(addr) = di.addr {
                sim.access(if di.inst.is_store() {
                    MemRef::store(addr)
                } else {
                    MemRef::load(addr)
                });
            }
        }
        sim.stats().miss_rate()
    };
    let li = miss("li");
    for name in ["compress", "gcc", "go", "perl"] {
        assert!(li < miss(name), "li must have the lowest INT miss rate");
    }
    for name in ["su2cor", "wave5", "hydro2d"] {
        assert!(
            miss(name) > 0.08,
            "{name} must be strongly miss-bound like the paper's FP codes"
        );
    }
}
