//! `li` analog: cons-cell list interpretation.
//!
//! SPEC95 `130.li` is a Lisp interpreter: nearly half of its instructions
//! touch memory (47.6%, the highest in Table 2), its working set of cons
//! cells is small enough that the 32KB L1 almost never misses (0.84%),
//! and allocation plus `rplaca`-style mutation give it a 0.59 store-to-load
//! ratio. Figure 3 shows over 40% of its consecutive references hitting
//! the same cache line — car/cdr pairs share a line.
//!
//! The analog interprets list operations over a compact 16KB heap of
//! 16-byte cons cells: each step pops an expression cell, chases `car` and
//! `cdr` (same line), allocates a fresh cell from a bump/recycle
//! allocator (two stores), and pushes the result. Two interpreter
//! contexts run interleaved for memory-level parallelism.

use crate::spec::Scale;

/// Assembly source for the `li` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 2100 * scale.factor();
    format!(
        r#"
# li analog: cons-cell interpreter over a compact heap, two contexts.
.data
heap:   .space 24576      # 1536 cells x 16 bytes (car, cdr)
stackA: .space 4096
stackB: .space 4096
.text
main:
    # ---- init: weave the heap into two interleaved free lists ----
    la   r8, heap
    li   r9, 1535
hinit:
    # cell.car = small tagged value, cell.cdr = next cell offset
    slli r10, r9, 3
    add  r10, r10, r9        # car = 9*i: low tag bits vary
    sd   r10, 0(r8)          # car: tagged int
    addi r11, r8, 16
    sd   r11, 8(r8)          # cdr: next cell address
    addi r8, r8, 16
    addi r9, r9, -1
    bnez r9, hinit
    la   r10, heap
    sd   r10, 0(r8)          # last cell: car -> heap base
    sd   r10, 8(r8)          # cdr -> heap base (circular)

    # ---- interpreter state ----
    la   r8, heap            # context A cursor
    la   r9, heap+12288      # context B cursor
    la   r12, stackA
    la   r13, stackB
    li   r14, 0              # A stack offset
    li   r16, 0              # B stack offset
    li   r15, {iters}
loop:
    # ---- context A: eval one cell ----
    ld   r17, 0(r8)          # car (same line as cdr)
    ld   r18, 8(r8)          # cdr
    ld   r20, 0(r18)         # peek the next cell's car
    add  r19, r17, r20       # "apply": tag arithmetic
    sd   r19, 0(r8)          # rplaca: mutate in place
    add  r22, r12, r14
    sd   r19, 0(r22)         # push result
    addi r14, r14, 8
    andi r14, r14, 4095      # eval stack wraps
    mov  r8, r18             # follow cdr
    # ---- context B ----
    ld   r23, 0(r9)
    ld   r24, 8(r9)
    ld   r26, 0(r24)
    add  r25, r23, r26
    sd   r25, 0(r9)
    add  r27, r13, r16
    sd   r25, 0(r27)
    addi r16, r16, 8
    andi r16, r16, 4095
    mov  r9, r24
    addi r15, r15, -1
    bnez r15, loop
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_li_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 47.6% memory instructions (highest), store-to-load 0.59.
        assert!(
            (38.0..52.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.5..0.85).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
