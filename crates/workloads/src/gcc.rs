//! `gcc` analog: IR-tree constant folding and flag propagation.
//!
//! SPEC95 `126.gcc` is pointer-rich compiler code: it walks expression
//! trees and RTL chains, reading several fields of each node (which sit in
//! the same cache line — the source of its strong same-line locality) and
//! updating some of them. Table 2: 36.7% memory instructions, 0.59
//! stores per load, 2.4% L1 miss rate.
//!
//! The analog builds a forest of 16-byte IR nodes (`op`, `left`, `right`,
//! `flags`) with pseudo-random child links inside a ~44KB node pool, then
//! runs three independent folding walkers over it: each step loads the
//! node's three operand fields (same line), folds a value, stores the
//! updated `flags` word and — on three quarters of the steps — a folded
//! `right` field, then follows the `left` link.

use crate::spec::Scale;

/// Assembly source for the `gcc` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 1500 * scale.factor();
    // 2304 nodes x 16B = 36KB: just over the 32KB L1 for a low-but-real miss rate.
    format!(
        r#"
# gcc analog: IR-node folding over a pointer-linked pool, three walkers.
.data
nodes:   .space 36864     # 2304 nodes x 16 bytes: op, left, right, flags
.text
main:
    # ---- init: link nodes pseudo-randomly, fill fields ----
    la   r8, nodes
    li   r9, 2304
    li   r10, 2463534242
    li   r20, 2654435761
    li   r28, 2304
init:
    mul  r10, r10, r20
    addi r10, r10, 40503
    srli r11, r10, 13
    rem  r12, r11, r28       # successor node index
    slli r12, r12, 4         # byte offset
    sw   r11, 0(r8)          # op
    sw   r12, 4(r8)          # left link (offset form)
    sw   r10, 8(r8)          # right value
    sw   r0, 12(r8)          # flags
    addi r8, r8, 16
    addi r9, r9, -1
    bnez r9, init

    # ---- main loop: three independent walkers ----
    la   r14, nodes
    li   r29, 36864          # pool size, for walk wraparound
    li   r8, 0               # walker A offset
    li   r9, 16384           # walker B offset
    li   r10, 24576          # walker C offset
    li   r15, {iters}
loop:
    # walker A
    add  r16, r14, r8
    lw   r17, 0(r16)         # op
    lw   r18, 4(r16)         # left link
    lw   r19, 8(r16)         # right value
    xor  r22, r17, r19       # fold
    add  r22, r22, r18
    sw   r22, 12(r16)        # update flags
    andi r23, r17, 3
    beqz r23, skipA
    sw   r22, 8(r16)         # fold into right on odd ops
skipA:
    mov  r8, r18             # follow left
    # walker B
    add  r16, r14, r9
    lw   r17, 0(r16)
    lw   r18, 4(r16)
    lw   r19, 8(r16)
    xor  r22, r17, r19
    add  r22, r22, r18
    sw   r22, 12(r16)
    andi r23, r17, 3
    beqz r23, skipB
    sw   r22, 8(r16)
skipB:
    # follow left, perturbed by the evolving fold so the walk is aperiodic
    slli r24, r22, 4
    add  r24, r24, r18
    andi r24, r24, 65520
    blt  r24, r29, wrapB
    sub  r24, r24, r29
wrapB:
    mov  r9, r24
    # walker C
    add  r16, r14, r10
    lw   r17, 0(r16)
    lw   r18, 4(r16)
    lw   r19, 8(r16)
    xor  r22, r17, r19
    add  r22, r22, r18
    sw   r22, 12(r16)
    andi r23, r17, 3
    beqz r23, skipC
    sw   r22, 8(r16)
skipC:
    # follow left, perturbed by the evolving fold so the walk is aperiodic
    slli r24, r22, 4
    add  r24, r24, r18
    andi r24, r24, 65520
    blt  r24, r29, wrapC
    sub  r24, r24, r29
wrapC:
    mov  r10, r24
    addi r15, r15, -1
    bnez r15, loop
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_gcc_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 36.7% memory instructions, store-to-load 0.59.
        assert!(
            (26.0..40.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.45..0.8).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
