//! `go` analog: board-position evaluation with pattern lookups.
//!
//! SPEC95 `099.go` evaluates Go positions: byte-board neighbourhood reads,
//! liberty counting, and pattern-table probes, with comparatively little
//! stored state — Table 2 shows the lowest memory fraction of the integer
//! suite (28.7%) and a modest 0.36 store-to-load ratio.
//!
//! The analog sweeps a 64x64 byte board reading each point's four
//! neighbours (heavy same-line locality along rows), computes an influence
//! score with a dose of pure ALU work (keeping the memory fraction low),
//! probes a 48KB pattern table (the miss-rate source), and writes the
//! score back to an influence map on roughly a third of the points.

use crate::spec::Scale;

/// Assembly source for the `go` analog.
pub(crate) fn source(scale: Scale) -> String {
    let sweeps = 4 * scale.factor();
    format!(
        r#"
# go analog: 64x64 board evaluation with pattern-table probes.
.data
board:    .space 4096      # 64x64 bytes
infl:     .space 16384     # 64x64 words
patterns: .space 49152     # 12288-word pattern table
.text
main:
    # ---- init: fill board with LCG stones ----
    la   r8, board
    li   r9, 4096
    li   r10, 123456789
    li   r20, 1103515245
binit:
    mul  r10, r10, r20
    addi r10, r10, 12345
    srli r11, r10, 16
    andi r11, r11, 3
    sb   r11, 0(r8)
    addi r8, r8, 1
    addi r9, r9, -1
    bnez r9, binit

    # ---- outer: row-sized evaluation runs with wraparound ----
    li   r15, {sweeps}
    la   r28, board
    li   r8, 64              # point offset (skip first row)
sweep:
    li   r14, 124            # point groups per run (4 points each)
    la   r9, infl
    la   r27, patterns
point:
    add  r22, r28, r8
    add  r24, r9, r8
    # ---- point 0 of the group ----
    lb   r16, 0(r22)        # stone
    lb   r17, 1(r22)       # east neighbour (same line)
    lb   r19, 64(r22)      # south neighbour
    slli r23, r16, 2
    add  r23, r23, r17
    sub  r23, r23, r19
    slli r26, r23, 9
    add  r26, r26, r8
    andi r26, r26, 12287
    slli r26, r26, 2
    add  r26, r26, r27
    lw   r26, 0(r26)         # pattern score
    add  r25, r23, r26
    sw   r25, 0(r24)        # write influence
    andi r26, r23, 3
    bnez r26, skipw0
    andi r26, r25, 3
    sb   r26, 0(r22)
skipw0:
    # ---- point 1 of the group ----
    lb   r16, 1(r22)        # stone
    lb   r17, 2(r22)       # east neighbour (same line)
    lb   r19, 65(r22)      # south neighbour
    slli r23, r16, 2
    add  r23, r23, r17
    sub  r23, r23, r19
    slli r26, r23, 9
    add  r26, r26, r8
    andi r26, r26, 12287
    slli r26, r26, 2
    add  r26, r26, r27
    lw   r26, 0(r26)         # pattern score
    add  r25, r23, r26
    sw   r25, 1(r24)        # write influence
    andi r26, r23, 3
    bnez r26, skipw1
    andi r26, r25, 3
    sb   r26, 1(r22)
skipw1:
    # ---- point 2 of the group ----
    lb   r16, 2(r22)        # stone
    lb   r17, 3(r22)       # east neighbour (same line)
    lb   r19, 66(r22)      # south neighbour
    slli r23, r16, 2
    add  r23, r23, r17
    sub  r23, r23, r19
    slli r26, r23, 9
    add  r26, r26, r8
    andi r26, r26, 12287
    slli r26, r26, 2
    add  r26, r26, r27
    lw   r26, 0(r26)         # pattern score
    add  r25, r23, r26
    sw   r25, 2(r24)        # write influence
    andi r26, r23, 3
    bnez r26, skipw2
    andi r26, r25, 3
    sb   r26, 2(r22)
skipw2:
    # ---- point 3 of the group ----
    lb   r16, 3(r22)        # stone
    lb   r17, 4(r22)       # east neighbour (same line)
    lb   r19, 67(r22)      # south neighbour
    slli r23, r16, 2
    add  r23, r23, r17
    sub  r23, r23, r19
    slli r26, r23, 9
    add  r26, r26, r8
    andi r26, r26, 12287
    slli r26, r26, 2
    add  r26, r26, r27
    lw   r26, 0(r26)         # pattern score
    add  r25, r23, r26
    sw   r25, 3(r24)        # write influence
    andi r26, r23, 3
    bnez r26, skipw3
    andi r26, r25, 3
    sb   r26, 3(r22)
skipw3:
    addi r8, r8, 4
    andi r8, r8, 4031        # wrap inside the board (minus last row)
    addi r14, r14, -1
    bnez r14, point
    addi r15, r15, -1
    bnez r15, sweep
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_go_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 28.7% memory instructions, store-to-load 0.36.
        assert!(
            (17.0..30.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(mix.store_to_load() < 0.55, "s/l = {}", mix.store_to_load());
    }
}
