//! `compress` analog: LZW-style dictionary compression.
//!
//! SPEC95 `129.compress` spends its time hashing input characters against
//! a code dictionary and appending output codes — a byte-sequential input
//! scan, pseudo-random dictionary probes, and a *very* high store ratio
//! (0.81 stores per load, the highest in Table 2) from dictionary inserts
//! and output emission.
//!
//! The analog compresses a pseudo-random byte stream with a 2-entry-bucket
//! hash dictionary. Four independent compression streams are interleaved so
//! a wide machine can extract memory parallelism, matching the ILP profile
//! the paper reports (True-16 IPC 7.83). The dictionary (256KB) exceeds the
//! 32KB L1, producing the ~5% miss rate of the original.

use crate::spec::Scale;

/// Assembly source for the `compress` analog.
///
/// Register map: r8/r9 input cursors, r10/r11 current codes, r12/r13
/// output cursors, r14 htab base, r15 iteration count, r16-r19 scratch A,
/// r22-r26 scratch B, r20/r21 LCG constants.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 580 * scale.factor();
    format!(
        r#"
# compress analog: LZW-style dictionary compression, two streams.
.data
input:   .space 2048
htab:    .space 262144    # 16384 buckets x 16 bytes (2-way + count)
counts:  .space 16384     # per-bucket emission counters
outbuf:  .space 16384

.text
main:
    # ---- init: fill input[] with LCG bytes ----
    la   r8, input
    li   r9, 2048
    li   r10, 88172645463325252
    li   r20, 6364136223846793005
init:
    mul  r10, r10, r20
    addi r10, r10, 1442695040888963407
    srli r11, r10, 33
    sb   r11, 0(r8)
    addi r8, r8, 1
    addi r9, r9, -1
    bnez r9, init

    # ---- main loop: four interleaved LZW streams ----
    li   r8, 0              # stream A input offset
    li   r9, 512            # stream B input offset
    li   r1, 1024           # stream C input offset
    li   r3, 1536           # stream D input offset
    li   r10, 1             # code A
    li   r11, 2             # code B
    li   r2, 3              # code C
    li   r4, 4              # code D
    la   r12, input
    la   r14, htab
    li   r15, {iters}
loop:
    # ---- stream A ----
    add  r16, r12, r8
    lb   r17, 0(r16)            # input byte
    xor  r18, r10, r17
    slli r18, r18, 4
    andi r18, r18, 262128       # bucket offset (16B two-way buckets)
    add  r18, r18, r14          # bucket address
    slli r19, r10, 8
    or   r19, r19, r17          # wanted entry = code<<8 | byte
    lw   r22, 0(r18)            # probe way 0
    lw   r23, 4(r18)            # probe way 1 (same line)
    lw   r24, 8(r18)            # bucket emission count (same line)
    addi r24, r24, 1
    sw   r24, 8(r18)            # bump count
    sb   r10, 0(r16)         # recode the input byte in place
    beq  r22, r19, hitA
    beq  r23, r19, hitA
    sw   r19, 0(r18)            # insert new code
    andi r10, r17, 255       # restart code from byte
    j    contA
hitA:
    andi r10, r19, 4095      # extend code
contA:
    # ---- stream B ----
    add  r16, r12, r9
    lb   r17, 0(r16)            # input byte
    xor  r18, r11, r17
    slli r18, r18, 4
    andi r18, r18, 262128       # bucket offset (16B two-way buckets)
    add  r18, r18, r14          # bucket address
    slli r19, r11, 8
    or   r19, r19, r17          # wanted entry = code<<8 | byte
    lw   r22, 0(r18)            # probe way 0
    lw   r23, 4(r18)            # probe way 1 (same line)
    lw   r24, 8(r18)            # bucket emission count (same line)
    addi r24, r24, 1
    sw   r24, 8(r18)            # bump count
    sb   r11, 0(r16)         # recode the input byte in place
    beq  r22, r19, hitB
    beq  r23, r19, hitB
    sw   r19, 0(r18)            # insert new code
    andi r11, r17, 255       # restart code from byte
    j    contB
hitB:
    andi r11, r19, 4095      # extend code
contB:
    # ---- stream C ----
    add  r16, r12, r1
    lb   r17, 0(r16)            # input byte
    xor  r18, r2, r17
    slli r18, r18, 4
    andi r18, r18, 262128       # bucket offset (16B two-way buckets)
    add  r18, r18, r14          # bucket address
    slli r19, r2, 8
    or   r19, r19, r17          # wanted entry = code<<8 | byte
    lw   r22, 0(r18)            # probe way 0
    lw   r23, 4(r18)            # probe way 1 (same line)
    lw   r24, 8(r18)            # bucket emission count (same line)
    addi r24, r24, 1
    sw   r24, 8(r18)            # bump count
    sb   r2, 0(r16)         # recode the input byte in place
    beq  r22, r19, hitC
    beq  r23, r19, hitC
    sw   r19, 0(r18)            # insert new code
    andi r2, r17, 255       # restart code from byte
    j    contC
hitC:
    andi r2, r19, 4095      # extend code
contC:
    # ---- stream D ----
    add  r16, r12, r3
    lb   r17, 0(r16)            # input byte
    xor  r18, r4, r17
    slli r18, r18, 4
    andi r18, r18, 262128       # bucket offset (16B two-way buckets)
    add  r18, r18, r14          # bucket address
    slli r19, r4, 8
    or   r19, r19, r17          # wanted entry = code<<8 | byte
    lw   r22, 0(r18)            # probe way 0
    lw   r23, 4(r18)            # probe way 1 (same line)
    lw   r24, 8(r18)            # bucket emission count (same line)
    addi r24, r24, 1
    sw   r24, 8(r18)            # bump count
    sb   r4, 0(r16)         # recode the input byte in place
    beq  r22, r19, hitD
    beq  r23, r19, hitD
    sw   r19, 0(r18)            # insert new code
    andi r4, r17, 255       # restart code from byte
    j    contD
hitD:
    andi r4, r19, 4095      # extend code
contD:
    # ---- advance cursors (masked wraparound within each quarter) ----
    addi r8, r8, 1
    andi r8, r8, 511
    addi r9, r9, 1
    andi r9, r9, 511
    ori  r9, r9, 512
    addi r1, r1, 1
    andi r1, r1, 511
    ori  r1, r1, 1024
    addi r3, r3, 1
    andi r3, r3, 511
    ori  r3, r3, 1536
    addi r15, r15, -1
    bnez r15, loop
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000, "too short: {}", mix.total);
    }

    #[test]
    fn mix_is_in_compress_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 37.4% memory instructions, store-to-load 0.81.
        assert!(
            (24.0..38.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.6..0.95).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }

    #[test]
    fn scales_with_factor() {
        let t = measure(&source(Scale::Test)).total;
        let s = measure(&source(Scale::Small)).total;
        assert!(s > 5 * t, "Small ({s}) not much larger than Test ({t})");
    }
}
