//! Micro-kernels with analytically known access patterns.
//!
//! These are not benchmark analogs — they are *instruments*: tiny kernels
//! whose reference streams have a single, known property, used to
//! validate the port models (each micro-kernel is the best case for one
//! model and the worst case for another) and to demonstrate mechanisms in
//! examples.

use hbdc_isa::asm::assemble;
use hbdc_isa::Program;

/// A named micro-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroKernel {
    /// Bursts of references to a single cache line per iteration: ideal
    /// for LBIC combining, worst case for plain banking.
    SameLineBurst,
    /// Strided references that all land in one bank of a 4-bank cache:
    /// the bank-conflict worst case; more banks do not help.
    BankThrash,
    /// Stores only: the replicated cache's worst case (every access
    /// broadcasts).
    StoreStorm,
    /// A single dependent pointer chase: almost no memory parallelism, so
    /// every port model performs alike.
    PointerChase,
    /// Independent loads spread round-robin across banks: the multi-bank
    /// best case.
    BankFriendly,
}

impl MicroKernel {
    /// All micro-kernels.
    pub fn all() -> [MicroKernel; 5] {
        [
            MicroKernel::SameLineBurst,
            MicroKernel::BankThrash,
            MicroKernel::StoreStorm,
            MicroKernel::PointerChase,
            MicroKernel::BankFriendly,
        ]
    }

    /// The kernel's name.
    pub fn name(self) -> &'static str {
        match self {
            MicroKernel::SameLineBurst => "same-line-burst",
            MicroKernel::BankThrash => "bank-thrash",
            MicroKernel::StoreStorm => "store-storm",
            MicroKernel::PointerChase => "pointer-chase",
            MicroKernel::BankFriendly => "bank-friendly",
        }
    }

    /// Assembly source, running roughly `iters` iterations of the pattern.
    pub fn source(self, iters: u64) -> String {
        match self {
            MicroKernel::SameLineBurst => format!(
                ".data\nbuf: .space 8192\n.text\nmain:\n la r8, buf\n li r15, {iters}\nloop:\n \
                 lw r1, 0(r8)\n lw r2, 4(r8)\n lw r3, 8(r8)\n lw r4, 12(r8)\n \
                 lw r5, 16(r8)\n lw r6, 20(r8)\n lw r7, 24(r8)\n lw r9, 28(r8)\n \
                 addi r8, r8, 32\n andi r8, r8, 8191\n la r10, buf\n or r8, r8, r10\n \
                 addi r15, r15, -1\n bnez r15, loop\n halt\n"
            ),
            MicroKernel::BankThrash => format!(
                // Stride = 4 banks x 32B: successive lines, same bank.
                ".data\nbuf: .space 65536\n.text\nmain:\n li r8, 0\n la r11, buf\n \
                 li r15, {iters}\nloop:\n add r9, r11, r8\n \
                 lw r1, 0(r9)\n lw r2, 128(r9)\n lw r3, 256(r9)\n lw r4, 384(r9)\n \
                 addi r8, r8, 512\n andi r8, r8, 65535\n \
                 addi r15, r15, -1\n bnez r15, loop\n halt\n"
            ),
            MicroKernel::StoreStorm => format!(
                ".data\nbuf: .space 16384\n.text\nmain:\n li r8, 0\n la r11, buf\n \
                 li r15, {iters}\nloop:\n add r9, r11, r8\n \
                 sw r0, 0(r9)\n sw r0, 32(r9)\n sw r0, 64(r9)\n sw r0, 96(r9)\n \
                 addi r8, r8, 128\n andi r8, r8, 16383\n \
                 addi r15, r15, -1\n bnez r15, loop\n halt\n"
            ),
            MicroKernel::PointerChase => format!(
                // Init builds a single 1024-cell permutation cycle
                // (i -> i + 521 mod 1024; 521 is odd, so the cycle is
                // full-length); the loop chases it.
                ".data\nptrs: .space 8192\n.text\nmain:\n \
                 la r8, ptrs\n li r9, 1024\n li r12, 0\ninit:\n \
                 addi r10, r12, 521\n andi r10, r10, 1023\n \
                 slli r10, r10, 3\n la r11, ptrs\n add r10, r11, r10\n \
                 sd r10, 0(r8)\n addi r8, r8, 8\n addi r12, r12, 1\n \
                 addi r9, r9, -1\n bnez r9, init\n \
                 la r8, ptrs\n li r15, {iters}\nloop:\n \
                 ld r8, 0(r8)\n addi r15, r15, -1\n bnez r15, loop\n halt\n"
            ),
            MicroKernel::BankFriendly => format!(
                ".data\nbuf: .space 8192\n.text\nmain:\n li r8, 0\n la r11, buf\n \
                 li r15, {iters}\nloop:\n add r9, r11, r8\n \
                 lw r1, 0(r9)\n lw r2, 32(r9)\n lw r3, 64(r9)\n lw r4, 96(r9)\n \
                 addi r8, r8, 4\n andi r8, r8, 4095\n \
                 addi r15, r15, -1\n bnez r15, loop\n halt\n"
            ),
        }
    }

    /// Assembles the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a bug in this
    /// crate, covered by tests).
    pub fn build(self, iters: u64) -> Program {
        assemble(&self.source(iters))
            .unwrap_or_else(|e| panic!("micro-kernel {} broken: {e}", self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbdc_cpu::Emulator;

    #[test]
    fn all_kernels_assemble_and_halt() {
        for k in MicroKernel::all() {
            let p = k.build(100);
            let steps = Emulator::new(&p).count();
            assert!(steps > 100, "{}: only {steps} instructions", k.name());
            assert!(steps < 100_000, "{}: runaway", k.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            MicroKernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn pointer_chase_visits_many_cells() {
        // The permutation must form long cycles, not a self-loop.
        let p = MicroKernel::PointerChase.build(500);
        let mut emu = Emulator::new(&p);
        let mut addrs = std::collections::HashSet::new();
        while let Some(di) = emu.step() {
            if di.inst.is_load() {
                addrs.insert(di.mem_addr());
            }
        }
        assert!(addrs.len() > 50, "chase only visited {} cells", addrs.len());
    }

    #[test]
    fn bank_thrash_stays_in_one_bank() {
        use hbdc_mem::BankMapper;
        let mapper = BankMapper::bit_select(4, 32);
        let p = MicroKernel::BankThrash.build(50);
        let mut emu = Emulator::new(&p);
        let mut banks = std::collections::HashSet::new();
        while let Some(di) = emu.step() {
            if di.inst.is_load() {
                banks.insert(mapper.bank_of(di.mem_addr()));
            }
        }
        assert_eq!(banks.len(), 1, "thrash leaked into banks {banks:?}");
    }

    #[test]
    fn same_line_burst_really_bursts() {
        let p = MicroKernel::SameLineBurst.build(50);
        let mut emu = Emulator::new(&p);
        let mut prev_line = None;
        let mut same = 0u64;
        let mut pairs = 0u64;
        while let Some(di) = emu.step() {
            if di.inst.is_mem() {
                let line = di.mem_addr() >> 5;
                if let Some(p) = prev_line {
                    pairs += 1;
                    if p == line {
                        same += 1;
                    }
                }
                prev_line = Some(line);
            }
        }
        assert!(
            same as f64 / pairs as f64 > 0.8,
            "same-line fraction {}",
            same as f64 / pairs as f64
        );
    }
}
