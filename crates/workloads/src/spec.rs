//! Benchmark registry and paper-reference characteristics.

use hbdc_isa::asm::assemble;
use hbdc_isa::Program;

/// Which SPEC95 sub-suite a benchmark analog belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint95 analog (integer).
    Int,
    /// SPECfp95 analog (floating point).
    Fp,
}

/// How large a run to generate.
///
/// The paper simulated each benchmark "to completion or to the first 1.5
/// billion instructions"; these kernels are steady-state loops whose IPC
/// converges within a few hundred thousand instructions, so the scales
/// trade fidelity against wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~50k dynamic instructions — unit/integration tests.
    Test,
    /// ~500k dynamic instructions — quick experiments.
    Small,
    /// Several million dynamic instructions — the reported numbers.
    Full,
}

impl Scale {
    /// A scale-dependent iteration multiplier used by kernel templates.
    pub(crate) fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 10,
            Scale::Full => 64,
        }
    }
}

/// The paper's Table 2 row for a benchmark: the reference characteristics
/// our analogs are calibrated against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Simulated instruction count, millions (paper ran up to 1 500M).
    pub instr_millions: f64,
    /// Memory instructions as a percentage of all instructions.
    pub mem_pct: f64,
    /// Stores per load.
    pub store_to_load: f64,
    /// 32KB direct-mapped L1 miss rate.
    pub miss_rate: f64,
}

/// A registered benchmark analog.
#[derive(Clone)]
pub struct Benchmark {
    name: &'static str,
    suite: Suite,
    paper: PaperRow,
    source: fn(Scale) -> String,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish_non_exhaustive()
    }
}

impl Benchmark {
    /// Registers a caller-supplied kernel as a benchmark, for driving the
    /// experiment machinery with workloads outside the SPEC95 analog set
    /// (custom kernels, fault-tolerance tests). `paper` reference
    /// characteristics are zeroed.
    pub fn custom(name: &'static str, suite: Suite, source: fn(Scale) -> String) -> Self {
        Self {
            name,
            suite,
            paper: PaperRow {
                instr_millions: 0.0,
                mem_pct: 0.0,
                store_to_load: 0.0,
                miss_rate: 0.0,
            },
            source,
        }
    }

    /// The benchmark's (paper) name, e.g. `"compress"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Which suite it belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The paper's Table 2 characteristics for the original program.
    pub fn paper(&self) -> PaperRow {
        self.paper
    }

    /// The analog's assembly source at the given scale.
    pub fn source(&self, scale: Scale) -> String {
        (self.source)(scale)
    }

    /// Assembles the analog at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the embedded kernel fails to assemble — that is a bug in
    /// this crate, covered by tests, never a user error.
    pub fn build(&self, scale: Scale) -> Program {
        match assemble(&self.source(scale)) {
            Ok(p) => p,
            Err(e) => panic!("kernel `{}` failed to assemble: {e}", self.name),
        }
    }
}

/// All ten benchmark analogs, integer suite first, in the paper's
/// Table 2/3/4 row order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "compress",
            suite: Suite::Int,
            paper: PaperRow {
                instr_millions: 35.69,
                mem_pct: 37.4,
                store_to_load: 0.81,
                miss_rate: 0.0542,
            },
            source: crate::compress::source,
        },
        Benchmark {
            name: "gcc",
            suite: Suite::Int,
            paper: PaperRow {
                instr_millions: 264.80,
                mem_pct: 36.7,
                store_to_load: 0.59,
                miss_rate: 0.0240,
            },
            source: crate::gcc::source,
        },
        Benchmark {
            name: "go",
            suite: Suite::Int,
            paper: PaperRow {
                instr_millions: 548.12,
                mem_pct: 28.7,
                store_to_load: 0.36,
                miss_rate: 0.0271,
            },
            source: crate::go::source,
        },
        Benchmark {
            name: "li",
            suite: Suite::Int,
            paper: PaperRow {
                instr_millions: 956.30,
                mem_pct: 47.6,
                store_to_load: 0.59,
                miss_rate: 0.0084,
            },
            source: crate::li::source,
        },
        Benchmark {
            name: "perl",
            suite: Suite::Int,
            paper: PaperRow {
                instr_millions: 1500.0,
                mem_pct: 43.7,
                store_to_load: 0.69,
                miss_rate: 0.0265,
            },
            source: crate::perl::source,
        },
        Benchmark {
            name: "hydro2d",
            suite: Suite::Fp,
            paper: PaperRow {
                instr_millions: 967.08,
                mem_pct: 25.9,
                store_to_load: 0.30,
                miss_rate: 0.1010,
            },
            source: crate::hydro2d::source,
        },
        Benchmark {
            name: "mgrid",
            suite: Suite::Fp,
            paper: PaperRow {
                instr_millions: 1500.0,
                mem_pct: 36.8,
                store_to_load: 0.04,
                miss_rate: 0.0402,
            },
            source: crate::mgrid::source,
        },
        Benchmark {
            name: "su2cor",
            suite: Suite::Fp,
            paper: PaperRow {
                instr_millions: 1034.36,
                mem_pct: 32.0,
                store_to_load: 0.32,
                miss_rate: 0.1307,
            },
            source: crate::su2cor::source,
        },
        Benchmark {
            name: "swim",
            suite: Suite::Fp,
            paper: PaperRow {
                instr_millions: 796.53,
                mem_pct: 29.5,
                store_to_load: 0.28,
                miss_rate: 0.0615,
            },
            source: crate::swim::source,
        },
        Benchmark {
            name: "wave5",
            suite: Suite::Fp,
            paper: PaperRow {
                instr_millions: 1500.0,
                mem_pct: 31.6,
                store_to_load: 0.39,
                miss_rate: 0.1103,
            },
            source: crate::wave5::source,
        },
    ]
}

/// Looks a benchmark up by its paper name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_benchmarks_in_paper_order() {
        let names: Vec<&str> = all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "compress", "gcc", "go", "li", "perl", "hydro2d", "mgrid", "su2cor", "swim",
                "wave5"
            ]
        );
    }

    #[test]
    fn suites_split_five_five() {
        let v = all();
        assert_eq!(v.iter().filter(|b| b.suite() == Suite::Int).count(), 5);
        assert_eq!(v.iter().filter(|b| b.suite() == Suite::Fp).count(), 5);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("mgrid").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn every_kernel_assembles_at_every_scale() {
        for b in all() {
            for scale in [Scale::Test, Scale::Small, Scale::Full] {
                let p = b.build(scale);
                assert!(!p.text().is_empty(), "{} produced empty text", b.name());
            }
        }
    }

    #[test]
    fn paper_rows_match_table2() {
        let c = by_name("compress").unwrap().paper();
        assert_eq!(c.store_to_load, 0.81);
        let m = by_name("mgrid").unwrap().paper();
        assert_eq!(m.store_to_load, 0.04);
        assert_eq!(m.mem_pct, 36.8);
    }

    #[test]
    fn scale_factors_increase() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }
}
