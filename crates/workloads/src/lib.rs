//! `hbdc-workloads`: SPEC95 benchmark analogs for the cache-bandwidth study.
//!
//! The paper evaluates ten SPEC95 programs (five integer, five floating
//! point). Those binaries and inputs are not redistributable, and the
//! original runs were 35M–1.5B instructions on SimpleScalar — so this
//! crate provides *analog kernels* written in the
//! [`hbdc-isa`](hbdc_isa) micro-ISA, one per paper benchmark, each built
//! to reproduce the memory behaviour the paper's results depend on:
//!
//! * the fraction of memory instructions and the store-to-load ratio
//!   (paper Table 2),
//! * the 32KB direct-mapped L1 miss-rate band (Table 2),
//! * the consecutive-reference bank/line locality (Figure 3): integer
//!   codes rich in same-line runs, floating-point codes rich in
//!   same-bank/different-line strides,
//! * the instruction-level parallelism profile that lets a 64-wide
//!   machine expose multiple ready memory references per cycle.
//!
//! Alongside the analogs, [`MicroKernel`] provides tiny instruments with
//! analytically known access patterns (same-line bursts, bank thrash,
//! store storms, pointer chases) used to validate the port models.
//!
//! Each analog is an honest kernel of the same computational character as
//! its namesake (dictionary compression for `compress`, cons-cell
//! interpretation for `li`, stencil sweeps for the FP codes, …), not a
//! synthetic address generator. The mapping and calibration are recorded
//! per benchmark in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use hbdc_workloads::{by_name, Scale};
//!
//! let bench = by_name("swim").expect("known benchmark");
//! let program = bench.build(Scale::Test);
//! assert!(!program.text().is_empty());
//! assert_eq!(bench.suite(), hbdc_workloads::Suite::Fp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod gcc;
mod go;
mod hydro2d;
mod li;
mod mgrid;
mod micro;
mod perl;
mod spec;
mod su2cor;
mod swim;
mod wave5;

pub use micro::MicroKernel;
pub use spec::{all, by_name, Benchmark, PaperRow, Scale, Suite};

#[cfg(test)]
pub(crate) mod testutil {
    use hbdc_cpu::Emulator;
    use hbdc_isa::asm::assemble;

    /// Measured dynamic characteristics of a kernel run.
    #[derive(Debug, Clone, Copy)]
    pub struct Mix {
        pub total: u64,
        pub loads: u64,
        pub stores: u64,
    }

    impl Mix {
        pub fn mem_pct(&self) -> f64 {
            (self.loads + self.stores) as f64 / self.total as f64 * 100.0
        }

        pub fn store_to_load(&self) -> f64 {
            self.stores as f64 / self.loads as f64
        }
    }

    /// Runs a kernel functionally and measures its instruction mix.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to assemble, runs away past 20M
    /// instructions, or performs no memory references.
    pub fn measure(src: &str) -> Mix {
        let p = assemble(src).unwrap_or_else(|e| panic!("kernel does not assemble: {e}"));
        let mut emu = Emulator::new(&p);
        let mut mix = Mix {
            total: 0,
            loads: 0,
            stores: 0,
        };
        while let Some(di) = emu.step() {
            mix.total += 1;
            if di.inst.is_store() {
                mix.stores += 1;
            } else if di.inst.is_load() {
                mix.loads += 1;
            }
            assert!(mix.total < 20_000_000, "kernel does not terminate");
        }
        assert!(mix.loads > 0, "kernel performed no loads");
        mix
    }
}
