//! `perl` analog: string copying and associative-array updates.
//!
//! SPEC95 `134.perl` interprets scripts dominated by string manipulation
//! and hash (associative array) operations: byte-sequential copies give it
//! both a high memory fraction (43.7%) and a high store-to-load ratio
//! (0.69), and Figure 3 credits it with more than 40% same-line
//! consecutive references — copying bytes walks cache lines end to end.
//!
//! The analog alternates two phases per iteration: copy a chunk of a
//! source string into a rolling output buffer while hashing it (paired
//! `lb`/`sb` — the same-line engine), then insert the hash into a 40KB
//! associative table (probe + store) and bump its value word.

use crate::spec::Scale;

/// Assembly source for the `perl` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 1400 * scale.factor();
    format!(
        r#"
# perl analog: string copy + hash-table update.
.data
src:    .space 4096
padp:   .space 32          # shift dst one line so copies cross banks
dst:    .space 4096
table:  .space 40960      # 5120 buckets x 8 bytes (key, value)
.text
main:
    # ---- init: fill src with LCG bytes ----
    la   r8, src
    li   r9, 4096
    li   r10, 362436069
    li   r20, 69069
sinit:
    mul  r10, r10, r20
    addi r10, r10, 1234567
    srli r11, r10, 24
    sb   r11, 0(r8)
    addi r8, r8, 1
    addi r9, r9, -1
    bnez r9, sinit

    # ---- main loop ----
    li   r8, 0               # chunk offset
    la   r9, src
    la   r11, dst
    la   r24, table
    li   r10, 5381           # rolling hash
    li   r15, {iters}
loop:
    add  r12, r9, r8         # read cursor
    add  r13, r11, r8        # write cursor
    # copy 4 bytes and hash 7: all loads first, then the stores, so
    # consecutive references run along cache lines (perl's same-line
    # signature in Figure 3)
    lb   r16, 0(r12)
    lb   r17, 1(r12)
    lb   r18, 2(r12)
    lb   r19, 3(r12)
    lb   r22, 4(r12)         # hash-only tail of the chunk
    lb   r23, 5(r12)
    lb   r14, 6(r12)
    sb   r16, 0(r13)
    sb   r17, 1(r13)
    sb   r18, 2(r13)
    sb   r19, 3(r13)
    # chunk hash is a balanced tree (3 levels), so only the final fold
    # into the rolling hash is serial across iterations
    add  r25, r16, r17
    add  r26, r18, r19
    add  r27, r22, r23
    slli r26, r26, 4
    xor  r25, r25, r26
    slli r28, r14, 2
    add  r27, r27, r28
    xor  r25, r25, r27
    slli r10, r10, 1
    add  r10, r10, r25
    # associative-array update: probe bucket, write key, bump value
    andi r25, r10, 5119
    slli r26, r25, 3
    add  r26, r26, r24
    lw   r27, 0(r26)         # key probe
    lw   r28, 4(r26)         # value (same line)
    beq  r27, r25, bump
    sw   r25, 0(r26)         # install key
    li   r28, 0
bump:
    addi r28, r28, 1
    sw   r28, 4(r26)         # write value
    # advance the chunk with masked wraparound
    addi r8, r8, 4
    andi r8, r8, 4095
    addi r15, r15, -1
    bnez r15, loop
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_perl_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 43.7% memory instructions, store-to-load 0.69.
        assert!(
            (32.0..48.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.45..0.8).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
