//! `hydro2d` analog: 2-D hydrodynamics stencil sweep.
//!
//! SPEC95 `104.hydro2d` solves hydrodynamical Navier–Stokes equations on a
//! 2-D grid. Its profile in Table 2: the lowest memory fraction of the
//! study (25.9% — each grid point costs a lot of floating-point work), a
//! 0.30 store-to-load ratio (five-point stencil in, one value out), and a
//! 10.1% miss rate from grids much larger than the L1.
//!
//! The analog sweeps a 128x128 double grid with a five-point stencil,
//! ~16 FP operations per point, one result store per point plus an
//! auxiliary store on alternate points, writing into a second 128KB grid.
//! Row-major order makes west/east/center references walk cache lines
//! (same-line locality), while north/south references stride whole rows.

use crate::spec::Scale;

/// Assembly source for the `hydro2d` analog.
pub(crate) fn source(scale: Scale) -> String {
    let rows = 8 * scale.factor();
    format!(
        r#"
# hydro2d analog: 5-point stencil over a 128x128 double grid.
.data
grid:   .space 131072      # 128x128 doubles (source)
pad:    .space 128         # break 32KB-set aliasing between the grids
out:    .space 131072      # destination grid
.text
main:
    # ---- init: seed one row of the grid with converted integers ----
    la   r8, grid
    li   r9, 128
    li   r10, 7
ginit:
    itof f1, r10
    fsd  f1, 0(r8)
    mul  r10, r10, r10
    addi r10, r10, 13
    andi r10, r10, 1023
    addi r8, r8, 8
    addi r9, r9, -1
    bnez r9, ginit

    # ---- row sweeps with wraparound ----
    li   r15, {rows}         # total rows to process
    la   r8, grid+1024       # point cursor (start at row 1)
    la   r9, out+1024
row:
    li   r14, 126            # interior points per row
point:
    fld  f1, 0(r8)           # center
    fld  f2, -8(r8)          # west  (same line)
    fld  f3, 8(r8)           # east  (same line)
    fld  f4, -1024(r8)       # north (previous row)
    fld  f5, 1024(r8)        # south (next row)
    # ~16 FP ops of flux arithmetic
    fadd.d f6, f2, f3
    fadd.d f7, f4, f5
    fadd.d f6, f6, f7
    fmul.d f8, f1, f1
    fsub.d f9, f6, f8
    fmul.d f10, f9, f9
    fadd.d f11, f10, f1
    fmul.d f12, f11, f9
    fsub.d f13, f12, f6
    fadd.d f14, f13, f8
    fmul.d f15, f14, f11
    fadd.d f16, f15, f13
    fsub.d f17, f16, f1
    fmul.d f18, f17, f14
    fadd.d f19, f18, f16
    fsd  f19, 0(r9)          # write result
    # auxiliary pressure update on alternate points
    andi r16, r14, 1
    bnez r16, skipaux
    fadd.d f20, f19, f1
    fsd  f20, 8(r9)
skipaux:
    addi r8, r8, 8
    addi r9, r9, 8
    addi r14, r14, -1
    bnez r14, point
    # advance to the next row (skip the border columns)
    addi r8, r8, 16
    addi r9, r9, 16
    la   r16, grid+130048    # last interior row boundary
    blt  r8, r16, norowwrap
    la   r8, grid+1024
    la   r9, out+1024
norowwrap:
    addi r15, r15, -1
    bnez r15, row
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_hydro2d_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 25.9% memory instructions, store-to-load 0.30.
        assert!(
            (18.0..36.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.18..0.45).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
