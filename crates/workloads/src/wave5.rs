//! `wave5` analog: particle-in-cell gather/scatter.
//!
//! SPEC95 `146.wave5` is a particle-in-cell plasma code: it streams
//! through a particle array (sequential, line-friendly) and, for each
//! particle, gathers field values at grid cells derived from the
//! particle's position (effectively random into a megabyte-scale grid —
//! the source of its 11% miss rate) and scatters charge back. Table 2:
//! 31.6% memory instructions, 0.39 stores per load.
//!
//! The analog keeps 256 particles of four doubles and a 1MB field grid
//! with a 256KB active window;
//! per particle it loads position/velocity (same line), gathers four
//! field doubles at the indexed cell, updates the particle (two stores),
//! and scatters charge on alternate particles.

use crate::spec::Scale;

/// Assembly source for the `wave5` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 1080 * scale.factor();
    format!(
        r#"
# wave5 analog: particle push with field gather/scatter.
.data
parts:  .space 8192        # 256 particles x 32 bytes (x, vx, y, vy)
coef:   .space 16384       # interpolation weights (resident)
field:  .space 1048576     # 131072 doubles
.text
main:
    # ---- init: scatter particles with an LCG ----
    la   r8, parts
    li   r9, 256
    li   r10, 48271
    li   r21, 6364136223846793005
pinit:
    mul  r10, r10, r21
    addi r10, r10, 1442695040888963407
    srli r11, r10, 16
    andi r11, r11, 1048575
    itof f1, r11             # position
    fsd  f1, 0(r8)
    srli r12, r10, 40
    andi r12, r12, 255
    itof f2, r12
    fsd  f2, 8(r8)           # velocity
    fsd  f1, 16(r8)
    fsd  f2, 24(r8)
    addi r8, r8, 32
    addi r9, r9, -1
    bnez r9, pinit

    # ---- particle push loop ----
    la   r8, parts
    la   r13, field
    la   r20, coef
    li   r21, 2654435761
    li   r15, {iters}
    li   r14, 0              # particle parity
push:
    fld  f1, 0(r8)           # x        (same line)
    fld  f2, 8(r8)           # vx       (same line)
    fld  f3, 16(r8)          # y        (same line)
    fld  f4, 24(r8)          # vy       (same line)
    # gather: cell index hashed from the position (anywhere in the field)
    ftoi r16, f1
    mul  r16, r16, r21       # golden-ratio hash: positions scatter
    andi r16, r16, 262136    # clamp to the active 256KB window
    add  r17, r13, r16
    fld  f5, 0(r17)          # Ex
    fld  f6, 8(r17)          # Ey (same line)
    # interpolation coefficients from a small resident table
    srli r18, r16, 6
    andi r18, r18, 16376
    add  r18, r20, r18
    fld  f7, 0(r18)          # w0
    fld  f8, 8(r18)          # w1 (same line)
    # push: v += E * dt; x += v * dt
    fmul.d f9, f5, f7
    fadd.d f10, f6, f8
    fadd.d f2, f2, f9
    fadd.d f4, f4, f10
    fadd.d f1, f1, f2
    fadd.d f3, f3, f4
    fmul.d f11, f1, f3
    fadd.d f12, f11, f9
    fsd  f1, 0(r8)           # write back position
    fsd  f2, 8(r8)           # write back velocity
    # scatter charge on alternate particles
    andi r19, r14, 1
    bnez r19, noscatter
    fsd  f12, 0(r17)
noscatter:
    addi r14, r14, 1
    addi r8, r8, 32
    la   r16, parts+8192
    blt  r8, r16, nowrap
    la   r8, parts
nowrap:
    addi r15, r15, -1
    bnez r15, push
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_wave5_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 31.6% memory instructions, store-to-load 0.39.
        assert!(
            (24.0..42.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.22..0.45).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
