//! `su2cor` analog: strided SU(2) lattice-gauge matrix products.
//!
//! SPEC95 `103.su2cor` computes quark propagators by multiplying SU(2)
//! link matrices across a 4-D lattice. Successive links sit a large,
//! non-unit stride apart, which defeats spatial locality and produces the
//! worst L1 miss rate of the study (13.07%); each product reads two
//! complex 2x2 matrices and stores an accumulated row (store-to-load
//! 0.32).
//!
//! The analog keeps a 1MB gauge field; each step loads one matrix
//! sequentially (8 doubles, two cache lines) and a second matrix at a
//! 401-line stride (rotating through banks and thrashing the 32KB L1),
//! performs the first row of the complex product (~24 FP ops), and stores
//! 4 result doubles back to the sequential matrix.

use crate::spec::Scale;

/// Assembly source for the `su2cor` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 980 * scale.factor();
    format!(
        r#"
# su2cor analog: strided complex 2x2 matrix products over a 1MB field.
.data
field:  .space 1048576     # 131072 doubles of gauge links
.text
main:
    # ---- init: seed every 64th double ----
    la   r8, field
    li   r9, 2048
    li   r10, 31337
finit:
    itof f1, r10
    fsd  f1, 0(r8)
    addi r8, r8, 512
    mul  r10, r10, r10
    andi r10, r10, 32767
    addi r9, r9, -1
    bnez r9, finit

    # ---- propagator loop ----
    la   r8, field           # sequential matrix cursor (A)
    li   r9, 0               # strided offset (B)
    li   r15, {iters}
link:
    # matrix A: 8 sequential doubles (two cache lines)
    fld  f1, 0(r8)
    fld  f2, 8(r8)
    fld  f3, 16(r8)
    fld  f4, 24(r8)
    fld  f5, 32(r8)
    fld  f6, 40(r8)
    fld  f7, 48(r8)
    fld  f8, 56(r8)
    # matrix B: 4 doubles at the strided site
    la   r16, field
    add  r16, r16, r9
    fld  f9, 0(r16)
    fld  f10, 8(r16)
    fld  f11, 16(r16)
    fld  f12, 24(r16)
    # first row of the complex product: (a+bi)(c+di) terms
    fmul.d f13, f1, f9
    fmul.d f14, f2, f10
    fsub.d f13, f13, f14     # re(a00*b00)
    fmul.d f15, f1, f10
    fmul.d f16, f2, f9
    fadd.d f15, f15, f16     # im(a00*b00)
    fmul.d f17, f3, f11
    fmul.d f18, f4, f12
    fsub.d f17, f17, f18     # re(a01*b10)
    fmul.d f19, f3, f12
    fmul.d f20, f4, f11
    fadd.d f19, f19, f20     # im(a01*b10)
    fadd.d f21, f13, f17     # re(row0)
    fadd.d f22, f15, f19     # im(row0)
    fmul.d f23, f5, f9
    fmul.d f24, f6, f10
    fsub.d f23, f23, f24     # re(a10*b00)
    fmul.d f25, f7, f11
    fmul.d f26, f8, f12
    fsub.d f25, f25, f26     # re(a11*b10)
    fadd.d f27, f23, f25     # re(row1)
    fadd.d f28, f21, f27     # trace accumulator
    # store the accumulated row back into matrix A
    fsd  f21, 0(r8)
    fsd  f22, 8(r8)
    fsd  f27, 16(r8)
    fsd  f28, 24(r8)
    # advance: A sequential, B by 401 lines (12832 bytes)
    addi r8, r8, 64
    la   r16, field+1048512
    blt  r8, r16, nowrapA
    la   r8, field
nowrapA:
    addi r9, r9, 12832
    li   r16, 1048544
    blt  r9, r16, nowrapB
    addi r9, r9, -1048544
nowrapB:
    addi r15, r15, -1
    bnez r15, link
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_su2cor_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 32.0% memory instructions, store-to-load 0.32.
        assert!(
            (24.0..42.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.25..0.45).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
