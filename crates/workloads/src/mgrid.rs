//! `mgrid` analog: 3-D 27-point multigrid relaxation.
//!
//! SPEC95 `107.mgrid` applies multigrid V-cycles to a 3-D Poisson
//! problem; its inner loop is a 27-point stencil that reads a whole
//! neighbourhood cube and writes a single point. That gives the most
//! extreme store-to-load ratio in Table 2 — 0.04, one store per ~25
//! loads — and enormous load parallelism: the paper's ideal-16-port IPC
//! of 18.6 is the highest in Table 3, and mgrid is the benchmark where
//! replication is "virtually indistinguishable from ideal" (almost no
//! stores to broadcast).
//!
//! The analog runs the 27-point kernel over a 40^3 double grid (512KB)
//! with a linear cursor; all 27 neighbour loads are independent, so a
//! wide machine can flood the cache ports.

use crate::spec::Scale;

/// Assembly source for the `mgrid` analog.
pub(crate) fn source(scale: Scale) -> String {
    let iters = 740 * scale.factor();
    // Strides for a 40x40x40 grid of 8-byte doubles.
    let row = 320; // 40 * 8
    let plane = 12800; // 40 * 40 * 8
    let span = 512_000 - 2 * (plane + row + 8); // safe interior span
    format!(
        r#"
# mgrid analog: 27-point stencil over a 40^3 double grid.
.data
grid:   .space 512000
resid:  .space 512000
.text
main:
    # ---- init: sprinkle converted integers through the grid ----
    la   r8, grid
    li   r9, 500
    li   r10, 99991
vinit:
    itof f1, r10
    fsd  f1, 0(r8)
    addi r8, r8, 1024
    mul  r10, r10, r10
    andi r10, r10, 65535
    addi r9, r9, -1
    bnez r9, vinit

    # ---- relaxation: linear cursor over interior cells ----
    la   r8, grid+{start}    # cursor (interior)
    la   r9, resid+{start}
    li   r15, {iters}
cell:
    # plane below
    fld  f1, -{pm}(r8)
    fld  f2, -{pmr}(r8)
    fld  f3, -{pmr8}(r8)
    fld  f4, -{pr}(r8)
    fld  f5, -{pr8}(r8)
    fld  f6, -{p}(r8)
    fld  f7, -{p8a}(r8)
    fld  f8, -{p8b}(r8)
    fld  f9, -{p8c}(r8)
    # same plane
    fld  f10, -{rm8}(r8)
    fld  f11, -{r}(r8)
    fld  f12, -{r8o}(r8)
    fld  f13, -8(r8)
    fld  f14, 0(r8)
    fld  f15, 8(r8)
    fld  f16, {r8o}(r8)
    fld  f17, {r}(r8)
    fld  f18, {rm8}(r8)
    # plane above
    fld  f19, {p8c}(r8)
    fld  f20, {p8b}(r8)
    fld  f21, {p8a}(r8)
    fld  f22, {p}(r8)
    fld  f23, {pr8}(r8)
    fld  f24, {pr}(r8)
    fld  f25, {pmr8}(r8)
    fld  f26, {pmr}(r8)
    fld  f27, {pm}(r8)
    # weighted reduction (tree-shaped for ILP)
    fadd.d f1, f1, f2
    fadd.d f3, f3, f4
    fadd.d f5, f5, f6
    fadd.d f7, f7, f8
    fadd.d f9, f9, f10
    fadd.d f11, f11, f12
    fadd.d f13, f13, f15
    fadd.d f16, f16, f17
    fadd.d f18, f18, f19
    fadd.d f20, f20, f21
    fadd.d f22, f22, f23
    fadd.d f24, f24, f25
    fadd.d f26, f26, f27
    # stencil class weights (independent multiplies)
    fmul.d f1, f1, f14
    fmul.d f3, f3, f14
    fmul.d f5, f5, f14
    fmul.d f7, f7, f14
    fmul.d f9, f9, f14
    fmul.d f11, f11, f14
    fmul.d f13, f13, f14
    fmul.d f16, f16, f14
    fmul.d f18, f18, f14
    fmul.d f20, f20, f14
    fmul.d f22, f22, f14
    fmul.d f24, f24, f14
    fmul.d f26, f26, f14
    fadd.d f1, f1, f3
    fadd.d f5, f5, f7
    fadd.d f9, f9, f11
    fadd.d f13, f13, f16
    fadd.d f18, f18, f20
    fadd.d f22, f22, f24
    fadd.d f1, f1, f5
    fadd.d f9, f9, f13
    fadd.d f18, f18, f22
    fadd.d f1, f1, f9
    fadd.d f1, f1, f18
    fadd.d f1, f1, f26
    fmul.d f2, f14, f14      # center weight
    fsub.d f1, f1, f2
    fsd  f1, 0(r9)           # single store per cell
    # advance, wrapping inside the safe interior span
    addi r8, r8, 8
    addi r9, r9, 8
    la   r16, grid+{end}
    blt  r8, r16, nowrap
    la   r8, grid+{start}
    la   r9, resid+{start}
nowrap:
    addi r15, r15, -1
    bnez r15, cell
    halt
"#,
        start = plane + row + 8,
        end = plane + row + 8 + span,
        p = plane,
        pm = plane + row + 8,
        pmr = plane + row,
        pmr8 = plane + row - 8,
        pr = plane - row,
        pr8 = plane - row + 8,
        p8a = plane + 8,
        p8b = plane - 8,
        p8c = plane - row - 8,
        r = row,
        rm8 = row + 8,
        r8o = row - 8,
        iters = iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_mgrid_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 36.8% memory instructions, store-to-load 0.04.
        assert!(
            (28.0..48.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            mix.store_to_load() < 0.08,
            "s/l = {} (must be extreme-load-dominated)",
            mix.store_to_load()
        );
    }
}
