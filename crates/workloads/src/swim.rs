//! `swim` analog: shallow-water finite differences over aliasing arrays.
//!
//! SPEC95 `102.swim` time-steps the shallow-water equations over several
//! equal-sized grids (`U`, `V`, `P`, and their successors). Because the
//! grids are allocated at power-of-two spacings, the *same index* in
//! different grids maps to the *same cache bank* in a line-interleaved
//! cache — the paper's Figure 3 measures swim's same-bank/different-line
//! rate at 33.8%, the worst in the study, which is why swim gains less
//! from multi-banking (Table 3: Bank-16 at 6.90 vs True-16 at 13.6) and
//! why the LBIC's combining recovers so much of it (Table 4).
//!
//! The analog keeps five 128KB double grids back to back and evaluates
//! the update at each point from `u`, `v`, and `p` neighbours, writing
//! `unew`/`vnew` — seven loads spread across three aliasing arrays, two
//! stores, ~14 FP ops.

use crate::spec::Scale;

/// Assembly source for the `swim` analog.
pub(crate) fn source(scale: Scale) -> String {
    let rows = 9 * scale.factor();
    format!(
        r#"
# swim analog: shallow-water step over five aliasing 128KB grids.
.data
u:     .space 131072       # 128x128 doubles
pad0:  .space 4224         # pads keep same-index bank aliasing (multiple
v:     .space 131072       # of banks*line) while breaking 32KB-set
pad1:  .space 4224         # aliasing that would make every access miss
p:     .space 131072
pad2:  .space 4224
unew:  .space 131072
pad3:  .space 4224
vnew:  .space 131072
.text
main:
    # ---- init: seed one row of u, v, p ----
    la   r8, u
    la   r9, v
    la   r10, p
    li   r11, 128
    li   r12, 40961
winit:
    itof f1, r12
    fsd  f1, 0(r8)
    fsd  f1, 0(r9)
    fsd  f1, 0(r10)
    mul  r12, r12, r12
    andi r12, r12, 8191
    addi r12, r12, 3
    addi r8, r8, 8
    addi r9, r9, 8
    addi r10, r10, 8
    addi r11, r11, -1
    bnez r11, winit

    # ---- time-step row sweeps ----
    li   r15, {rows}
    li   r8, 1032            # point offset within a grid (row 1, col 1)
    la   r20, u              # grid bases, loop-invariant
    la   r21, v
    la   r22, p
    la   r23, unew
    la   r24, vnew
    li   r25, 0              # row-pass parity (each row swept twice)
row:
    mov  r26, r8             # remember the row start
    li   r14, 126
point:
    add  r16, r20, r8
    add  r17, r21, r8
    add  r18, r22, r8
    fld  f1, 0(r16)          # u[i]      -- same index in u, v, p:
    fld  f2, 0(r17)          # v[i]      -- same bank, different lines
    fld  f3, 0(r18)          # p[i]      -- (aliasing arrays)
    fld  f4, 8(r16)          # u[i+1]   (same line as u[i])
    fld  f5, 1024(r17)       # v[i+N]
    fld  f6, 8(r18)          # p[i+1]
    fld  f7, 1024(r18)       # p[i+N]
    # ~14 FP ops of finite-difference arithmetic
    fsub.d f8, f4, f1
    fsub.d f9, f5, f2
    fsub.d f10, f6, f3
    fsub.d f11, f7, f3
    fmul.d f12, f8, f10
    fmul.d f13, f9, f11
    fadd.d f14, f12, f13
    fmul.d f15, f1, f9
    fmul.d f16, f2, f8
    fsub.d f17, f15, f16
    fadd.d f18, f14, f3
    fmul.d f19, f17, f18
    fadd.d f20, f19, f1
    fsub.d f21, f18, f2
    add  r19, r23, r8
    fsd  f20, 0(r19)         # unew[i]  (same bank again)
    add  r19, r24, r8
    fsd  f21, 0(r19)         # vnew[i]
    addi r8, r8, 8
    addi r14, r14, -1
    bnez r14, point
    xori r25, r25, 1
    beqz r25, advance        # second pass done: move to the next row
    mov  r8, r26             # first pass done: sweep the same row again
    j    rownext
advance:
    addi r8, r8, 16          # skip border columns
    li   r16, 130048
    blt  r8, r16, rownext
    li   r8, 1032
rownext:
    addi r15, r15, -1
    bnez r15, row
    halt
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::measure;

    #[test]
    fn assembles_and_terminates() {
        let mix = measure(&source(Scale::Test));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn mix_is_in_swim_band() {
        let mix = measure(&source(Scale::Small));
        // Paper: 29.5% memory instructions, store-to-load 0.28.
        assert!(
            (22.0..40.0).contains(&mix.mem_pct()),
            "mem% = {}",
            mix.mem_pct()
        );
        assert!(
            (0.18..0.4).contains(&mix.store_to_load()),
            "s/l = {}",
            mix.store_to_load()
        );
    }
}
