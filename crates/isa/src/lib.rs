//! `hbdc-isa`: a MIPS-like micro-ISA for the `hbdc` cache-bandwidth study.
//!
//! The paper simulates "a derivative of the MIPS instruction set
//! architecture" via SimpleScalar. This crate provides the equivalent
//! substrate built from scratch:
//!
//! * [`Reg`] / [`FReg`] — 32 integer and 32 floating-point registers
//!   (`r0` is hardwired to zero, as in MIPS).
//! * [`Inst`] — the structured instruction set: integer ALU, FP arithmetic,
//!   loads/stores of four widths, branches, and jumps.
//! * [`asm::assemble`] — a two-pass textual assembler with labels,
//!   `.text`/`.data` sections, data directives, and the usual pseudo
//!   instructions (`li`, `la`, `mov`, `b`).
//! * [`Program`] — an assembled unit: instruction text, initialized data
//!   image, and a symbol table.
//! * [`disasm`] — a disassembler producing assembler-compatible text.
//! * [`object`] — a compact binary object format for assembled programs.
//!
//! # Examples
//!
//! ```
//! use hbdc_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   r8, 5
//!         li   r9, 0
//!     loop:
//!         add  r9, r9, r8
//!         addi r8, r8, -1
//!         bne  r8, r0, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.text().len(), 6);
//! # Ok::<(), hbdc_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
mod error;
mod inst;
mod layout;
pub mod object;
mod program;
mod reg;

pub use error::AsmError;
pub use inst::{AluOp, ArchReg, BranchCond, FpuOp, FuClass, Inst, Width};
pub use layout::{DATA_BASE, HEAP_BASE, STACK_TOP};
pub use program::{Program, Symbol};
pub use reg::{FReg, Reg};
