//! Assembled program container.

use std::collections::HashMap;

use crate::inst::Inst;
use crate::layout::DATA_BASE;

/// A symbol resolved by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// A label in the text section: absolute instruction index.
    Text(u32),
    /// A label in the data section: absolute virtual byte address.
    Data(u64),
}

/// An assembled unit: instruction text, an initialized data image based at
/// [`DATA_BASE`](crate::DATA_BASE), and the symbol table.
///
/// # Examples
///
/// ```
/// use hbdc_isa::asm::assemble;
/// use hbdc_isa::Symbol;
///
/// let p = assemble(".data\nv: .word 1, 2, 3\n.text\nmain: halt\n")?;
/// assert_eq!(p.data().len(), 12);
/// assert!(matches!(p.symbol("v"), Some(Symbol::Data(_))));
/// assert_eq!(p.entry(), 0);
/// # Ok::<(), hbdc_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    text: Vec<Inst>,
    data: Vec<u8>,
    symbols: HashMap<String, Symbol>,
    entry: u32,
}

impl Program {
    /// Creates a program from raw parts (normally produced by the assembler).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range of `text` for a non-empty text
    /// section, or if any symbol refers past the end of its section.
    pub fn from_parts(
        text: Vec<Inst>,
        data: Vec<u8>,
        symbols: HashMap<String, Symbol>,
        entry: u32,
    ) -> Self {
        if !text.is_empty() {
            assert!((entry as usize) < text.len(), "entry point out of range");
        }
        for (name, sym) in &symbols {
            match *sym {
                Symbol::Text(pc) => assert!(
                    (pc as usize) <= text.len(),
                    "text symbol `{name}` out of range"
                ),
                Symbol::Data(addr) => assert!(
                    addr >= DATA_BASE && addr <= DATA_BASE + data.len() as u64,
                    "data symbol `{name}` out of range"
                ),
            }
        }
        Self {
            text,
            data,
            symbols,
            entry,
        }
    }

    /// The instruction text. PC values index this slice.
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// The initialized data image; byte 0 lives at virtual address
    /// [`DATA_BASE`](crate::DATA_BASE).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Virtual address of the first data byte.
    pub fn data_base(&self) -> u64 {
        DATA_BASE
    }

    /// Entry-point instruction index (the `main` label, or 0).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, symbol)` pairs in unspecified order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Symbol)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn from_parts_validates_entry() {
        let p = Program::from_parts(vec![Inst::Halt], vec![], HashMap::new(), 0);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.text().len(), 1);
    }

    #[test]
    #[should_panic(expected = "entry point out of range")]
    fn bad_entry_panics() {
        Program::from_parts(vec![Inst::Halt], vec![], HashMap::new(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_data_symbol_panics() {
        let mut syms = HashMap::new();
        syms.insert("x".to_string(), Symbol::Data(0));
        Program::from_parts(vec![Inst::Halt], vec![], syms, 0);
    }

    #[test]
    fn symbol_lookup() {
        let mut syms = HashMap::new();
        syms.insert("main".to_string(), Symbol::Text(0));
        syms.insert("buf".to_string(), Symbol::Data(DATA_BASE + 4));
        let p = Program::from_parts(vec![Inst::Halt], vec![0; 8], syms, 0);
        assert_eq!(p.symbol("main"), Some(Symbol::Text(0)));
        assert_eq!(p.symbol("buf"), Some(Symbol::Data(DATA_BASE + 4)));
        assert_eq!(p.symbol("nope"), None);
        assert_eq!(p.symbols().count(), 2);
    }

    #[test]
    fn empty_program_is_default() {
        let p = Program::default();
        assert!(p.text().is_empty());
        assert!(p.data().is_empty());
        assert_eq!(p.data_base(), DATA_BASE);
    }
}
