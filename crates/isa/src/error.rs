//! Assembler error type.

use std::error::Error;
use std::fmt;

/// An error produced while assembling micro-ISA source text.
///
/// Carries the 1-based source line number and a description of the problem.
///
/// # Examples
///
/// ```
/// use hbdc_isa::asm::assemble;
///
/// let err = assemble(".text\n  bogus r1, r2\n").unwrap_err();
/// assert_eq!(err.line(), 2);
/// assert!(err.to_string().contains("bogus"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    /// Creates an error at the given 1-based source line.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line the error occurred on (0 if not line-specific).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, "unknown mnemonic `frob`");
        assert_eq!(e.line(), 7);
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("frob"));
    }

    #[test]
    fn display_without_line() {
        let e = AsmError::new(0, "no .text section");
        assert!(!e.to_string().contains("line"));
    }
}
